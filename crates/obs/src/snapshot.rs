//! Point-in-time, serialisable views of registry contents.
//!
//! A [`Snapshot`] is what exporters, tables, and the fleet telemetry
//! reporter consume. Snapshots support `delta(earlier)` so long-running
//! deployments can report rates over an interval instead of absolute
//! totals since process start.

use serde::{Deserialize, Serialize};

/// One non-empty histogram bucket: samples in `lo..hi` (hi exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Samples that fell in `lo..hi`.
    pub count: u64,
}

/// The most recent exemplar attached to a histogram: one concrete sample
/// with the flow/trace identity that produced it, linking a latency
/// bucket back to a reconstructable `/trace` timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExemplarSnapshot {
    /// The exemplar's sample value (same unit as the histogram).
    pub value: u64,
    /// Flow id of the sample's flow.
    pub flow: u64,
    /// Trace id (`trace::trace_id(flow, slot)`) of the sample's span.
    pub trace: u64,
}

/// Immutable capture of a histogram's contents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by `lo`.
    pub buckets: Vec<HistBucket>,
    /// Most recent exemplar, when a traced call site attached one.
    pub exemplar: Option<ExemplarSnapshot>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket containing the target rank. `None` when empty.
    ///
    /// Error is bounded by the bucket width: exact for values `0..=15`,
    /// within 12.5% above that.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (self.count - 1) as f64;
        let mut seen = 0u64;
        for b in &self.buckets {
            let upto = seen + b.count;
            if rank < upto as f64 || upto == self.count {
                // Position of the target rank within this bucket.
                let within = (rank - seen as f64) / b.count as f64;
                let lo = b.lo.max(self.min) as f64;
                let hi = b.hi.min(self.max.saturating_add(1)) as f64;
                return Some(lo + (hi - lo).max(0.0) * within);
            }
            seen = upto;
        }
        Some(self.max as f64)
    }

    /// Bucket-wise difference `self - earlier` (saturating), used by
    /// interval reporters.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for b in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|e| e.lo == b.lo)
                .map_or(0, |e| e.count);
            let count = b.count.saturating_sub(before);
            if count > 0 {
                buckets.push(HistBucket { count, ..*b });
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // min/max are lifetime extremes; an interval delta keeps the
            // current ones as the best available approximation. The
            // exemplar is last-write-wins, so the current one stands.
            min: self.min,
            max: self.max,
            buckets,
            exemplar: self.exemplar,
        }
    }
}

/// Value of one exported metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Instantaneous gauge level.
    Gauge(i64),
    /// Distribution snapshot.
    Histogram(HistogramSnapshot),
}

/// One metric with its identity and captured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name, e.g. `cgc_monitor_ingested_packets_total`.
    pub name: String,
    /// Label pairs distinguishing series under the same name.
    pub labels: Vec<(String, String)>,
    /// Human-readable description.
    pub help: String,
    /// Captured value.
    pub value: MetricValue,
}

/// Point-in-time capture of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All captured metrics, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// First metric with this name (any labels).
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Metric with this exact name and label set.
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Sum of all counter series with this name. `None` if the name is
    /// absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for m in self.metrics.iter().filter(|m| m.name == name) {
            if let MetricValue::Counter(v) = m.value {
                found = true;
                total += v;
            }
        }
        found.then_some(total)
    }

    /// Value of the counter series with this exact name and label set.
    /// `None` if absent or not a counter — unlike [`Snapshot::counter`],
    /// which sums every series of the name, this reads one labeled
    /// series (e.g. `cgc_ingest_merge_late_total{source="eth1"}`).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get_with(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Sum of all gauge series with this name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        let mut found = false;
        let mut total = 0i64;
        for m in self.metrics.iter().filter(|m| m.name == name) {
            if let MetricValue::Gauge(v) = m.value {
                found = true;
                total += v;
            }
        }
        found.then_some(total)
    }

    /// First histogram series with this name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics
            .iter()
            .find_map(|m| match (&m.value, m.name == name) {
                (MetricValue::Histogram(h), true) => Some(h),
                _ => None,
            })
    }

    /// Difference `self - earlier` for interval reporting: counters and
    /// histograms subtract (saturating); gauges keep their current
    /// level. Series absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let before = earlier
                    .metrics
                    .iter()
                    .find(|e| e.name == m.name && e.labels == m.labels);
                let value = match (&m.value, before.map(|b| &b.value)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(old))) => {
                        MetricValue::Counter(now.saturating_sub(*old))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(old))) => {
                        MetricValue::Histogram(now.delta(old))
                    }
                    _ => m.value.clone(),
                };
                MetricSnapshot {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    help: m.help.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, v: u64) -> MetricSnapshot {
        MetricSnapshot {
            name: name.to_string(),
            labels: Vec::new(),
            help: String::new(),
            value: MetricValue::Counter(v),
        }
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let mut old = Snapshot::default();
        old.metrics.push(counter("a_total", 10));
        let mut now = Snapshot::default();
        now.metrics.push(counter("a_total", 25));
        now.metrics.push(MetricSnapshot {
            name: "depth".into(),
            labels: Vec::new(),
            help: String::new(),
            value: MetricValue::Gauge(4),
        });
        let d = now.delta(&old);
        assert_eq!(d.counter("a_total"), Some(15));
        assert_eq!(d.gauge("depth"), Some(4));
    }

    #[test]
    fn counter_sums_across_label_sets() {
        let mut s = Snapshot::default();
        let mut a = counter("decisions_total", 3);
        a.labels.push(("title".into(), "fortnite".into()));
        let mut b = counter("decisions_total", 4);
        b.labels.push(("title".into(), "dota_2".into()));
        s.metrics.push(a);
        s.metrics.push(b);
        assert_eq!(s.counter("decisions_total"), Some(7));
        assert_eq!(s.counter("missing"), None);
        assert!(s
            .get_with("decisions_total", &[("title", "dota_2")])
            .is_some());
        assert!(s
            .get_with("decisions_total", &[("title", "csgo")])
            .is_none());
    }

    #[test]
    fn histogram_delta_drops_unchanged_buckets() {
        let old = HistogramSnapshot {
            count: 2,
            sum: 30,
            min: 10,
            max: 20,
            buckets: vec![HistBucket {
                lo: 10,
                hi: 11,
                count: 1,
            }],
            exemplar: None,
        };
        let now = HistogramSnapshot {
            count: 3,
            sum: 60,
            min: 10,
            max: 30,
            buckets: vec![
                HistBucket {
                    lo: 10,
                    hi: 11,
                    count: 1,
                },
                HistBucket {
                    lo: 30,
                    hi: 32,
                    count: 2,
                },
            ],
            exemplar: Some(ExemplarSnapshot {
                value: 30,
                flow: 7,
                trace: 9,
            }),
        };
        let d = now.delta(&old);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 30);
        assert_eq!(d.buckets.len(), 1);
        assert_eq!(d.buckets[0].lo, 30);
        assert_eq!(d.exemplar, now.exemplar, "delta keeps the live exemplar");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut s = Snapshot::default();
        s.metrics.push(counter("a_total", 10));
        s.metrics.push(MetricSnapshot {
            name: "lat_ns".into(),
            labels: vec![("shard".into(), "0".into())],
            help: "latency".into(),
            value: MetricValue::Histogram(HistogramSnapshot {
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
                buckets: vec![HistBucket {
                    lo: 5,
                    hi: 6,
                    count: 1,
                }],
                exemplar: Some(ExemplarSnapshot {
                    value: 5,
                    flow: 0xabc,
                    trace: 0xdef,
                }),
            }),
        });
        let text = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
