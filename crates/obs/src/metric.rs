//! Scalar metric primitives: monotonic counters and signed gauges.
//!
//! Both are single cache-line-aligned atomics so that handles owned by
//! different shard threads never false-share. All mutations use relaxed
//! ordering: telemetry needs eventual visibility, not synchronisation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
///
/// Incrementing is a single relaxed `fetch_add`; reading is a relaxed
/// `load`. The cache-line alignment keeps two counters registered by
/// different threads from sharing a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge for values that go up and down (occupancy, queue depth).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add a signed delta.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn concurrent_gauge_balances_to_zero() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 20_000;
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Counter>(), 64);
        assert_eq!(std::mem::align_of::<Gauge>(), 64);
    }
}
