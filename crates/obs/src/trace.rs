//! End-to-end pipeline tracing: per-flow span records across the whole
//! record path — ingest replay → k-way merge → bounded queue → router
//! batch → shard hand-off → pipeline slot → classifier → verdict.
//!
//! Producers hold a cheap, cloneable [`TraceSink`] and call
//! [`TraceSink::record`] at stage boundaries; the sink applies head-based
//! sampling on the flow id (`--trace-sample 1/N`), pushes into a shared
//! lock-free span ring (same Vyukov shape as
//! [`EventRing`]) and bumps the recorded/dropped
//! counters — drops are counted, never silent. A single [`TraceCollector`]
//! owns the consumer side: [`TraceCollector::drain`] moves queued spans
//! into [`TraceTimeline`]s keyed by flow id, bounded by [`TraceConfig`]
//! caps with explicit truncation accounting.
//!
//! A disabled sink (the default for paths that never installed tracing)
//! is a single branch per record; a sampled-out flow pays the branch plus
//! one modulo. Neither path allocates — [`SpanRecord`] is `Copy` and the
//! ring stores it inline.

use std::sync::{Arc, Mutex, OnceLock};

use serde::{Serialize, Value};

use crate::event::{Event, EventRing};
use crate::metric::{Counter, Gauge};
use crate::registry::Registry;

/// The pipeline stage a span was recorded at, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceStage {
    /// Paced replay released the record toward the producer.
    Ingest,
    /// The k-way merge emitted the record in global timestamp order.
    Merge,
    /// The producer enqueued the record onto a bounded ingest queue.
    Queue,
    /// The router drained the record as part of an adaptive batch.
    Router,
    /// The sharded monitor handed the record to its worker shard.
    Shard,
    /// The per-flow analyzer closed a volumetric slot.
    Slot,
    /// The title classifier produced its launch-window decision.
    Classifier,
    /// The session verdict (stage mix + QoE) was finalized.
    Verdict,
}

impl TraceStage {
    /// Every stage, in causal pipeline order.
    pub const ALL: [TraceStage; 8] = [
        TraceStage::Ingest,
        TraceStage::Merge,
        TraceStage::Queue,
        TraceStage::Router,
        TraceStage::Shard,
        TraceStage::Slot,
        TraceStage::Classifier,
        TraceStage::Verdict,
    ];

    /// Stable snake_case name (JSONL `stage` field, table column).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Ingest => "ingest",
            TraceStage::Merge => "merge",
            TraceStage::Queue => "queue",
            TraceStage::Router => "router",
            TraceStage::Shard => "shard",
            TraceStage::Slot => "slot",
            TraceStage::Classifier => "classifier",
            TraceStage::Verdict => "verdict",
        }
    }

    /// Causal rank: earlier pipeline stages sort first.
    pub fn rank(self) -> u8 {
        self as u8
    }
}

impl std::fmt::Display for TraceStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The trace id for a flow's span context: the interned flow key with the
/// slot index folded into the high bits. Deterministic and reconstructable
/// from any [`SpanRecord`], so an exemplar's `trace` label resolves back
/// to a `/trace?flow=` timeline.
pub fn trace_id(flow: u64, slot: u32) -> u64 {
    flow ^ u64::from(slot).rotate_right(24)
}

/// One stage crossing of one flow: the unit stored in the span ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Flow id (direction-invariant normalized five-tuple hash — the same
    /// id the decision journal keys on).
    pub flow: u64,
    /// Volumetric slot index for per-slot stages, 0 for transport stages.
    pub slot: u32,
    /// The pipeline stage this span covers.
    pub stage: TraceStage,
    /// Span timestamp (µs on the run's virtual or real clock).
    pub ts: u64,
    /// Span duration in µs (0 when the stage is a point event).
    pub dur_us: u64,
}

impl SpanRecord {
    /// This span's trace id (see [`trace_id`]).
    pub fn trace(&self) -> u64 {
        trace_id(self.flow, self.slot)
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("flow".into(), Value::String(Event::flow_hex(self.flow))),
            ("trace".into(), Value::String(Event::flow_hex(self.trace()))),
            ("slot".into(), Value::UInt(u64::from(self.slot))),
            ("stage".into(), Value::String(self.stage.name().into())),
            ("ts".into(), Value::UInt(self.ts)),
            ("dur_us".into(), Value::UInt(self.dur_us)),
        ])
    }
}

impl std::fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t+{:.1}s flow {:08x} slot {:>3} {:<10} {}us",
            self.ts as f64 / 1_000_000.0,
            self.flow & 0xffff_ffff,
            self.slot,
            self.stage.name(),
            self.dur_us
        )
    }
}

/// Sizing and sampling knobs for the span recorder.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Ring capacity (rounded up to a power of two). Producers drop —
    /// counted — when the consumer falls this far behind.
    pub ring_capacity: usize,
    /// Head-based sampling: record flows whose id satisfies
    /// `flow % sample == 0` (1 = every flow). Sampling keys on the flow id
    /// so every stage of a sampled flow is kept — partial chains would be
    /// worse than none.
    pub sample: u64,
    /// Maximum distinct flows tracked; spans for flows past the cap are
    /// counted as truncated.
    pub max_flows: usize,
    /// Per-flow span cap; a timeline past the cap keeps its prefix and
    /// marks itself truncated.
    pub max_spans_per_flow: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 16,
            sample: 1,
            max_flows: 4096,
            max_spans_per_flow: 1024,
        }
    }
}

impl TraceConfig {
    /// Sets the 1/N head-sampling ratio (0 is clamped to 1).
    pub fn with_sample(mut self, sample: u64) -> Self {
        self.sample = sample.max(1);
        self
    }
}

struct TraceShared {
    ring: EventRing<SpanRecord>,
    recorded: Arc<Counter>,
    dropped: Arc<Counter>,
    sample: u64,
}

/// Producer handle: clone freely, record from any thread, never blocks.
#[derive(Clone, Default)]
pub struct TraceSink {
    shared: Option<Arc<TraceShared>>,
}

impl TraceSink {
    /// A sink that records nowhere — every record is one branch.
    pub fn disabled() -> Self {
        TraceSink { shared: None }
    }

    /// True when records actually go somewhere.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// True when `flow` passes head sampling on an enabled sink. Callers
    /// with per-span setup cost (timers, exemplar capture) check this
    /// first; [`TraceSink::record`] re-applies the same predicate.
    pub fn sampled(&self, flow: u64) -> bool {
        match &self.shared {
            Some(shared) => flow.is_multiple_of(shared.sample),
            None => false,
        }
    }

    /// Records one span for a sampled flow, or counts it as dropped when
    /// the ring is full. Sampled-out flows and disabled sinks are no-ops.
    pub fn record(&self, flow: u64, slot: u32, stage: TraceStage, ts: u64, dur_us: u64) {
        if let Some(shared) = &self.shared {
            if !flow.is_multiple_of(shared.sample) {
                return;
            }
            let span = SpanRecord {
                flow,
                slot,
                stage,
                ts,
                dur_us,
            };
            match shared.ring.try_push(span) {
                Ok(()) => shared.recorded.inc(),
                Err(_) => shared.dropped.inc(),
            }
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field(
                "sample",
                &self.shared.as_ref().map_or(0, |shared| shared.sample),
            )
            .finish()
    }
}

/// One flow's spans across the pipeline, in arrival order.
#[derive(Debug, Clone)]
pub struct TraceTimeline {
    /// Flow id (normalized five-tuple hash).
    pub flow: u64,
    /// Spans in drain order.
    pub spans: Vec<SpanRecord>,
    /// True when the per-flow cap cut this timeline short.
    pub truncated: bool,
}

impl TraceTimeline {
    fn new(flow: u64) -> Self {
        TraceTimeline {
            flow,
            spans: Vec::new(),
            truncated: false,
        }
    }

    /// Spans sorted into causal order: stage rank first, then timestamp,
    /// then slot — the reconstructed end-to-end chain.
    pub fn causal_chain(&self) -> Vec<SpanRecord> {
        let mut chain = self.spans.clone();
        chain.sort_by_key(|s| (s.stage.rank(), s.ts, s.slot));
        chain
    }

    /// True when at least one span was recorded at `stage`.
    pub fn has_stage(&self, stage: TraceStage) -> bool {
        self.spans.iter().any(|s| s.stage == stage)
    }

    /// The distinct stages present, in causal order.
    pub fn stages(&self) -> Vec<TraceStage> {
        TraceStage::ALL
            .into_iter()
            .filter(|&st| self.has_stage(st))
            .collect()
    }
}

impl Serialize for TraceTimeline {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("flow".into(), Value::String(Event::flow_hex(self.flow))),
            ("truncated".into(), Value::Bool(self.truncated)),
            (
                "spans".into(),
                Value::Array(self.spans.iter().map(|s| s.to_value()).collect()),
            ),
        ])
    }
}

/// Consumer side of the span recorder: owns the drained state.
///
/// ```
/// use cgc_obs::trace::{TraceCollector, TraceConfig, TraceStage};
/// use cgc_obs::Registry;
///
/// let registry = Registry::new();
/// let (sink, mut traces) = TraceCollector::new(TraceConfig::default(), &registry);
///
/// sink.record(7, 0, TraceStage::Queue, 1_000, 0);
/// sink.record(7, 0, TraceStage::Router, 1_250, 250);
///
/// assert_eq!(traces.drain(), 2);
/// let tl = traces.timeline(7).expect("flow 7 recorded");
/// assert_eq!(tl.spans.len(), 2);
/// assert!(tl.has_stage(TraceStage::Router));
/// ```
pub struct TraceCollector {
    shared: Arc<TraceShared>,
    config: TraceConfig,
    /// Admission-ordered flow ids, parallel to `timelines` lookup.
    order: Vec<u64>,
    timelines: Vec<TraceTimeline>,
    truncated: Arc<Counter>,
    flows_gauge: Arc<Gauge>,
}

impl TraceCollector {
    /// Builds a collector plus the producer sink that feeds it,
    /// registering the drop/volume counters on `registry`.
    pub fn new(config: TraceConfig, registry: &Registry) -> (TraceSink, TraceCollector) {
        let recorded = registry.counter(
            "cgc_trace_spans_total",
            "Spans accepted into the trace ring",
        );
        let dropped = registry.counter(
            "cgc_trace_dropped_spans_total",
            "Spans dropped because the trace ring was full",
        );
        let truncated = registry.counter(
            "cgc_trace_truncated_spans_total",
            "Drained spans discarded by per-flow or flow-count caps",
        );
        let flows_gauge = registry.gauge(
            "cgc_trace_flows",
            "Distinct flows currently held by the trace collector",
        );
        let shared = Arc::new(TraceShared {
            ring: EventRing::with_capacity(config.ring_capacity),
            recorded,
            dropped,
            sample: config.sample.max(1),
        });
        let sink = TraceSink {
            shared: Some(Arc::clone(&shared)),
        };
        let collector = TraceCollector {
            shared,
            config,
            order: Vec::new(),
            timelines: Vec::new(),
            truncated,
            flows_gauge,
        };
        (sink, collector)
    }

    /// Another producer handle for this collector.
    pub fn sink(&self) -> TraceSink {
        TraceSink {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// Moves every queued span out of the ring into timelines. Returns how
    /// many spans were drained (including ones the caps then discarded).
    /// Cheap when the ring is empty.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Some(span) = self.shared.ring.try_pop() {
            n += 1;
            self.absorb(span);
        }
        self.flows_gauge.set(self.timelines.len() as i64);
        n
    }

    fn absorb(&mut self, span: SpanRecord) {
        let idx = match self.order.iter().position(|&f| f == span.flow) {
            Some(i) => i,
            None => {
                if self.timelines.len() >= self.config.max_flows {
                    self.truncated.inc();
                    return;
                }
                self.order.push(span.flow);
                self.timelines.push(TraceTimeline::new(span.flow));
                self.timelines.len() - 1
            }
        };
        let tl = &mut self.timelines[idx];
        if tl.spans.len() >= self.config.max_spans_per_flow {
            // Stage-aware truncation: the cap bounds per-flow volume, but
            // a stage's *first* span is always kept — a long flow whose
            // early high-volume stages (merge, queue, router) exhaust the
            // cap still reconstructs its full causal chain down to the
            // verdict.
            if tl.has_stage(span.stage) {
                tl.truncated = true;
                self.truncated.inc();
                return;
            }
        }
        tl.spans.push(span);
    }

    /// All timelines in flow-admission order (drain first for freshness).
    pub fn timelines(&self) -> &[TraceTimeline] {
        &self.timelines
    }

    /// Consumes the collector, yielding the timelines.
    pub fn into_timelines(mut self) -> Vec<TraceTimeline> {
        self.drain();
        std::mem::take(&mut self.timelines)
    }

    /// The timeline for one flow id, if it has been seen.
    pub fn timeline(&self, flow: u64) -> Option<&TraceTimeline> {
        self.timelines.iter().find(|t| t.flow == flow)
    }

    /// JSONL export: one line per flow timeline, admission order. `flow`
    /// narrows to one flow; `slot` keeps only spans of that slot (and
    /// drops flows with none).
    pub fn to_jsonl_filtered(&self, flow: Option<u64>, slot: Option<u32>) -> String {
        let mut out = String::new();
        for tl in &self.timelines {
            if flow.is_some_and(|f| f != tl.flow) {
                continue;
            }
            match slot {
                None => {
                    out.push_str(&crate::journal::render_line(tl));
                    out.push('\n');
                }
                Some(s) => {
                    let narrowed = TraceTimeline {
                        flow: tl.flow,
                        spans: tl.spans.iter().filter(|sp| sp.slot == s).copied().collect(),
                        truncated: tl.truncated,
                    };
                    if !narrowed.spans.is_empty() {
                        out.push_str(&crate::journal::render_line(&narrowed));
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// JSONL export of every timeline.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_filtered(None, None)
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("flows", &self.timelines.len())
            .finish()
    }
}

// ------------------------------------------------------------ pump

/// Off-thread trace consumer: continuously drains the span ring into a
/// shared [`TraceCollector`] so per-flow timelines stay fresh and the
/// ring keeps space for new spans — without it, a long run with eager
/// stages (merge, per-record queue/router) fills the ring between
/// scrapes and later stages count as drops.
///
/// The pump thread wakes every `interval`, drains, and counts its work
/// in `cgc_trace_pump_drains_total` / `cgc_trace_pump_spans_total`.
/// Dropping the pump performs one final drain, so nothing queued at
/// shutdown is lost.
pub struct TracePump {
    collector: Arc<Mutex<TraceCollector>>,
    stop: Arc<(Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TracePump {
    /// Spawns the consumer thread draining `collector` every `interval`,
    /// counting drained spans on `registry`.
    pub fn start(
        collector: Arc<Mutex<TraceCollector>>,
        interval: std::time::Duration,
        registry: &Registry,
    ) -> TracePump {
        let drains = registry.counter(
            "cgc_trace_pump_drains_total",
            "Drain passes performed by the off-thread trace consumer",
        );
        let spans = registry.counter(
            "cgc_trace_pump_spans_total",
            "Spans moved into timelines by the off-thread trace consumer",
        );
        let stop = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let stop_flag = Arc::clone(&stop);
        let pump_collector = Arc::clone(&collector);
        let handle = std::thread::Builder::new()
            .name("trace-pump".into())
            .spawn(move || {
                let (lock, cvar) = &*stop_flag;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, _) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    let n = lock_collector(&pump_collector).drain();
                    drains.inc();
                    if n > 0 {
                        spans.add(n as u64);
                    }
                }
            })
            .expect("spawn trace pump");
        TracePump {
            collector,
            stop,
            handle: Some(handle),
        }
    }

    /// The collector this pump drains into.
    pub fn collector(&self) -> Arc<Mutex<TraceCollector>> {
        Arc::clone(&self.collector)
    }

    /// Stops the pump thread and performs the final drain (also what
    /// `Drop` does; call explicitly when you want the join to be visible).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
            let _ = handle.join();
            // Final drain: anything recorded between the thread's last
            // pass and the join lands in the timelines before shutdown
            // returns.
            lock_collector(&self.collector).drain();
        }
    }
}

impl Drop for TracePump {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------ global

static GLOBAL: OnceLock<(TraceSink, Arc<Mutex<TraceCollector>>)> = OnceLock::new();

/// Installs the process-wide trace collector on the global registry
/// (first call wins; later calls return the existing instance). Code
/// paths that use process-global metrics record here.
pub fn install_global(config: TraceConfig) -> Arc<Mutex<TraceCollector>> {
    let (_, collector) = GLOBAL.get_or_init(|| {
        let (sink, collector) = TraceCollector::new(config, Registry::global());
        (sink, Arc::new(Mutex::new(collector)))
    });
    Arc::clone(collector)
}

/// The process-wide trace collector, if one was installed.
pub fn global() -> Option<Arc<Mutex<TraceCollector>>> {
    GLOBAL.get().map(|(_, c)| Arc::clone(c))
}

/// A sink feeding the process-wide collector — disabled (free) until
/// [`install_global`] runs.
pub fn global_sink() -> TraceSink {
    GLOBAL
        .get()
        .map(|(s, _)| s.clone())
        .unwrap_or_else(TraceSink::disabled)
}

/// Locks a shared collector, recovering from a poisoned mutex: a panicked
/// exporter must not take the recorder down with it.
pub fn lock_collector(
    collector: &Mutex<TraceCollector>,
) -> std::sync::MutexGuard<'_, TraceCollector> {
    collector.lock().unwrap_or_else(|e| e.into_inner())
}

/// The sink's live dropped-span count (used in asserts and health output).
pub fn dropped_spans(sink: &TraceSink) -> u64 {
    sink.shared.as_ref().map_or(0, |s| s.dropped.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_keeps_draining_and_final_drains_on_stop() {
        let registry = Registry::new();
        let (sink, collector) = TraceCollector::new(TraceConfig::default(), &registry);
        let collector = Arc::new(Mutex::new(collector));
        let pump = TracePump::start(
            Arc::clone(&collector),
            std::time::Duration::from_millis(5),
            &registry,
        );
        sink.record(7, 0, TraceStage::Ingest, 10, 0);
        sink.record(7, 0, TraceStage::Queue, 20, 0);
        // The pump moves the spans off the ring without an explicit drain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if lock_collector(&collector)
                .timeline(7)
                .is_some_and(|t| t.spans.len() == 2)
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pump never drained");
            std::thread::yield_now();
        }
        // A span recorded right before stop survives via the final drain.
        sink.record(7, 1, TraceStage::Slot, 30, 0);
        pump.stop();
        let collector = lock_collector(&collector);
        assert_eq!(collector.timeline(7).unwrap().spans.len(), 3);
        let snap = registry.snapshot();
        assert!(snap.counter("cgc_trace_pump_drains_total").unwrap() > 0);
        assert_eq!(snap.counter("cgc_trace_pump_spans_total"), Some(3));
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(!sink.sampled(0));
        sink.record(1, 0, TraceStage::Ingest, 0, 0); // must not panic
        assert_eq!(dropped_spans(&sink), 0);
    }

    #[test]
    fn drain_builds_per_flow_timelines_in_admission_order() {
        let registry = Registry::new();
        let (sink, mut traces) = TraceCollector::new(TraceConfig::default(), &registry);
        for (i, stage) in TraceStage::ALL.into_iter().enumerate() {
            sink.record(7, 0, stage, i as u64 * 10, i as u64);
            sink.record(3, 0, stage, i as u64 * 10 + 5, i as u64);
        }
        assert_eq!(traces.drain(), 16);
        let tls = traces.timelines();
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].flow, 7);
        assert_eq!(tls[1].flow, 3);
        assert_eq!(tls[0].stages(), TraceStage::ALL.to_vec());
        let chain = tls[0].causal_chain();
        assert!(chain
            .windows(2)
            .all(|w| w[0].stage.rank() <= w[1].stage.rank()));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cgc_trace_spans_total"), Some(16));
        assert_eq!(snap.counter("cgc_trace_dropped_spans_total"), Some(0));
        assert_eq!(snap.gauge("cgc_trace_flows"), Some(2));
    }

    #[test]
    fn head_sampling_keys_on_flow_id() {
        let registry = Registry::new();
        let config = TraceConfig::default().with_sample(4);
        let (sink, mut traces) = TraceCollector::new(config, &registry);
        for flow in 0..16u64 {
            assert_eq!(sink.sampled(flow), flow % 4 == 0);
            sink.record(flow, 0, TraceStage::Queue, flow, 0);
            sink.record(flow, 0, TraceStage::Shard, flow + 1, 0);
        }
        traces.drain();
        // Only flows 0, 4, 8, 12 recorded — but each kept its whole chain.
        assert_eq!(traces.timelines().len(), 4);
        assert!(traces
            .timelines()
            .iter()
            .all(|t| t.flow % 4 == 0 && t.spans.len() == 2));
    }

    #[test]
    fn zero_sample_clamps_to_record_everything() {
        let config = TraceConfig::default().with_sample(0);
        assert_eq!(config.sample, 1);
        let registry = Registry::new();
        let (sink, mut traces) = TraceCollector::new(
            TraceConfig {
                sample: 0,
                ..TraceConfig::default()
            },
            &registry,
        );
        sink.record(5, 0, TraceStage::Ingest, 0, 0);
        assert_eq!(traces.drain(), 1);
    }

    #[test]
    fn ring_overflow_is_counted_never_silent() {
        let registry = Registry::new();
        let config = TraceConfig {
            ring_capacity: 8,
            ..TraceConfig::default()
        };
        let (sink, mut traces) = TraceCollector::new(config, &registry);
        for i in 0..20u64 {
            sink.record(1, 0, TraceStage::Slot, i, 0);
        }
        let drained = traces.drain();
        let snap = registry.snapshot();
        let recorded = snap.counter("cgc_trace_spans_total").unwrap();
        let dropped = snap.counter("cgc_trace_dropped_spans_total").unwrap();
        assert_eq!(recorded + dropped, 20);
        assert_eq!(drained as u64, recorded);
        assert!(dropped > 0, "an 8-slot ring cannot hold 20 spans");
    }

    #[test]
    fn caps_truncate_with_accounting() {
        let registry = Registry::new();
        let config = TraceConfig {
            max_flows: 2,
            max_spans_per_flow: 2,
            ..TraceConfig::default()
        };
        let (sink, mut traces) = TraceCollector::new(config, &registry);
        for flow in 1..=3u64 {
            for i in 0..3u64 {
                sink.record(flow, 0, TraceStage::Router, i, 0);
            }
        }
        traces.drain();
        let tls = traces.timelines();
        assert_eq!(tls.len(), 2, "third flow rejected by max_flows");
        assert!(tls.iter().all(|t| t.spans.len() == 2 && t.truncated));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cgc_trace_truncated_spans_total"), Some(5));
    }

    #[test]
    fn jsonl_filters_by_flow_and_slot() {
        let registry = Registry::new();
        let (sink, mut traces) = TraceCollector::new(TraceConfig::default(), &registry);
        sink.record(0xa, 1, TraceStage::Slot, 10, 2);
        sink.record(0xa, 2, TraceStage::Slot, 20, 3);
        sink.record(0xb, 1, TraceStage::Slot, 15, 1);
        traces.drain();
        assert_eq!(traces.to_jsonl().lines().count(), 2);
        let one = traces.to_jsonl_filtered(Some(0xa), None);
        assert_eq!(one.lines().count(), 1);
        assert!(one.contains("\"flow\":\"000000000000000a\""), "{one}");
        let slot2 = traces.to_jsonl_filtered(None, Some(2));
        assert_eq!(slot2.lines().count(), 1, "only flow 0xa has slot 2");
        assert!(slot2.contains("\"slot\":2"), "{slot2}");
        assert!(!slot2.contains("\"slot\":1"), "{slot2}");
    }

    #[test]
    fn span_jsonl_schema_is_flat_and_stable() {
        let span = SpanRecord {
            flow: 0xabcd,
            slot: 3,
            stage: TraceStage::Classifier,
            ts: 5_000_000,
            dur_us: 42,
        };
        let line = crate::journal::render_line(&span);
        assert!(line.contains("\"flow\":\"000000000000abcd\""), "{line}");
        assert!(line.contains("\"stage\":\"classifier\""), "{line}");
        assert!(line.contains("\"ts\":5000000"), "{line}");
        assert!(line.contains("\"dur_us\":42"), "{line}");
        assert!(
            line.contains(&format!("\"trace\":\"{}\"", Event::flow_hex(span.trace()))),
            "{line}"
        );
    }

    #[test]
    fn trace_id_is_deterministic_and_slot_sensitive() {
        assert_eq!(trace_id(7, 3), trace_id(7, 3));
        assert_ne!(trace_id(7, 3), trace_id(7, 4));
        assert_ne!(trace_id(7, 3), trace_id(8, 3));
        let span = SpanRecord {
            flow: 7,
            slot: 3,
            stage: TraceStage::Slot,
            ts: 0,
            dur_us: 0,
        };
        assert_eq!(span.trace(), trace_id(7, 3));
    }

    #[test]
    fn global_sink_is_disabled_until_install() {
        let before_installed = global().is_some();
        let c1 = install_global(TraceConfig::default());
        let c2 = install_global(TraceConfig::default().with_sample(8));
        assert!(Arc::ptr_eq(&c1, &c2), "second install returns the first");
        assert!(global_sink().is_enabled());
        let _ = before_installed;
    }
}
