//! The flight-recorder consumer: drains the event ring into per-flow
//! decision timelines.
//!
//! Producers hold a cheap, cloneable [`EventSink`] and call
//! [`EventSink::emit`] at decision points; the sink pushes into the shared
//! lock-free ring and bumps the recorded/dropped counters. A single
//! [`Journal`] owns the consumer side: [`Journal::drain`] moves queued
//! events into [`FlowTimeline`]s (ordered event vectors keyed by flow id)
//! plus a bounded global tail, both bounded by [`JournalConfig`] caps with
//! explicit truncation accounting — nothing is ever lost silently.
//!
//! A disabled sink (the default for code paths that never installed a
//! journal) is a single branch per emit, so instrumented hot paths pay
//! nothing when nobody is recording.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Serialize, Value};

use crate::event::{Event, EventKind, FlowAddr};
use crate::metric::{Counter, Gauge};
use crate::registry::Registry;
use cgc_domain::Platform;

/// Sizing knobs for the flight recorder.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Ring capacity (rounded up to a power of two). Producers drop —
    /// counted — when the consumer falls this far behind.
    pub ring_capacity: usize,
    /// Maximum distinct flows tracked; events for flows past the cap are
    /// counted as truncated.
    pub max_flows: usize,
    /// Per-flow event cap; a timeline past the cap keeps its prefix and
    /// marks itself truncated.
    pub max_events_per_flow: usize,
    /// Size of the global most-recent-events tail served by `/journal?tail=N`.
    pub tail_events: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            ring_capacity: 1 << 16,
            max_flows: 4096,
            max_events_per_flow: 1024,
            tail_events: 512,
        }
    }
}

struct SinkShared {
    ring: crate::event::EventRing<Event>,
    recorded: Arc<Counter>,
    dropped: Arc<Counter>,
}

/// Producer handle: clone freely, emit from any thread, never blocks.
#[derive(Clone, Default)]
pub struct EventSink {
    shared: Option<Arc<SinkShared>>,
}

impl EventSink {
    /// A sink that records nowhere — every emit is one branch.
    pub fn disabled() -> Self {
        EventSink { shared: None }
    }

    /// True when emits actually record somewhere.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Records one event, or counts it as dropped when the ring is full.
    /// On a disabled sink this is a no-op.
    pub fn emit(&self, flow: u64, ts: u64, kind: EventKind) {
        if let Some(shared) = &self.shared {
            match shared.ring.try_push(Event { flow, ts, kind }) {
                Ok(()) => shared.recorded.inc(),
                Err(_) => shared.dropped.inc(),
            }
        }
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// One flow's ordered decision record.
#[derive(Debug, Clone)]
pub struct FlowTimeline {
    /// Flow id (normalized five-tuple hash, or session id in fleet runs).
    pub flow: u64,
    /// Endpoints, filled in by the flow's `FlowAdmitted` event.
    pub addr: Option<FlowAddr>,
    /// Platform, filled in by the flow's `FlowAdmitted` event.
    pub platform: Option<Platform>,
    /// Events in arrival order (per-flow order is production order: each
    /// flow's events come from one thread).
    pub events: Vec<Event>,
    /// True when the per-flow cap cut this timeline short.
    pub truncated: bool,
}

impl FlowTimeline {
    fn new(flow: u64) -> Self {
        FlowTimeline {
            flow,
            addr: None,
            platform: None,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// The first event's kind name, or "empty".
    pub fn first_event(&self) -> &'static str {
        self.events.first().map_or("empty", |e| e.kind.name())
    }

    /// The last event's kind name, or "empty".
    pub fn last_event(&self) -> &'static str {
        self.events.last().map_or("empty", |e| e.kind.name())
    }
}

impl Serialize for FlowTimeline {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("flow".into(), Value::String(Event::flow_hex(self.flow)))];
        if let Some(addr) = &self.addr {
            if let Value::Object(pairs) = addr.to_value() {
                fields.extend(pairs);
            }
        }
        if let Some(platform) = &self.platform {
            fields.push(("platform".into(), Value::String(platform.to_string())));
        }
        fields.push(("truncated".into(), Value::Bool(self.truncated)));
        fields.push((
            "events".into(),
            Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
        ));
        Value::Object(fields)
    }
}

/// Consumer side of the flight recorder: owns the drained state.
///
/// ```
/// use cgc_obs::event::EventKind;
/// use cgc_obs::journal::{Journal, JournalConfig};
/// use cgc_obs::Registry;
///
/// let registry = Registry::new();
/// let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
///
/// // Producers emit from any thread; the sink never blocks.
/// sink.emit(7, 1_000, EventKind::RtpInvalid { payload_len: 480 });
/// sink.emit(7, 2_000, EventKind::RtpInvalid { payload_len: 512 });
///
/// assert_eq!(journal.drain(), 2);
/// let timeline = journal.timeline(7).expect("flow 7 recorded");
/// assert_eq!(timeline.events.len(), 2);
/// assert_eq!(timeline.events[0].ts, 1_000, "per-flow order preserved");
/// ```
pub struct Journal {
    shared: Arc<SinkShared>,
    config: JournalConfig,
    /// Admission-ordered flow ids, parallel to `timelines` lookup.
    order: Vec<u64>,
    timelines: Vec<FlowTimeline>,
    tail: VecDeque<Event>,
    truncated: Arc<Counter>,
    flows_gauge: Arc<Gauge>,
}

impl Journal {
    /// Builds a journal plus the producer sink that feeds it, registering
    /// the drop/volume counters on `registry`.
    pub fn new(config: JournalConfig, registry: &Registry) -> (EventSink, Journal) {
        let recorded = registry.counter(
            "cgc_journal_events_total",
            "Events accepted into the flight-recorder ring",
        );
        let dropped = registry.counter(
            "cgc_journal_dropped_events_total",
            "Events dropped because the flight-recorder ring was full",
        );
        let truncated = registry.counter(
            "cgc_journal_truncated_events_total",
            "Drained events discarded by per-flow or flow-count caps",
        );
        let flows_gauge = registry.gauge(
            "cgc_journal_flows",
            "Distinct flows currently held in the journal",
        );
        let shared = Arc::new(SinkShared {
            ring: crate::event::EventRing::with_capacity(config.ring_capacity),
            recorded,
            dropped,
        });
        let sink = EventSink {
            shared: Some(Arc::clone(&shared)),
        };
        let journal = Journal {
            shared,
            config,
            order: Vec::new(),
            timelines: Vec::new(),
            tail: VecDeque::new(),
            truncated,
            flows_gauge,
        };
        (sink, journal)
    }

    /// Another producer handle for this journal.
    pub fn sink(&self) -> EventSink {
        EventSink {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// Moves every queued event out of the ring into timelines and the
    /// tail. Returns how many events were drained (including ones the caps
    /// then discarded). Cheap when the ring is empty.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Some(event) = self.shared.ring.try_pop() {
            n += 1;
            self.tail.push_back(event);
            while self.tail.len() > self.config.tail_events {
                self.tail.pop_front();
            }
            self.absorb(event);
        }
        self.flows_gauge.set(self.timelines.len() as i64);
        n
    }

    fn absorb(&mut self, event: Event) {
        let idx = match self.order.iter().position(|&f| f == event.flow) {
            Some(i) => i,
            None => {
                if self.timelines.len() >= self.config.max_flows {
                    self.truncated.inc();
                    return;
                }
                self.order.push(event.flow);
                self.timelines.push(FlowTimeline::new(event.flow));
                self.timelines.len() - 1
            }
        };
        let tl = &mut self.timelines[idx];
        if let EventKind::FlowAdmitted { addr, platform } = event.kind {
            tl.addr = Some(addr);
            tl.platform = Some(platform);
        }
        if tl.events.len() >= self.config.max_events_per_flow {
            tl.truncated = true;
            self.truncated.inc();
            return;
        }
        tl.events.push(event);
    }

    /// All timelines in flow-admission order (drain first for freshness).
    pub fn timelines(&self) -> &[FlowTimeline] {
        &self.timelines
    }

    /// Consumes the journal, yielding the timelines.
    pub fn into_timelines(mut self) -> Vec<FlowTimeline> {
        self.drain();
        std::mem::take(&mut self.timelines)
    }

    /// The timeline for one flow id, if it has been seen.
    pub fn timeline(&self, flow: u64) -> Option<&FlowTimeline> {
        self.timelines.iter().find(|t| t.flow == flow)
    }

    /// The most recent `n` events across all flows, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let skip = self.tail.len().saturating_sub(n);
        self.tail.iter().skip(skip).copied().collect()
    }

    /// JSONL export: one line per flow timeline, admission order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for tl in &self.timelines {
            out.push_str(&render_line(tl));
            out.push('\n');
        }
        out
    }

    /// JSONL export of the last `n` events, one event per line.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for e in self.tail(n) {
            out.push_str(&render_line(&e));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("flows", &self.timelines.len())
            .field("tail", &self.tail.len())
            .finish()
    }
}

/// Compact single-line JSON for one serializable value (events and
/// timelines serialize from plain owned data, so this cannot fail).
pub fn render_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("journal serialization is infallible")
}

// ------------------------------------------------------------ pump

/// Off-thread journal consumer: continuously drains the event ring into
/// a shared [`Journal`] so timelines stay fresh in long-lived
/// deployments — scrapes and queries read drained state instead of
/// triggering a drain themselves, and producers get ring space back at a
/// steady cadence rather than at the next scrape.
///
/// The pump thread wakes every `interval`, drains, and counts its work
/// in `cgc_journal_pump_drains_total` / `cgc_journal_pump_events_total`.
/// Dropping the pump performs one final drain, so nothing queued at
/// shutdown is lost.
pub struct JournalPump {
    journal: Arc<Mutex<Journal>>,
    stop: Arc<(Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl JournalPump {
    /// Spawns the consumer thread draining `journal` every `interval`,
    /// counting drained events on `registry`.
    pub fn start(
        journal: Arc<Mutex<Journal>>,
        interval: std::time::Duration,
        registry: &Registry,
    ) -> JournalPump {
        let drains = registry.counter(
            "cgc_journal_pump_drains_total",
            "Drain passes performed by the off-thread journal consumer",
        );
        let events = registry.counter(
            "cgc_journal_pump_events_total",
            "Events moved into timelines by the off-thread journal consumer",
        );
        let stop = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let stop_flag = Arc::clone(&stop);
        let pump_journal = Arc::clone(&journal);
        let handle = std::thread::Builder::new()
            .name("journal-pump".into())
            .spawn(move || {
                let (lock, cvar) = &*stop_flag;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, _) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    let n = lock_journal(&pump_journal).drain();
                    drains.inc();
                    if n > 0 {
                        events.add(n as u64);
                    }
                }
            })
            .expect("spawn journal pump");
        JournalPump {
            journal,
            stop,
            handle: Some(handle),
        }
    }

    /// The journal this pump drains into.
    pub fn journal(&self) -> Arc<Mutex<Journal>> {
        Arc::clone(&self.journal)
    }

    /// Stops the pump thread and performs the final drain (also what
    /// `Drop` does; call explicitly when you want the join to be visible).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
            let _ = handle.join();
            // Final drain: anything emitted between the thread's last pass
            // and the join lands in the timelines before shutdown returns.
            lock_journal(&self.journal).drain();
        }
    }
}

impl Drop for JournalPump {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for JournalPump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalPump")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

// ------------------------------------------------------------ global

static GLOBAL: OnceLock<(EventSink, Arc<Mutex<Journal>>)> = OnceLock::new();

/// Installs the process-wide journal on the global registry (first call
/// wins; later calls return the existing instance). Code paths that use
/// process-global metrics — `TapMonitor::new`, `run_one` — record here.
pub fn install_global(config: JournalConfig) -> Arc<Mutex<Journal>> {
    let (_, journal) = GLOBAL.get_or_init(|| {
        let (sink, journal) = Journal::new(config, Registry::global());
        (sink, Arc::new(Mutex::new(journal)))
    });
    Arc::clone(journal)
}

/// The process-wide journal, if one was installed.
pub fn global() -> Option<Arc<Mutex<Journal>>> {
    GLOBAL.get().map(|(_, j)| Arc::clone(j))
}

/// A sink feeding the process-wide journal — disabled (free) until
/// [`install_global`] runs.
pub fn global_sink() -> EventSink {
    GLOBAL
        .get()
        .map(|(s, _)| s.clone())
        .unwrap_or_else(EventSink::disabled)
}

/// Locks a shared journal, recovering from a poisoned mutex: a panicked
/// exporter must not take the recorder down with it.
pub fn lock_journal(journal: &Mutex<Journal>) -> std::sync::MutexGuard<'_, Journal> {
    journal.lock().unwrap_or_else(|e| e.into_inner())
}

/// Convenience: total dropped-event count from a snapshot-capable registry
/// is `cgc_journal_dropped_events_total`; this reads the sink's live value
/// without a snapshot (used in asserts and health output).
pub fn dropped_events(sink: &EventSink) -> u64 {
    sink.shared.as_ref().map_or(0, |s| s.dropped.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CloseCause;

    fn kinds() -> [EventKind; 3] {
        [
            EventKind::LaunchWindowClosed { packets: 10 },
            EventKind::PatternInferred {
                pattern: cgc_domain::ActivityPattern::ALL[0],
                confidence: 0.8,
            },
            EventKind::FlowClosed {
                cause: CloseCause::Drained,
                confirmed: true,
            },
        ]
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(1, 0, kinds()[0]); // must not panic or record
        assert_eq!(dropped_events(&sink), 0);
    }

    #[test]
    fn drain_builds_per_flow_timelines_in_admission_order() {
        let registry = Registry::new();
        let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
        // Interleave two flows; flow 7 admitted first.
        for (i, k) in kinds().into_iter().enumerate() {
            sink.emit(7, i as u64 * 10, k);
            sink.emit(3, i as u64 * 10 + 5, k);
        }
        assert_eq!(journal.drain(), 6);
        let tls = journal.timelines();
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].flow, 7);
        assert_eq!(tls[1].flow, 3);
        assert_eq!(tls[0].events.len(), 3);
        assert_eq!(tls[0].first_event(), "launch_window_closed");
        assert_eq!(tls[0].last_event(), "flow_closed");
        assert!(tls[0].events.windows(2).all(|w| w[0].ts <= w[1].ts));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cgc_journal_events_total"), Some(6));
        assert_eq!(snap.counter("cgc_journal_dropped_events_total"), Some(0));
        assert_eq!(snap.gauge("cgc_journal_flows"), Some(2));
    }

    #[test]
    fn ring_overflow_is_counted_never_silent() {
        let registry = Registry::new();
        let config = JournalConfig {
            ring_capacity: 8,
            ..JournalConfig::default()
        };
        let (sink, mut journal) = Journal::new(config, &registry);
        for i in 0..20u64 {
            sink.emit(1, i, kinds()[0]);
        }
        let drained = journal.drain();
        let snap = registry.snapshot();
        let recorded = snap.counter("cgc_journal_events_total").unwrap();
        let dropped = snap.counter("cgc_journal_dropped_events_total").unwrap();
        assert_eq!(recorded + dropped, 20);
        assert_eq!(drained as u64, recorded);
        assert!(dropped > 0, "an 8-slot ring cannot hold 20 events");
    }

    #[test]
    fn caps_truncate_with_accounting() {
        let registry = Registry::new();
        let config = JournalConfig {
            max_flows: 2,
            max_events_per_flow: 2,
            ..JournalConfig::default()
        };
        let (sink, mut journal) = Journal::new(config, &registry);
        for flow in 1..=3u64 {
            for i in 0..3u64 {
                sink.emit(flow, i, kinds()[0]);
            }
        }
        journal.drain();
        let tls = journal.timelines();
        assert_eq!(tls.len(), 2, "third flow rejected by max_flows");
        assert!(tls.iter().all(|t| t.events.len() == 2 && t.truncated));
        let snap = registry.snapshot();
        // 2 flows x 1 over-cap event + 3 events of the rejected flow.
        assert_eq!(snap.counter("cgc_journal_truncated_events_total"), Some(5));
    }

    #[test]
    fn tail_keeps_most_recent_events_across_flows() {
        let registry = Registry::new();
        let config = JournalConfig {
            tail_events: 4,
            ..JournalConfig::default()
        };
        let (sink, mut journal) = Journal::new(config, &registry);
        for i in 0..10u64 {
            sink.emit(i % 3, i, kinds()[0]);
        }
        journal.drain();
        let tail = journal.tail(4);
        assert_eq!(tail.iter().map(|e| e.ts).collect::<Vec<_>>(), [6, 7, 8, 9]);
        assert_eq!(journal.tail(2).len(), 2);
        let jsonl = journal.tail_jsonl(2);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().all(|l| l.contains("\"event\":")));
    }

    #[test]
    fn timeline_jsonl_is_one_object_per_flow() {
        let registry = Registry::new();
        let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
        let addr = FlowAddr {
            server_ip: "10.1.2.3".parse().unwrap(),
            server_port: 9999,
            client_ip: "100.64.0.9".parse().unwrap(),
            client_port: 51000,
        };
        sink.emit(
            42,
            0,
            EventKind::FlowAdmitted {
                addr,
                platform: Platform::AmazonLuna,
            },
        );
        sink.emit(42, 9, kinds()[2]);
        journal.drain();
        let jsonl = journal.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.contains("\"flow\":\"000000000000002a\""), "{line}");
        assert!(line.contains("\"server\":\"10.1.2.3:9999\""), "{line}");
        assert!(line.contains("\"platform\":"), "{line}");
        assert!(line.contains("\"events\":["), "{line}");
        let tl = journal.timeline(42).unwrap();
        assert_eq!(tl.platform, Some(Platform::AmazonLuna));
        assert!(journal.timeline(1).is_none());
    }

    #[test]
    fn pump_drains_continuously_without_scrapes() {
        let registry = Registry::new();
        let (sink, journal) = Journal::new(JournalConfig::default(), &registry);
        let journal = Arc::new(Mutex::new(journal));
        let pump = JournalPump::start(
            Arc::clone(&journal),
            std::time::Duration::from_millis(1),
            &registry,
        );
        for i in 0..50u64 {
            sink.emit(1, i, kinds()[0]);
        }
        // The consumer runs off-thread: events reach the timeline without
        // anyone calling drain() on this thread.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let n = lock_journal(&journal)
                .timelines()
                .first()
                .map_or(0, |t| t.events.len());
            if n == 50 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pump never drained");
            std::thread::yield_now();
        }
        pump.stop();
        let snap = registry.snapshot();
        assert!(snap.counter("cgc_journal_pump_drains_total").unwrap() > 0);
        assert_eq!(snap.counter("cgc_journal_pump_events_total"), Some(50));
    }

    #[test]
    fn pump_final_drain_flushes_shutdown_tail() {
        let registry = Registry::new();
        let (sink, journal) = Journal::new(JournalConfig::default(), &registry);
        let journal = Arc::new(Mutex::new(journal));
        // A pump on a long interval: nothing drains until shutdown.
        let pump = JournalPump::start(
            Arc::clone(&journal),
            std::time::Duration::from_secs(3600),
            &registry,
        );
        sink.emit(9, 1, kinds()[0]);
        sink.emit(9, 2, kinds()[2]);
        drop(pump); // final drain on drop
        let journal = lock_journal(&journal);
        let tl = journal.timeline(9).expect("flushed at shutdown");
        assert_eq!(tl.events.len(), 2);
        assert_eq!(tl.last_event(), "flow_closed");
    }

    #[test]
    fn global_sink_is_disabled_until_install() {
        // Note: other tests in this binary may have installed the global
        // journal already; only assert the install-idempotence half when so.
        let before_installed = global().is_some();
        let j1 = install_global(JournalConfig::default());
        let j2 = install_global(JournalConfig {
            ring_capacity: 4,
            ..JournalConfig::default()
        });
        assert!(Arc::ptr_eq(&j1, &j2), "second install returns the first");
        assert!(global_sink().is_enabled());
        let _ = before_installed;
    }
}
