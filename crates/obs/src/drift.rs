//! Label-free score-distribution drift detection.
//!
//! Ground truth is the exception, not the rule: an ISP tap never learns
//! what game a subscriber actually launched. What the pipeline *always*
//! has is the classifiers' own score distributions — per-inference
//! confidence and top-1 margin. Under a stationary workload those
//! distributions are stable; catalog churn (a new title ships) or an
//! access-network regime change (loss/latency ramp) shifts them long
//! before anyone re-labels a dataset.
//!
//! The [`DriftEngine`] holds, per model, a **reference** histogram of
//! confidence and margin scores frozen after a warmup
//! ([`DriftConfig::reference_size`] observations) and a **current**
//! rolling window ([`DriftConfig::window`]). Each sync compares the two
//! with the Population Stability Index and a Kolmogorov–Smirnov-style
//! max-CDF-distance statistic, plus an unknown-title novelty signal (the
//! fraction of launch windows scored below the unknown-gating threshold,
//! relative to the reference). The worst of PSI and novelty-excess per
//! model is its drift score:
//!
//! - `cgc_drift_psi_milli{model=,signal=}` / `cgc_drift_ks_milli{model=,signal=}`
//! - `cgc_drift_novelty_milli{model=}` — low-confidence launch fraction
//! - `cgc_drift_score_milli{model=}` — the alarmed scalar (PSI units ×1000)
//!
//! By the usual PSI reading, < 0.1 is stationary, 0.1–0.25 is a moderate
//! shift, and ≥ 0.25 ([`DriftConfig::alarm_threshold`]) demands action —
//! the `drift_score` SLO objective burns against exactly that ceiling.
//!
//! Observations arrive through a lock-free [`DriftSink`] with the same
//! counted-never-silent shedding as the journal and quality rings; the
//! pipeline emits them zero-allocation, one branch when disabled.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Serialize, Value};

use crate::event::EventRing;
use crate::metric::{Counter, Gauge};
use crate::quality::ModelKind;
use crate::registry::Registry;

/// One score observation: which model inferred, how confident it was,
/// and by how much the top class beat the runner-up.
#[derive(Debug, Clone, Copy)]
pub struct DriftObservation {
    /// Which classifier produced the scores.
    pub model: ModelKind,
    /// Top-1 confidence, 0..=1.
    pub confidence: f32,
    /// Top-1 minus top-2 probability, 0..=1.
    pub margin: f32,
}

/// Sizing and thresholds of the drift detector.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Sink ring capacity (observations), rounded up to a power of two.
    pub ring_capacity: usize,
    /// Histogram bins over the [0, 1] score range.
    pub bins: usize,
    /// Observations per model accumulated before the reference freezes
    /// (the warmup; scores stay 0 until frozen).
    pub reference_size: usize,
    /// Rolling current-window size per model, in observations.
    pub window: usize,
    /// Minimum current-window fill before scores are computed (avoids
    /// alarming on a handful of samples).
    pub min_window: usize,
    /// Confidence below this counts as an unknown-title novelty event
    /// (matches the title classifier's unknown-gating threshold).
    pub novelty_threshold: f64,
    /// Drift score at or past this raises the model's alarm (PSI units;
    /// 0.25 is the conventional "major shift" boundary).
    pub alarm_threshold: f64,
    /// Window multiplier for the per-slot stage signal. Stage scores
    /// once per pipeline slot while title and pattern score about once
    /// per session, so at equal observation counts a stage window spans
    /// a sliver of wall-clock (often less than one session) and its
    /// score mix is dominated by whichever handful of sessions happen to
    /// fall in it — a spurious "drift" under any stationary workload.
    /// Multiplying the stage reference/window/min-window keeps the
    /// *time* span of the comparison comparable across models.
    pub stage_scale: usize,
    /// Optional impairment-profile label added to every drift family
    /// (`profile=`). `None` (the default) keeps the legacy label set; as
    /// with quality, a process must pick one convention per registry.
    pub profile: Option<&'static str>,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ring_capacity: 1 << 15,
            bins: 10,
            reference_size: 512,
            window: 256,
            min_window: 32,
            novelty_threshold: 0.65,
            alarm_threshold: 0.25,
            stage_scale: 16,
            profile: None,
        }
    }
}

impl DriftConfig {
    /// Effective (reference, window, min-window) sizing for `kind`, with
    /// the per-slot stage multiplier applied.
    fn sizing(&self, kind: ModelKind) -> (usize, usize, usize) {
        let scale = match kind {
            ModelKind::Stage => self.stage_scale.max(1),
            _ => 1,
        };
        (
            self.reference_size.saturating_mul(scale),
            self.window.saturating_mul(scale),
            self.min_window.saturating_mul(scale),
        )
    }
}

struct SinkShared {
    ring: EventRing<DriftObservation>,
    recorded: Arc<Counter>,
    shed: Arc<Counter>,
}

/// Lock-free producer handle for score observations. Cheap to clone,
/// one branch per call when disabled; a full ring sheds the observation
/// and counts it (`cgc_drift_shed_total`) instead of blocking.
#[derive(Clone, Default)]
pub struct DriftSink {
    shared: Option<Arc<SinkShared>>,
}

impl DriftSink {
    /// A sink that drops everything (the default until one is installed).
    pub fn disabled() -> DriftSink {
        DriftSink { shared: None }
    }

    /// Whether observations reach an engine.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Feeds one (confidence, margin) score pair for `model`.
    pub fn observe(&self, model: ModelKind, confidence: f64, margin: f64) {
        if let Some(shared) = &self.shared {
            let obs = DriftObservation {
                model,
                confidence: confidence as f32,
                margin: margin as f32,
            };
            match shared.ring.try_push(obs) {
                Ok(()) => shared.recorded.inc(),
                Err(_) => shared.shed.inc(),
            }
        }
    }
}

impl std::fmt::Debug for DriftSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Population Stability Index between two binned distributions (0 when
/// either side is empty). Both sides get additive (Laplace) smoothing of
/// half a count per bin before the ratio: with the small windows the
/// engine compares (tens of samples over ten bins), a sparse bin that one
/// side happens to miss is sampling noise, and a raw epsilon floor would
/// let that single miss dominate the whole index. Smoothing keeps the
/// noise term proportional to `1/n` while a genuinely moved mode still
/// contributes its full `(q-p)·ln(q/p)` weight.
fn psi(reference: &[u64], current: &[u64]) -> f64 {
    let rt: u64 = reference.iter().sum();
    let ct: u64 = current.iter().sum();
    if rt == 0 || ct == 0 {
        return 0.0;
    }
    const SMOOTH: f64 = 0.5;
    let rn = rt as f64 + SMOOTH * reference.len() as f64;
    let cn = ct as f64 + SMOOTH * current.len() as f64;
    reference
        .iter()
        .zip(current)
        .map(|(&r, &c)| {
            let p = (r as f64 + SMOOTH) / rn;
            let q = (c as f64 + SMOOTH) / cn;
            (q - p) * (q / p).ln()
        })
        .sum()
}

/// KS-style statistic: the maximum distance between the two binned CDFs
/// (0 when either side is empty).
fn ks(reference: &[u64], current: &[u64]) -> f64 {
    let rt: u64 = reference.iter().sum();
    let ct: u64 = current.iter().sum();
    if rt == 0 || ct == 0 {
        return 0.0;
    }
    let (mut cr, mut cc, mut worst) = (0u64, 0u64, 0.0f64);
    for (&r, &c) in reference.iter().zip(current) {
        cr += r;
        cc += c;
        worst = worst.max((cr as f64 / rt as f64 - cc as f64 / ct as f64).abs());
    }
    worst
}

/// Per-signal windowed scores of one model.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignalScores {
    /// Population Stability Index, reference vs current.
    pub psi: f64,
    /// Max CDF distance, reference vs current.
    pub ks: f64,
}

/// Reference + current windows and derived scores of one model.
struct ModelDrift {
    kind: ModelKind,
    ref_conf: Vec<u64>,
    ref_margin: Vec<u64>,
    ref_total: u64,
    ref_low_conf: u64,
    frozen: bool,
    current: VecDeque<(f32, f32)>,
    cur_conf: Vec<u64>,
    cur_margin: Vec<u64>,
    cur_low_conf: u64,
    // Derived on sync:
    confidence: SignalScores,
    margin: SignalScores,
    novelty: f64,
    score: f64,
    // Gauges:
    g_psi_conf: Arc<Gauge>,
    g_psi_margin: Arc<Gauge>,
    g_ks_conf: Arc<Gauge>,
    g_ks_margin: Arc<Gauge>,
    g_novelty: Arc<Gauge>,
    g_score: Arc<Gauge>,
    g_window_len: Arc<Gauge>,
    g_frozen: Arc<Gauge>,
}

impl ModelDrift {
    fn new(
        kind: ModelKind,
        bins: usize,
        registry: &Registry,
        profile: Option<&'static str>,
    ) -> ModelDrift {
        let model = kind.name();
        let signal = |family: &str, help: &str, s: &str| match profile {
            Some(p) => registry.gauge_with(
                family,
                help,
                &[("model", model), ("signal", s), ("profile", p)],
            ),
            None => registry.gauge_with(family, help, &[("model", model), ("signal", s)]),
        };
        let plain = |family: &str, help: &str| match profile {
            Some(p) => registry.gauge_with(family, help, &[("model", model), ("profile", p)]),
            None => registry.gauge_with(family, help, &[("model", model)]),
        };
        ModelDrift {
            kind,
            ref_conf: vec![0; bins],
            ref_margin: vec![0; bins],
            ref_total: 0,
            ref_low_conf: 0,
            frozen: false,
            current: VecDeque::new(),
            cur_conf: vec![0; bins],
            cur_margin: vec![0; bins],
            cur_low_conf: 0,
            confidence: SignalScores::default(),
            margin: SignalScores::default(),
            novelty: 0.0,
            score: 0.0,
            g_psi_conf: signal(
                "cgc_drift_psi_milli",
                "Population Stability Index vs frozen reference, x1000",
                "confidence",
            ),
            g_psi_margin: signal(
                "cgc_drift_psi_milli",
                "Population Stability Index vs frozen reference, x1000",
                "margin",
            ),
            g_ks_conf: signal(
                "cgc_drift_ks_milli",
                "Max CDF distance vs frozen reference, x1000",
                "confidence",
            ),
            g_ks_margin: signal(
                "cgc_drift_ks_milli",
                "Max CDF distance vs frozen reference, x1000",
                "margin",
            ),
            g_novelty: plain(
                "cgc_drift_novelty_milli",
                "Low-confidence (novel-title) fraction of the current window, x1000",
            ),
            g_score: plain(
                "cgc_drift_score_milli",
                "Worst drift statistic of the model (PSI units x1000)",
            ),
            g_window_len: plain(
                "cgc_drift_window_len",
                "Observations currently in the drift window",
            ),
            g_frozen: plain(
                "cgc_drift_reference_frozen",
                "1 once the model's reference distribution is frozen",
            ),
        }
    }

    fn bin(&self, v: f32) -> usize {
        let bins = self.ref_conf.len();
        ((v.clamp(0.0, 1.0) as f64 * bins as f64) as usize).min(bins - 1)
    }

    fn push(&mut self, conf: f32, margin: f32, config: &DriftConfig) {
        let (reference_size, window, _) = config.sizing(self.kind);
        let low = (conf as f64) < config.novelty_threshold;
        if !self.frozen {
            let (bc, bm) = (self.bin(conf), self.bin(margin));
            self.ref_conf[bc] += 1;
            self.ref_margin[bm] += 1;
            self.ref_total += 1;
            if low {
                self.ref_low_conf += 1;
            }
            if self.ref_total >= reference_size as u64 {
                self.frozen = true;
            }
            return;
        }
        self.current.push_back((conf, margin));
        let (bc, bm) = (self.bin(conf), self.bin(margin));
        self.cur_conf[bc] += 1;
        self.cur_margin[bm] += 1;
        if low {
            self.cur_low_conf += 1;
        }
        while self.current.len() > window.max(1) {
            let (c, m) = self.current.pop_front().expect("non-empty window");
            let (bc, bm) = (self.bin(c), self.bin(m));
            self.cur_conf[bc] -= 1;
            self.cur_margin[bm] -= 1;
            if (c as f64) < config.novelty_threshold {
                self.cur_low_conf -= 1;
            }
        }
    }

    /// Recomputes scores and publishes gauges.
    fn sync(&mut self, config: &DriftConfig) {
        let (_, _, min_window) = config.sizing(self.kind);
        let scored = self.frozen && self.current.len() >= min_window.max(1);
        if scored {
            self.confidence = SignalScores {
                psi: psi(&self.ref_conf, &self.cur_conf),
                ks: ks(&self.ref_conf, &self.cur_conf),
            };
            self.margin = SignalScores {
                psi: psi(&self.ref_margin, &self.cur_margin),
                ks: ks(&self.ref_margin, &self.cur_margin),
            };
            self.novelty = self.cur_low_conf as f64 / self.current.len() as f64;
            let ref_novelty = if self.ref_total == 0 {
                0.0
            } else {
                self.ref_low_conf as f64 / self.ref_total as f64
            };
            let novelty_excess = (self.novelty - ref_novelty).max(0.0);
            self.score = self.confidence.psi.max(self.margin.psi).max(novelty_excess);
        } else {
            self.confidence = SignalScores::default();
            self.margin = SignalScores::default();
            self.novelty = 0.0;
            self.score = 0.0;
        }
        let milli = |v: f64| (v * 1000.0).round() as i64;
        self.g_psi_conf.set(milli(self.confidence.psi));
        self.g_psi_margin.set(milli(self.margin.psi));
        self.g_ks_conf.set(milli(self.confidence.ks));
        self.g_ks_margin.set(milli(self.margin.ks));
        self.g_novelty.set(milli(self.novelty));
        self.g_score.set(milli(self.score));
        self.g_window_len.set(self.current.len() as i64);
        self.g_frozen.set(self.frozen as i64);
    }

    /// Drops the frozen reference and restarts warmup (deliberate model
    /// or catalog update: the new normal becomes the next reference).
    fn refresh(&mut self) {
        self.ref_conf.iter_mut().for_each(|b| *b = 0);
        self.ref_margin.iter_mut().for_each(|b| *b = 0);
        self.ref_total = 0;
        self.ref_low_conf = 0;
        self.frozen = false;
        self.cur_conf.iter_mut().for_each(|b| *b = 0);
        self.cur_margin.iter_mut().for_each(|b| *b = 0);
        self.cur_low_conf = 0;
        self.current.clear();
    }
}

/// Consumer side: drains the observation ring into per-model reference
/// and current windows, computes PSI/KS/novelty, publishes gauges.
pub struct DriftEngine {
    shared: Arc<SinkShared>,
    config: DriftConfig,
    models: Vec<ModelDrift>,
}

impl DriftEngine {
    /// Builds the sink/engine pair, registering every gauge/counter on
    /// `registry` up front.
    pub fn new(config: DriftConfig, registry: &Registry) -> (DriftSink, DriftEngine) {
        let counter = |family: &str, help: &str| match config.profile {
            Some(p) => registry.counter_with(family, help, &[("profile", p)]),
            None => registry.counter(family, help),
        };
        let shared = Arc::new(SinkShared {
            ring: EventRing::with_capacity(config.ring_capacity),
            recorded: counter(
                "cgc_drift_observations_total",
                "Score observations accepted by the drift sink",
            ),
            shed: counter(
                "cgc_drift_shed_total",
                "Score observations dropped because the drift ring was full",
            ),
        });
        let models = ModelKind::ALL
            .iter()
            .map(|&kind| ModelDrift::new(kind, config.bins.max(2), registry, config.profile))
            .collect();
        let sink = DriftSink {
            shared: Arc::clone(&shared).into(),
        };
        (
            sink,
            DriftEngine {
                shared,
                config,
                models,
            },
        )
    }

    /// Another producer handle for this engine's ring.
    pub fn sink(&self) -> DriftSink {
        DriftSink {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Drains queued observations into the windows; returns the count.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Some(obs) = self.shared.ring.try_pop() {
            let config = self.config;
            let state = self
                .models
                .iter_mut()
                .find(|m| m.kind == obs.model)
                .expect("every ModelKind has a state");
            state.push(obs.confidence, obs.margin, &config);
            n += 1;
        }
        n
    }

    /// Recomputes every model's scores and publishes the gauges.
    pub fn sync_gauges(&mut self) {
        let config = self.config;
        for m in &mut self.models {
            m.sync(&config);
        }
    }

    /// [`drain`](Self::drain) + [`sync_gauges`](Self::sync_gauges).
    pub fn drain_and_sync(&mut self) -> usize {
        let n = self.drain();
        self.sync_gauges();
        n
    }

    /// The current drift score of one model (0 during warmup).
    pub fn score(&self, kind: ModelKind) -> f64 {
        self.model(kind).score
    }

    /// Whether one model's reference has frozen (warmup complete).
    pub fn reference_frozen(&self, kind: ModelKind) -> bool {
        self.model(kind).frozen
    }

    /// Models whose score is at or past the alarm threshold.
    pub fn alarms(&self) -> Vec<ModelKind> {
        self.models
            .iter()
            .filter(|m| m.score >= self.config.alarm_threshold)
            .map(|m| m.kind)
            .collect()
    }

    /// Restarts warmup on every model: the next
    /// [`reference_size`](DriftConfig::reference_size) observations per
    /// model become the new reference (call after a deliberate retrain
    /// or catalog update).
    pub fn refresh_reference(&mut self) {
        for m in &mut self.models {
            m.refresh();
        }
        self.sync_gauges();
    }

    /// Observations shed because the ring was full.
    pub fn shed(&self) -> u64 {
        self.shared.shed.get()
    }

    fn model(&self, kind: ModelKind) -> &ModelDrift {
        self.models
            .iter()
            .find(|m| m.kind == kind)
            .expect("every ModelKind has a state")
    }

    /// The current drift state as a serializable report (the `/drift`
    /// body).
    pub fn report(&self) -> DriftReport {
        DriftReport {
            alarm_threshold: self.config.alarm_threshold,
            shed: self.shared.shed.get(),
            models: self
                .models
                .iter()
                .map(|m| ModelDrift2Report {
                    model: m.kind.name().into(),
                    reference_frozen: m.frozen,
                    reference_size: m.ref_total,
                    window_len: m.current.len(),
                    psi_confidence: m.confidence.psi,
                    psi_margin: m.margin.psi,
                    ks_confidence: m.confidence.ks,
                    ks_margin: m.margin.ks,
                    novelty: m.novelty,
                    score: m.score,
                    alarm: m.score >= self.config.alarm_threshold,
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for DriftEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftEngine")
            .field("reference_size", &self.config.reference_size)
            .field("window", &self.config.window)
            .finish()
    }
}

/// One model's drift state inside a [`DriftReport`].
#[derive(Debug, Clone)]
pub struct ModelDrift2Report {
    /// Stable model label.
    pub model: String,
    /// Whether the reference distribution has frozen.
    pub reference_frozen: bool,
    /// Observations accumulated into the reference.
    pub reference_size: u64,
    /// Observations in the current window.
    pub window_len: usize,
    /// PSI of the confidence distribution.
    pub psi_confidence: f64,
    /// PSI of the margin distribution.
    pub psi_margin: f64,
    /// KS distance of the confidence distribution.
    pub ks_confidence: f64,
    /// KS distance of the margin distribution.
    pub ks_margin: f64,
    /// Low-confidence fraction of the current window.
    pub novelty: f64,
    /// Worst drift statistic (the alarmed scalar).
    pub score: f64,
    /// Whether the score is at or past the alarm threshold.
    pub alarm: bool,
}

/// The `/drift` payload: per-model drift state plus the shed count.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// The configured alarm ceiling.
    pub alarm_threshold: f64,
    /// Observations dropped at the ring.
    pub shed: u64,
    /// Per-model drift state.
    pub models: Vec<ModelDrift2Report>,
}

impl DriftReport {
    /// Names of the models currently alarming.
    pub fn alarms(&self) -> Vec<&str> {
        self.models
            .iter()
            .filter(|m| m.alarm)
            .map(|m| m.model.as_str())
            .collect()
    }
}

impl Serialize for ModelDrift2Report {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("model".into(), Value::String(self.model.clone())),
            (
                "reference_frozen".into(),
                Value::Bool(self.reference_frozen),
            ),
            ("reference_size".into(), Value::UInt(self.reference_size)),
            ("window_len".into(), Value::UInt(self.window_len as u64)),
            ("psi_confidence".into(), Value::Float(self.psi_confidence)),
            ("psi_margin".into(), Value::Float(self.psi_margin)),
            ("ks_confidence".into(), Value::Float(self.ks_confidence)),
            ("ks_margin".into(), Value::Float(self.ks_margin)),
            ("novelty".into(), Value::Float(self.novelty)),
            ("score".into(), Value::Float(self.score)),
            ("alarm".into(), Value::Bool(self.alarm)),
        ])
    }
}

impl Serialize for DriftReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("alarm_threshold".into(), Value::Float(self.alarm_threshold)),
            ("shed".into(), Value::UInt(self.shed)),
            (
                "models".into(),
                Value::Array(self.models.iter().map(|m| m.to_value()).collect()),
            ),
        ])
    }
}

// ------------------------------------------------------ process-global

static GLOBAL: OnceLock<(DriftSink, Arc<Mutex<DriftEngine>>)> = OnceLock::new();

/// Installs a process-wide drift engine on [`Registry::global`] (first
/// call wins) and returns its sink.
pub fn install_global(config: DriftConfig) -> DriftSink {
    GLOBAL
        .get_or_init(|| {
            let (sink, engine) = DriftEngine::new(config, Registry::global());
            (sink, Arc::new(Mutex::new(engine)))
        })
        .0
        .clone()
}

/// The process-wide sink/engine pair, if one was installed.
pub fn global() -> Option<&'static (DriftSink, Arc<Mutex<DriftEngine>>)> {
    GLOBAL.get()
}

/// The process-wide sink: disabled (free) until [`install_global`] runs.
pub fn global_sink() -> DriftSink {
    GLOBAL
        .get()
        .map(|(sink, _)| sink.clone())
        .unwrap_or_default()
}

/// Drains and republishes the global engine's gauges, if installed.
pub fn sync_global() {
    if let Some((_, engine)) = GLOBAL.get() {
        lock_engine(engine).drain_and_sync();
    }
}

/// Locks a shared engine, recovering from poisoning.
pub fn lock_engine(engine: &Mutex<DriftEngine>) -> std::sync::MutexGuard<'_, DriftEngine> {
    engine.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(reference: usize, window: usize) -> (DriftSink, DriftEngine, Registry) {
        let registry = Registry::new();
        let (sink, eng) = DriftEngine::new(
            DriftConfig {
                reference_size: reference,
                window,
                min_window: 8,
                ..DriftConfig::default()
            },
            &registry,
        );
        (sink, eng, registry)
    }

    /// Deterministic pseudo-scores around a center without rand: a tiny
    /// LCG folded into ±0.05 jitter.
    fn scores(center: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed.max(1);
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let jitter = ((x >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.1;
                (center + jitter).clamp(0.0, 1.0)
            })
            .collect()
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        let (sink, mut eng, _r) = engine(64, 32);
        for (i, c) in scores(0.9, 128, 7).iter().enumerate() {
            sink.observe(ModelKind::Title, *c, *c - 0.1 * (i % 2) as f64);
        }
        eng.drain_and_sync();
        assert!(eng.reference_frozen(ModelKind::Title));
        assert!(
            eng.score(ModelKind::Title) < eng.config().alarm_threshold,
            "stationary score {}",
            eng.score(ModelKind::Title)
        );
        assert!(eng.alarms().is_empty());
    }

    #[test]
    fn distribution_shift_trips_the_alarm_within_one_window() {
        let (sink, mut eng, registry) = engine(64, 32);
        // Warm reference + a stationary current window at high confidence.
        for c in scores(0.9, 96, 11) {
            sink.observe(ModelKind::Title, c, c * 0.8);
        }
        eng.drain_and_sync();
        assert!(eng.score(ModelKind::Title) < 0.25);
        // Catalog churn: confidences collapse. Within one window's worth
        // of observations the PSI must cross the alarm threshold.
        for c in scores(0.3, 32, 13) {
            sink.observe(ModelKind::Title, c, c * 0.5);
        }
        eng.drain_and_sync();
        assert!(
            eng.score(ModelKind::Title) >= eng.config().alarm_threshold,
            "shifted score {}",
            eng.score(ModelKind::Title)
        );
        assert_eq!(eng.alarms(), vec![ModelKind::Title]);
        // Other models never observed: no alarm, gauges stay zero.
        assert_eq!(eng.score(ModelKind::Stage), 0.0);
        let snap = registry.snapshot();
        let score = snap
            .get_with("cgc_drift_score_milli", &[("model", "title")])
            .map(|m| m.value.clone());
        assert!(
            matches!(score, Some(crate::snapshot::MetricValue::Gauge(v)) if v >= 250),
            "{score:?}"
        );
        // Novelty: the shifted window sits below the unknown threshold.
        let report = eng.report();
        let title = &report.models[0];
        assert!(title.novelty > 0.9, "{title:?}");
        assert!(title.alarm);
        assert_eq!(report.alarms(), vec!["title"]);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"alarm\":true"), "{json}");
    }

    #[test]
    fn warmup_never_alarms() {
        let (sink, mut eng, _r) = engine(1_000, 32);
        // Wild swings, but the reference has not frozen yet.
        for c in scores(0.9, 100, 3).into_iter().chain(scores(0.1, 100, 5)) {
            sink.observe(ModelKind::Stage, c, c);
        }
        eng.drain_and_sync();
        assert!(!eng.reference_frozen(ModelKind::Stage));
        assert_eq!(eng.score(ModelKind::Stage), 0.0);
        assert!(eng.alarms().is_empty());
    }

    #[test]
    fn refresh_restarts_warmup_and_clears_the_alarm() {
        let (sink, mut eng, _r) = engine(32, 16);
        for c in scores(0.9, 48, 17) {
            sink.observe(ModelKind::Pattern, c, c);
        }
        for c in scores(0.2, 16, 19) {
            sink.observe(ModelKind::Pattern, c, c);
        }
        eng.drain_and_sync();
        assert!(eng.score(ModelKind::Pattern) >= 0.25);
        eng.refresh_reference();
        assert!(!eng.reference_frozen(ModelKind::Pattern));
        assert_eq!(eng.score(ModelKind::Pattern), 0.0);
        // The new normal (low scores) freezes as the new reference and
        // stays quiet.
        for c in scores(0.2, 64, 23) {
            sink.observe(ModelKind::Pattern, c, c);
        }
        eng.drain_and_sync();
        assert!(eng.reference_frozen(ModelKind::Pattern));
        assert!(eng.score(ModelKind::Pattern) < 0.25);
    }

    #[test]
    fn full_ring_sheds_and_counts() {
        let registry = Registry::new();
        let (sink, mut eng) = DriftEngine::new(
            DriftConfig {
                ring_capacity: 8,
                ..DriftConfig::default()
            },
            &registry,
        );
        for _ in 0..40 {
            sink.observe(ModelKind::Title, 0.5, 0.2);
        }
        assert!(eng.shed() > 0, "overflow must be counted, not silent");
        let drained = eng.drain_and_sync();
        assert_eq!(drained as u64 + eng.shed(), 40);
        assert_eq!(
            registry.snapshot().counter("cgc_drift_shed_total"),
            Some(eng.shed())
        );
    }

    #[test]
    fn psi_and_ks_basics() {
        // Identical distributions: both statistics 0 (up to epsilon).
        let a = [10u64, 20, 30, 40];
        assert!(psi(&a, &a).abs() < 1e-9);
        assert!(ks(&a, &a).abs() < 1e-9);
        // Fully disjoint mass: both large.
        let lo = [100u64, 0, 0, 0];
        let hi = [0u64, 0, 0, 100];
        assert!(psi(&lo, &hi) > 1.0);
        assert!((ks(&lo, &hi) - 1.0).abs() < 1e-9);
        // Empty sides never divide by zero.
        assert_eq!(psi(&[0, 0], &[1, 2]), 0.0);
        assert_eq!(ks(&[1, 2], &[0, 0]), 0.0);
    }

    #[test]
    fn disabled_sink_is_free_and_silent() {
        let sink = DriftSink::disabled();
        assert!(!sink.is_enabled());
        sink.observe(ModelKind::Title, 0.9, 0.5);
    }

    #[test]
    fn profile_label_is_applied_when_configured() {
        let registry = Registry::new();
        let (sink, mut eng) = DriftEngine::new(
            DriftConfig {
                profile: Some("lte-handover"),
                reference_size: 8,
                window: 8,
                min_window: 4,
                ..DriftConfig::default()
            },
            &registry,
        );
        for _ in 0..16 {
            sink.observe(ModelKind::Title, 0.9, 0.5);
        }
        eng.drain_and_sync();
        let snap = registry.snapshot();
        assert!(snap
            .get_with(
                "cgc_drift_score_milli",
                &[("model", "title"), ("profile", "lte-handover")]
            )
            .is_some());
        assert!(snap
            .get_with("cgc_drift_score_milli", &[("model", "title")])
            .is_none());
        assert!(snap
            .get_with(
                "cgc_drift_psi_milli",
                // Snapshot labels are stored sorted by key.
                &[
                    ("model", "title"),
                    ("profile", "lte-handover"),
                    ("signal", "confidence")
                ]
            )
            .is_some());
    }
}
