//! Build identity and process-uptime telemetry.
//!
//! Every scrape should be attributable to a build: `cgc_build_info` is
//! a Prometheus-style info gauge — constant value 1, with the payload
//! in the `version=` / `git=` labels — and `cgc_process_uptime_seconds`
//! dates the process itself, so a dashboard can distinguish "metric
//! reset because of a deploy" from "metric reset because of a crash
//! loop".

use std::sync::Arc;
use std::time::Instant;

use crate::metric::Gauge;
use crate::registry::Registry;

/// Git revision baked in at compile time via the `CGC_GIT_REV`
/// environment variable, or `"unknown"` outside a tagged build.
pub const GIT_REV: &str = match option_env!("CGC_GIT_REV") {
    Some(rev) => rev,
    None => "unknown",
};

/// Crate version baked in at compile time.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Registers and keeps the build-identity gauges fresh.
pub struct BuildInfo {
    started: Instant,
    uptime: Arc<Gauge>,
}

impl BuildInfo {
    /// Registers `cgc_build_info{version=,git=}` (set to 1) and
    /// `cgc_process_uptime_seconds` on `registry`; the uptime clock
    /// starts now.
    pub fn register(registry: &Registry) -> BuildInfo {
        registry
            .gauge_with(
                "cgc_build_info",
                "Build identity as labels; value is always 1",
                &[("version", VERSION), ("git", GIT_REV)],
            )
            .set(1);
        let uptime = registry.gauge(
            "cgc_process_uptime_seconds",
            "Seconds since this process registered its build info",
        );
        uptime.set(0);
        BuildInfo {
            started: Instant::now(),
            uptime,
        }
    }

    /// Republishes the uptime gauge; call before rendering a scrape.
    pub fn sync(&self) {
        self.uptime.set(self.started.elapsed().as_secs() as i64);
    }

    /// Seconds since [`register`](Self::register).
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The one-line build summary appended to `/healthz` bodies.
    pub fn healthz_line(&self) -> String {
        format!(
            "build {} git {} up {}s\n",
            VERSION,
            GIT_REV,
            self.uptime_seconds()
        )
    }
}

impl std::fmt::Debug for BuildInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildInfo")
            .field("version", &VERSION)
            .field("git", &GIT_REV)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MetricValue;

    #[test]
    fn registers_info_and_uptime_gauges() {
        let registry = Registry::new();
        let info = BuildInfo::register(&registry);
        info.sync();
        let snap = registry.snapshot();
        let build = snap
            .get_with("cgc_build_info", &[("git", GIT_REV), ("version", VERSION)])
            .expect("build info series");
        assert!(matches!(build.value, MetricValue::Gauge(1)));
        assert!(matches!(
            snap.gauge("cgc_process_uptime_seconds"),
            Some(v) if v >= 0
        ));
    }

    #[test]
    fn healthz_line_carries_version_and_git() {
        let registry = Registry::new();
        let info = BuildInfo::register(&registry);
        let line = info.healthz_line();
        assert!(line.starts_with(&format!("build {} git {} up ", VERSION, GIT_REV)));
        assert!(line.ends_with("s\n"));
    }
}
