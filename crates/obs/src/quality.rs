//! Streaming classification-quality telemetry.
//!
//! The paper's premise is that QoE measurement is only as trustworthy as
//! the context classifiers behind it — so classifier quality must be a
//! *live* signal, not an offline evaluation artifact. Wherever ground
//! truth is available (the fleet simulator withholds its "server log"
//! labels; a production deployment would join CDN/platform logs), the
//! truth joins emit `(predicted, truth)` pairs per classifier through a
//! lock-free [`QualitySink`] — same drop-and-count ring discipline as the
//! journal, so a stalled consumer sheds samples visibly
//! (`cgc_quality_shed_total`) and never stalls the pipeline.
//!
//! A [`QualityHub`] drains the ring into one rolling window per model
//! (title / stage / pattern), maintains an incremental
//! [`ConfusionMatrix`] per window (record on entry, forget on exit), and
//! publishes the derived scores as gauges:
//!
//! - `cgc_quality_accuracy_pct{model=}` — windowed accuracy, percent
//! - `cgc_quality_recall_pct{model=,class=}` / `cgc_quality_precision_pct{model=,class=}`
//! - `cgc_quality_window_len{model=}` — samples currently in the window
//!
//! The `/quality` route of [`serve::TelemetryServer`](crate::serve) and
//! the `quality_error_ratio` SLO objective read these; the process-global
//! install mirrors the journal's (`install_global` / `global_sink`).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use cgc_domain::{ActivityPattern, GameTitle, Stage};
use mlcore::metrics::ConfusionMatrix;
use serde::{Serialize, Value};

use crate::event::EventRing;
use crate::metric::{Counter, Gauge};
use crate::registry::Registry;

/// The classifiers whose quality is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Launch-window game-title classifier (catalog titles + unknown).
    Title,
    /// Per-slot activity-stage classifier.
    Stage,
    /// Session gameplay-pattern classifier.
    Pattern,
}

impl ModelKind {
    /// Every tracked model.
    pub const ALL: [ModelKind; 3] = [ModelKind::Title, ModelKind::Stage, ModelKind::Pattern];

    /// Stable label value (`model=` on every quality/drift family).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Title => "title",
            ModelKind::Stage => "stage",
            ModelKind::Pattern => "pattern",
        }
    }

    /// Number of classes in this model's confusion matrix. The title
    /// matrix carries one extra "unknown" class for below-threshold
    /// (out-of-catalog) calls.
    pub fn n_classes(self) -> usize {
        match self {
            ModelKind::Title => GameTitle::ALL.len() + 1,
            ModelKind::Stage => Stage::ALL.len(),
            ModelKind::Pattern => ActivityPattern::ALL.len(),
        }
    }

    /// Stable label value of class `i` (`class=` on per-class gauges).
    pub fn class_name(self, i: usize) -> String {
        match self {
            ModelKind::Title => GameTitle::from_index(i)
                .map(|t| slug(t.name()))
                .unwrap_or_else(|| "unknown".into()),
            ModelKind::Stage => Stage::ALL
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".into()),
            ModelKind::Pattern => ActivityPattern::from_index(i)
                .map(|p| slug(&p.to_string()))
                .unwrap_or_else(|| "?".into()),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lowercases and squashes a human class name into a stable label value
/// (same normalization the pipeline metrics use for title labels).
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_us = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// The title-model class id of a (possibly unknown) title call: catalog
/// titles map to their index, `None` to the trailing "unknown" class.
pub fn title_class(title: Option<GameTitle>) -> u16 {
    title.map_or(GameTitle::ALL.len() as u16, |t| t.index() as u16)
}

/// The stage-model class id of a stage ([`Stage::ALL`] order).
pub fn stage_class(stage: Stage) -> u16 {
    Stage::ALL
        .iter()
        .position(|&s| s == stage)
        .expect("stage in ALL") as u16
}

/// The pattern-model class id of an activity pattern.
pub fn pattern_class(pattern: ActivityPattern) -> u16 {
    pattern.index() as u16
}

/// One labeled prediction: which model, what the truth join said, what
/// the classifier said. Compact so a ring slot stays a few bytes.
#[derive(Debug, Clone, Copy)]
pub struct QualitySample {
    /// Which classifier produced the prediction.
    pub model: ModelKind,
    /// Ground-truth class id.
    pub truth: u16,
    /// Predicted class id.
    pub predicted: u16,
}

/// Sizing of the quality telemetry path.
#[derive(Debug, Clone, Copy)]
pub struct QualityConfig {
    /// Sink ring capacity (samples), rounded up to a power of two.
    pub ring_capacity: usize,
    /// Rolling evaluation window per model, in samples.
    pub window: usize,
    /// Optional impairment-profile label added to every quality family
    /// (`profile=`), so per-regime hubs stay distinguishable when their
    /// registries are scraped side by side. `None` (the default) keeps the
    /// legacy label set; a process must pick one convention per registry —
    /// mixing labeled and unlabeled hubs on the same registry would violate
    /// the one-label-set-per-family metrics contract.
    pub profile: Option<&'static str>,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            ring_capacity: 1 << 15,
            window: 512,
            profile: None,
        }
    }
}

struct SinkShared {
    ring: EventRing<QualitySample>,
    recorded: Arc<Counter>,
    shed: Arc<Counter>,
}

/// Lock-free producer handle for labeled predictions. Cheap to clone,
/// one branch per call when disabled; a full ring sheds the sample and
/// counts it (`cgc_quality_shed_total`) instead of blocking.
#[derive(Clone, Default)]
pub struct QualitySink {
    shared: Option<Arc<SinkShared>>,
}

impl QualitySink {
    /// A sink that drops everything (the default until one is installed).
    pub fn disabled() -> QualitySink {
        QualitySink { shared: None }
    }

    /// Whether emits reach a hub (gate any non-trivial label joining on
    /// this to keep the no-telemetry path allocation-free).
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Feeds one (truth, predicted) pair for `model` into the ring.
    pub fn emit(&self, model: ModelKind, truth: u16, predicted: u16) {
        if let Some(shared) = &self.shared {
            let sample = QualitySample {
                model,
                truth,
                predicted,
            };
            match shared.ring.try_push(sample) {
                Ok(()) => shared.recorded.inc(),
                Err(_) => shared.shed.inc(),
            }
        }
    }
}

impl std::fmt::Debug for QualitySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualitySink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Rolling confusion-matrix state and gauges of one model.
struct ModelState {
    kind: ModelKind,
    window: VecDeque<(u16, u16)>,
    matrix: ConfusionMatrix,
    accuracy: Arc<Gauge>,
    window_len: Arc<Gauge>,
    recall: Vec<Arc<Gauge>>,
    precision: Vec<Arc<Gauge>>,
}

impl ModelState {
    fn new(kind: ModelKind, registry: &Registry, profile: Option<&'static str>) -> ModelState {
        let model = kind.name();
        let n = kind.n_classes();
        // With a profile configured, every family carries the extra label.
        let labeled = |mut labels: Vec<(&'static str, String)>| -> Vec<(&'static str, String)> {
            if let Some(p) = profile {
                labels.push(("profile", p.to_string()));
            }
            labels
        };
        let gauge = |family: &str, help: &str, labels: Vec<(&'static str, String)>| {
            let labels = labeled(labels);
            let refs: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            registry.gauge_with(family, help, &refs)
        };
        let per_class = |family: &str, help: &str| -> Vec<Arc<Gauge>> {
            (0..n)
                .map(|c| {
                    gauge(
                        family,
                        help,
                        vec![("model", model.into()), ("class", kind.class_name(c))],
                    )
                })
                .collect()
        };
        ModelState {
            kind,
            window: VecDeque::new(),
            matrix: ConfusionMatrix::new(n),
            accuracy: gauge(
                "cgc_quality_accuracy_pct",
                "Rolling-window accuracy where ground truth is available, percent",
                vec![("model", model.into())],
            ),
            window_len: gauge(
                "cgc_quality_window_len",
                "Labeled samples currently in the rolling quality window",
                vec![("model", model.into())],
            ),
            recall: per_class(
                "cgc_quality_recall_pct",
                "Rolling-window per-class recall, percent",
            ),
            precision: per_class(
                "cgc_quality_precision_pct",
                "Rolling-window per-class precision, percent",
            ),
        }
    }

    fn push(&mut self, truth: u16, predicted: u16, window: usize) {
        let n = self.kind.n_classes() as u16;
        if truth >= n || predicted >= n {
            return; // malformed sample: ignore rather than panic the drainer
        }
        self.window.push_back((truth, predicted));
        self.matrix.record(truth as usize, predicted as usize);
        while self.window.len() > window.max(1) {
            let (t, p) = self.window.pop_front().expect("non-empty window");
            self.matrix.forget(t as usize, p as usize);
        }
    }

    fn sync(&self) {
        let pct = |v: f64| (v * 100.0).round() as i64;
        self.window_len.set(self.window.len() as i64);
        self.accuracy.set(pct(self.matrix.accuracy()));
        for c in 0..self.kind.n_classes() {
            self.recall[c].set(pct(self.matrix.recall(c)));
            self.precision[c].set(pct(self.matrix.precision(c)));
        }
    }
}

/// Consumer side: drains the sink ring into per-model rolling windows
/// and publishes accuracy/recall/precision gauges.
pub struct QualityHub {
    shared: Arc<SinkShared>,
    config: QualityConfig,
    models: Vec<ModelState>,
}

impl QualityHub {
    /// Builds the sink/hub pair, registering every gauge and counter on
    /// `registry` up front (so the families exist — and lint — before the
    /// first sample arrives).
    pub fn new(config: QualityConfig, registry: &Registry) -> (QualitySink, QualityHub) {
        let counter = |family: &str, help: &str| match config.profile {
            Some(p) => registry.counter_with(family, help, &[("profile", p)]),
            None => registry.counter(family, help),
        };
        let shared = Arc::new(SinkShared {
            ring: EventRing::with_capacity(config.ring_capacity),
            recorded: counter(
                "cgc_quality_samples_total",
                "Labeled (predicted, truth) pairs accepted by the quality sink",
            ),
            shed: counter(
                "cgc_quality_shed_total",
                "Labeled pairs dropped because the quality ring was full",
            ),
        });
        let models = ModelKind::ALL
            .iter()
            .map(|&kind| ModelState::new(kind, registry, config.profile))
            .collect();
        let sink = QualitySink {
            shared: Some(Arc::clone(&shared)),
        };
        (
            sink,
            QualityHub {
                shared,
                config,
                models,
            },
        )
    }

    /// Another producer handle for this hub's ring.
    pub fn sink(&self) -> QualitySink {
        QualitySink {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// Drains every queued sample into the rolling windows; returns how
    /// many samples were consumed.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Some(s) = self.shared.ring.try_pop() {
            let state = self
                .models
                .iter_mut()
                .find(|m| m.kind == s.model)
                .expect("every ModelKind has a state");
            state.push(s.truth, s.predicted, self.config.window);
            n += 1;
        }
        n
    }

    /// Publishes the current windowed scores to the registered gauges.
    pub fn sync_gauges(&self) {
        for m in &self.models {
            m.sync();
        }
    }

    /// [`drain`](Self::drain) + [`sync_gauges`](Self::sync_gauges): what
    /// every scrape-shaped consumer wants.
    pub fn drain_and_sync(&mut self) -> usize {
        let n = self.drain();
        self.sync_gauges();
        n
    }

    /// Windowed accuracy of one model (0 when its window is empty).
    pub fn accuracy(&self, kind: ModelKind) -> f64 {
        self.model(kind).matrix.accuracy()
    }

    /// Samples currently in one model's window.
    pub fn window_len(&self, kind: ModelKind) -> usize {
        self.model(kind).window.len()
    }

    fn model(&self, kind: ModelKind) -> &ModelState {
        self.models
            .iter()
            .find(|m| m.kind == kind)
            .expect("every ModelKind has a state")
    }

    /// Samples shed because the ring was full.
    pub fn shed(&self) -> u64 {
        self.shared.shed.get()
    }

    /// The current windowed scores as a serializable report (the
    /// `/quality` body and the `quality_table` input).
    pub fn report(&self) -> QualityReport {
        QualityReport {
            shed: self.shared.shed.get(),
            models: self
                .models
                .iter()
                .map(|m| {
                    let classes = (0..m.kind.n_classes())
                        .map(|c| {
                            let support = (0..m.kind.n_classes())
                                .map(|p| m.matrix.get(c, p))
                                .sum::<usize>();
                            ClassQuality {
                                class: m.kind.class_name(c),
                                support,
                                precision: m.matrix.precision(c),
                                recall: m.matrix.recall(c),
                            }
                        })
                        .collect();
                    ModelQuality {
                        model: m.kind.name().into(),
                        samples: m.window.len(),
                        accuracy: m.matrix.accuracy(),
                        macro_recall: m.matrix.macro_recall(),
                        classes,
                    }
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for QualityHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityHub")
            .field("window", &self.config.window)
            .finish()
    }
}

/// Per-class windowed scores inside a [`ModelQuality`].
#[derive(Debug, Clone)]
pub struct ClassQuality {
    /// Stable class label.
    pub class: String,
    /// Truth-side samples of this class in the window.
    pub support: usize,
    /// Windowed precision, 0..=1.
    pub precision: f64,
    /// Windowed recall, 0..=1.
    pub recall: f64,
}

/// One model's windowed quality scores.
#[derive(Debug, Clone)]
pub struct ModelQuality {
    /// Stable model label.
    pub model: String,
    /// Samples in the rolling window.
    pub samples: usize,
    /// Windowed accuracy, 0..=1.
    pub accuracy: f64,
    /// Windowed macro recall (classes with samples only), 0..=1.
    pub macro_recall: f64,
    /// Per-class detail.
    pub classes: Vec<ClassQuality>,
}

/// The `/quality` payload: every model's windowed scores plus the shed
/// count (a nonzero shed means the scores are built on a sampled stream).
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Labeled pairs dropped at the ring.
    pub shed: u64,
    /// Per-model windowed scores.
    pub models: Vec<ModelQuality>,
}

impl Serialize for ClassQuality {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("class".into(), Value::String(self.class.clone())),
            ("support".into(), Value::UInt(self.support as u64)),
            ("precision".into(), Value::Float(self.precision)),
            ("recall".into(), Value::Float(self.recall)),
        ])
    }
}

impl Serialize for ModelQuality {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("model".into(), Value::String(self.model.clone())),
            ("samples".into(), Value::UInt(self.samples as u64)),
            ("accuracy".into(), Value::Float(self.accuracy)),
            ("macro_recall".into(), Value::Float(self.macro_recall)),
            (
                "classes".into(),
                Value::Array(self.classes.iter().map(|c| c.to_value()).collect()),
            ),
        ])
    }
}

impl Serialize for QualityReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shed".into(), Value::UInt(self.shed)),
            (
                "models".into(),
                Value::Array(self.models.iter().map(|m| m.to_value()).collect()),
            ),
        ])
    }
}

// ------------------------------------------------------ process-global

static GLOBAL: OnceLock<(QualitySink, Arc<Mutex<QualityHub>>)> = OnceLock::new();

/// Installs a process-wide quality hub on [`Registry::global`] (first
/// call wins) and returns its sink. Truth-join sites that used
/// [`global_sink`] before the install were handed disabled sinks and
/// stay silent; sites that fetch the sink per emission pick it up.
pub fn install_global(config: QualityConfig) -> QualitySink {
    GLOBAL
        .get_or_init(|| {
            let (sink, hub) = QualityHub::new(config, Registry::global());
            (sink, Arc::new(Mutex::new(hub)))
        })
        .0
        .clone()
}

/// The process-wide sink/hub pair, if one was installed.
pub fn global() -> Option<&'static (QualitySink, Arc<Mutex<QualityHub>>)> {
    GLOBAL.get()
}

/// The process-wide sink: disabled (free) until [`install_global`] runs.
pub fn global_sink() -> QualitySink {
    GLOBAL
        .get()
        .map(|(sink, _)| sink.clone())
        .unwrap_or_default()
}

/// Drains and republishes the global hub's gauges, if installed — called
/// before snapshots by scrape paths that want fresh quality gauges.
pub fn sync_global() {
    if let Some((_, hub)) = GLOBAL.get() {
        lock_hub(hub).drain_and_sync();
    }
}

/// Locks a shared hub, recovering from poisoning (a panicked scraper
/// must not wedge quality telemetry).
pub fn lock_hub(hub: &Mutex<QualityHub>) -> std::sync::MutexGuard<'_, QualityHub> {
    hub.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_free_and_silent() {
        let sink = QualitySink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(ModelKind::Title, 0, 0); // must not panic or allocate
    }

    #[test]
    fn windowed_scores_follow_the_stream() {
        let registry = Registry::new();
        let (sink, mut hub) = QualityHub::new(
            QualityConfig {
                window: 4,
                ..QualityConfig::default()
            },
            &registry,
        );
        // Four correct stage calls: accuracy 100.
        for _ in 0..4 {
            sink.emit(ModelKind::Stage, 1, 1);
        }
        hub.drain_and_sync();
        assert_eq!(hub.accuracy(ModelKind::Stage), 1.0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get_with("cgc_quality_accuracy_pct", &[("model", "stage")])
                .map(|m| m.value.clone())
                .and_then(|v| match v {
                    crate::snapshot::MetricValue::Gauge(g) => Some(g),
                    _ => None,
                }),
            Some(100)
        );
        // Four wrong calls push the correct ones out of the window.
        for _ in 0..4 {
            sink.emit(ModelKind::Stage, 1, 2);
        }
        hub.drain_and_sync();
        assert_eq!(hub.accuracy(ModelKind::Stage), 0.0);
        assert_eq!(hub.window_len(ModelKind::Stage), 4);
        // Other models' windows were untouched.
        assert_eq!(hub.window_len(ModelKind::Title), 0);
        assert_eq!(
            registry.snapshot().counter("cgc_quality_samples_total"),
            Some(8)
        );
    }

    #[test]
    fn full_ring_sheds_and_counts() {
        let registry = Registry::new();
        let (sink, mut hub) = QualityHub::new(
            QualityConfig {
                ring_capacity: 8,
                window: 1024,
                ..QualityConfig::default()
            },
            &registry,
        );
        for _ in 0..20 {
            sink.emit(ModelKind::Pattern, 0, 0);
        }
        assert!(hub.shed() > 0, "overflow must be counted, not silent");
        let drained = hub.drain_and_sync();
        assert_eq!(drained as u64 + hub.shed(), 20);
    }

    #[test]
    fn report_serializes_per_model_and_class() {
        let registry = Registry::new();
        let (sink, mut hub) = QualityHub::new(QualityConfig::default(), &registry);
        sink.emit(ModelKind::Title, title_class(None), title_class(None));
        sink.emit(
            ModelKind::Title,
            title_class(Some(GameTitle::Fortnite)),
            title_class(None),
        );
        hub.drain_and_sync();
        let json = serde_json::to_string(&hub.report()).unwrap();
        assert!(json.contains("\"model\":\"title\""), "{json}");
        assert!(json.contains("\"class\":\"unknown\""), "{json}");
        assert!(json.contains("\"accuracy\":0.5"), "{json}");
        assert!(json.contains("\"model\":\"stage\""), "{json}");
    }

    #[test]
    fn class_id_maps_are_total_and_stable() {
        assert_eq!(title_class(None) as usize, GameTitle::ALL.len());
        for t in GameTitle::ALL {
            assert_eq!(title_class(Some(t)) as usize, t.index());
        }
        for s in Stage::ALL {
            assert!((stage_class(s) as usize) < ModelKind::Stage.n_classes());
        }
        for p in ActivityPattern::ALL {
            assert!((pattern_class(p) as usize) < ModelKind::Pattern.n_classes());
        }
        // Class names are lint-clean label values.
        for kind in ModelKind::ALL {
            for c in 0..kind.n_classes() {
                let name = kind.class_name(c);
                assert!(
                    name.chars()
                        .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'),
                    "{kind}: {name}"
                );
            }
        }
    }

    #[test]
    fn profile_label_is_applied_when_configured() {
        let registry = Registry::new();
        let (sink, mut hub) = QualityHub::new(
            QualityConfig {
                profile: Some("lossy-wifi"),
                window: 8,
                ..QualityConfig::default()
            },
            &registry,
        );
        sink.emit(ModelKind::Stage, 1, 1);
        hub.drain_and_sync();
        let snap = registry.snapshot();
        assert!(snap
            .get_with(
                "cgc_quality_accuracy_pct",
                &[("model", "stage"), ("profile", "lossy-wifi")]
            )
            .is_some());
        // No unlabeled twin series: the whole family carries the label.
        assert!(snap
            .get_with("cgc_quality_accuracy_pct", &[("model", "stage")])
            .is_none());
        assert!(snap
            .get_with("cgc_quality_samples_total", &[("profile", "lossy-wifi")])
            .is_some());
    }

    #[test]
    fn global_install_is_first_call_wins() {
        assert!(!global_sink().is_enabled() || global().is_some());
        let a = install_global(QualityConfig::default());
        let b = install_global(QualityConfig {
            window: 7,
            ..QualityConfig::default()
        });
        assert!(a.is_enabled() && b.is_enabled());
        sync_global(); // must not deadlock or panic
    }
}
