//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! The Prometheus renderer decimates log-linear histogram buckets to
//! power-of-two `le` boundaries (which align exactly with the octave
//! edges of [`crate::hist::Histogram`], so the cumulative counts are
//! exact), keeping scrape payloads small without losing tail shape.

use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Render a snapshot in Prometheus text exposition format.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in &snapshot.metrics {
        if last_name != Some(m.name.as_str()) {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            last_name = Some(m.name.as_str());
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, None), v);
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &m.name, &m.labels, h),
        }
    }
    // Exemplars are an OpenMetrics feature, and OpenMetrics requires the
    // exposition to end with an explicit EOF marker — a truncated scrape
    // must be distinguishable from a complete one. Plain Prometheus text
    // (no exemplars anywhere) keeps the historical unterminated format.
    let has_exemplars = snapshot.metrics.iter().any(|m| match &m.value {
        MetricValue::Histogram(h) => h.exemplar.is_some(),
        _ => false,
    });
    if has_exemplars {
        out.push_str("# EOF\n");
    }
    out
}

/// Render a snapshot as pretty-printed JSON (the format consumed by
/// `deploy::report` artifacts).
pub fn json(snapshot: &Snapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("snapshot serialization is infallible")
}

/// Write a snapshot to `target`: `-` streams Prometheus text to stdout,
/// a path ending in `.json` gets the JSON export, anything else gets
/// Prometheus text.
pub fn dump(snapshot: &Snapshot, target: &str) -> std::io::Result<()> {
    if target == "-" {
        let mut stdout = std::io::stdout().lock();
        stdout.write_all(prometheus(snapshot).as_bytes())?;
        return Ok(());
    }
    let is_json = Path::new(target)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"));
    let body = if is_json {
        json(snapshot)
    } else {
        prometheus(snapshot)
    };
    std::fs::write(target, body)
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    // Cumulative counts at power-of-two boundaries. Bucket edges align
    // with octave edges, so `values <= 2^k - 1` is exactly the mass of
    // buckets with `hi <= 2^k`.
    let mut boundaries: Vec<(u64, u64)> = Vec::new();
    let mut cum = 0u64;
    let mut bi = 0;
    for k in 0..=63u32 {
        let bound = 1u128 << k;
        while bi < h.buckets.len() && (h.buckets[bi].hi as u128) <= bound {
            cum += h.buckets[bi].count;
            bi += 1;
        }
        boundaries.push(((bound - 1) as u64, cum));
        if cum == h.count {
            break;
        }
    }
    // Keep at most one leading all-below-data boundary.
    let first_nonzero = boundaries
        .iter()
        .position(|&(_, c)| c > 0)
        .unwrap_or(boundaries.len());
    let start = first_nonzero.saturating_sub(1);
    // OpenMetrics exemplar: attached to the first rendered bucket whose
    // `le` covers the exemplar value (falling through to `+Inf`), so a
    // scraper can jump from a latency bucket to `/trace?flow=`.
    let exemplar_text = h.exemplar.map(|e| {
        format!(
            " # {{flow=\"{:016x}\",trace=\"{:016x}\"}} {}",
            e.flow, e.trace, e.value
        )
    });
    let mut exemplar_pending = exemplar_text.as_deref();
    for &(le, c) in &boundaries[start..] {
        let attach = match exemplar_pending {
            Some(_) if h.exemplar.is_some_and(|e| e.value <= le) => {
                exemplar_pending.take().unwrap_or("")
            }
            _ => "",
        };
        let _ = writeln!(
            out,
            "{}_bucket{} {}{}",
            name,
            label_block(labels, Some(("le", &le.to_string()))),
            c,
            attach
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}{}",
        name,
        label_block(labels, Some(("le", "+Inf"))),
        h.count,
        exemplar_pending.take().unwrap_or("")
    );
    let _ = writeln!(out, "{}_sum{} {}", name, label_block(labels, None), h.sum);
    let _ = writeln!(
        out,
        "{}_count{} {}",
        name,
        label_block(labels, None),
        h.count
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("cgc_demo_packets_total", "Packets seen").add(42);
        r.gauge_with("cgc_demo_depth", "Queue depth", &[("shard", "0")])
            .set(3);
        let h = r.histogram("cgc_demo_lat_ns", "Latency");
        for v in [5u64, 17, 120, 4096] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE cgc_demo_packets_total counter"));
        assert!(text.contains("cgc_demo_packets_total 42"));
        assert!(text.contains("# TYPE cgc_demo_depth gauge"));
        assert!(text.contains("cgc_demo_depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE cgc_demo_lat_ns histogram"));
        assert!(text.contains("cgc_demo_lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cgc_demo_lat_ns_sum 4238"));
        assert!(text.contains("cgc_demo_lat_ns_count 4"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_exact() {
        let r = Registry::new();
        let h = r.histogram("lat", "l");
        // 3 values <= 7, one more <= 127, one more <= 8191.
        for v in [1u64, 5, 7, 100, 8000] {
            h.record(v);
        }
        let text = prometheus(&r.snapshot());
        assert!(text.contains("lat_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"127\"} 4"), "{text}");
        assert!(text.contains("lat_bucket{le=\"8191\"} 5"), "{text}");
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(c >= prev, "non-monotonic: {line}");
            prev = c;
        }
    }

    #[test]
    fn prometheus_attaches_exemplar_to_covering_bucket() {
        let r = Registry::new();
        let h = r.histogram("cgc_demo_latency_us", "Latency");
        h.record(5);
        h.record_with_exemplar(100, 0xab, 0xcd);
        let text = prometheus(&r.snapshot());
        let exemplar_lines: Vec<&str> = text.lines().filter(|l| l.contains(" # {")).collect();
        assert_eq!(exemplar_lines.len(), 1, "exactly one exemplar: {text}");
        let line = exemplar_lines[0];
        // Attached to the first bucket with le >= 100 (le="127").
        assert!(
            line.starts_with("cgc_demo_latency_us_bucket{le=\"127\"}"),
            "{line}"
        );
        assert!(
            line.ends_with("# {flow=\"00000000000000ab\",trace=\"00000000000000cd\"} 100"),
            "{line}"
        );
    }

    #[test]
    fn exposition_ends_with_eof_only_when_exemplars_present() {
        // No exemplars: historical Prometheus text, no terminator.
        let plain = prometheus(&sample_registry().snapshot());
        assert!(!plain.contains("# EOF"), "{plain}");
        // With an exemplar the scrape is OpenMetrics and must terminate.
        let r = Registry::new();
        r.histogram("cgc_demo_lat_ns", "Latency")
            .record_with_exemplar(100, 0xab, 0xcd);
        let text = prometheus(&r.snapshot());
        assert!(text.ends_with("# EOF\n"), "{text}");
        assert_eq!(text.matches("# EOF").count(), 1, "{text}");
    }

    #[test]
    fn json_roundtrips() {
        let snap = sample_registry().snapshot();
        let text = json(&snap);
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn dump_picks_format_by_extension() {
        let dir = std::env::temp_dir().join("cgc_obs_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample_registry().snapshot();
        let prom_path = dir.join("metrics.prom");
        let json_path = dir.join("metrics.json");
        dump(&snap, prom_path.to_str().unwrap()).unwrap();
        dump(&snap, json_path.to_str().unwrap()).unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        let js = std::fs::read_to_string(&json_path).unwrap();
        assert!(prom.contains("# TYPE"));
        let back: Snapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
