//! `cgc-obs` — pipeline-wide telemetry core for the gamescope stack.
//!
//! Every stage of the live path (packet ingest, flow monitoring, slot
//! feature extraction, RF inference, QoE calibration) records into
//! handles obtained from a [`Registry`] — the process-wide one via
//! [`Registry::global`], or an injected one for deterministic tests.
//!
//! Design constraints, in order:
//!
//! 1. **Allocation-free hot path.** Recording into a [`Counter`],
//!    [`Gauge`], or [`Histogram`] is a few relaxed atomic ops on
//!    pre-registered handles; the registry lock is only touched at
//!    registration and snapshot time.
//! 2. **Shard-friendly.** Counters and gauges are cache-line aligned so
//!    per-shard handles never false-share; histograms are lock-free.
//! 3. **Two export formats.** Prometheus text exposition for scraping
//!    ([`export::prometheus`]) and pretty JSON matching the artifact
//!    format used by `deploy::report` ([`export::json`]).
//! 4. **A flight recorder, not just aggregates.** Decision points emit
//!    typed [`Event`]s through an [`EventSink`] into a lock-free bounded
//!    ring; a [`Journal`] consumer materializes per-flow decision
//!    timelines, and [`serve::TelemetryServer`] exposes `/metrics`,
//!    `/healthz`, and `/journal` over plain HTTP with zero dependencies.
//! 5. **Causal tracing and health, linked to the metrics.** Stage
//!    boundaries record [`trace::SpanRecord`]s through a sampled
//!    [`TraceSink`] into a second lock-free ring (`/trace`, exemplars
//!    on latency histograms), and [`slo::SloEngine`] evaluates rolling
//!    multi-window burn rates behind `/healthz` and `/slo`.
//! 6. **Model quality is a metric too.** Where ground truth exists,
//!    [`quality::QualityHub`] turns streamed (predicted, truth) pairs
//!    into rolling per-class accuracy/precision/recall gauges; where it
//!    doesn't, [`drift::DriftEngine`] watches the classifiers' own score
//!    distributions for PSI/KS drift and unknown-title novelty
//!    (`/quality`, `/drift`, and two quality SLO objectives).
//!
//! ```
//! use cgc_obs::{export, Registry};
//!
//! let registry = Registry::new(); // or Registry::global()
//! let packets = registry.counter("cgc_trace_packets_total", "Packets seen");
//! let latency = registry.histogram("cgc_pipeline_feature_ns", "Feature extraction time");
//!
//! packets.inc();
//! {
//!     let _span = latency.span(); // records elapsed ns on drop
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("cgc_trace_packets_total"), Some(1));
//! assert!(export::prometheus(&snap).contains("# TYPE cgc_trace_packets_total counter"));
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod drift;
pub mod event;
pub mod export;
pub mod hist;
pub mod journal;
pub mod metric;
pub mod quality;
pub mod registry;
pub mod serve;
pub mod slo;
pub mod snapshot;
pub mod timer;
pub mod trace;

pub use build::BuildInfo;
pub use drift::{DriftConfig, DriftEngine, DriftReport, DriftSink};
pub use event::{CloseCause, Event, EventKind, EventRing, FlowAddr};
pub use hist::Histogram;
pub use journal::{EventSink, FlowTimeline, Journal, JournalConfig, JournalPump};
pub use metric::{Counter, Gauge};
pub use quality::{ModelKind, QualityConfig, QualityHub, QualityReport, QualitySink};
pub use registry::Registry;
pub use serve::{ServeOptions, TelemetryServer};
pub use slo::{Health, Objective, ObjectiveKind, SloConfig, SloEngine, SloHub, SloReport};
pub use snapshot::{
    ExemplarSnapshot, HistBucket, HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot,
};
pub use timer::{span, Span};
pub use trace::{
    SpanRecord, TraceCollector, TraceConfig, TracePump, TraceSink, TraceStage, TraceTimeline,
};
