//! Scoped span timers: measure a region's wall time and record the
//! elapsed nanoseconds into a histogram on drop.

use crate::hist::Histogram;
use std::time::Instant;

/// RAII guard that records elapsed nanoseconds into its histogram when
/// dropped. Obtain one via [`Histogram::span`] or [`span`].
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Span<'a> {
    /// Start timing against `hist`.
    pub fn new(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Record now and consume the span (instead of waiting for scope
    /// exit). Returns the recorded nanoseconds.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.hist.record(ns);
        self.armed = false;
        ns
    }

    /// Drop without recording anything (e.g. on an error path that
    /// should not pollute the latency distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

/// Start a span against `hist`; elapsed nanoseconds are recorded when
/// the returned guard drops.
pub fn span(hist: &Histogram) -> Span<'_> {
    Span::new(hist)
}

impl Histogram {
    /// Start a scoped timer recording into this histogram on drop.
    pub fn span(&self) -> Span<'_> {
        Span::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _s = h.span();
            std::hint::black_box(1 + 1);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_once() {
        let h = Histogram::new();
        let s = h.span();
        let ns = s.finish();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), ns);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        h.span().cancel();
        assert_eq!(h.count(), 0);
    }
}
