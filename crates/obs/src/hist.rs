//! Log-linear-bucket histogram for latency-style `u64` samples.
//!
//! The bucketing scheme is HDR-style: values `0..=15` each get an exact
//! bucket; above that, every power-of-two octave is split into 8 linear
//! sub-buckets, which bounds the relative quantile error at 12.5% while
//! covering the full `u64` range in 496 buckets. Recording a sample is a
//! handful of relaxed atomic adds and never allocates — the bucket array
//! is allocated once at construction.

use crate::snapshot::{ExemplarSnapshot, HistBucket, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets for values `0..=15`.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: usize = 8;
/// Most significant bit of the first log-linear octave (values 16..=31).
const FIRST_OCTAVE_MSB: u32 = 4;
/// Total bucket count covering all of `u64`.
pub const N_BUCKETS: usize = LINEAR_BUCKETS + (64 - FIRST_OCTAVE_MSB as usize) * SUB_BUCKETS;

/// Map a sample to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - 3)) & 0x7) as usize;
        LINEAR_BUCKETS + (msb - FIRST_OCTAVE_MSB) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i < LINEAR_BUCKETS {
        i as u64
    } else {
        let octave = (i - LINEAR_BUCKETS) / SUB_BUCKETS;
        let sub = ((i - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
        let msb = octave as u32 + FIRST_OCTAVE_MSB;
        (SUB_BUCKETS as u64 + sub) << (msb - 3)
    }
}

/// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i < LINEAR_BUCKETS {
        i as u64 + 1
    } else if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(i + 1)
    }
}

/// Concurrent log-linear histogram.
///
/// All mutation paths (`record`, `merge_from`) use relaxed atomics, so a
/// histogram handle can be shared freely across shard threads. Reads
/// taken while writers are active are approximate (counts and sum may be
/// from slightly different instants), which is the standard trade-off
/// for lock-free telemetry.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Seqlock-style exemplar cell: `exemplar_seq` is 0 until the first
    /// write, odd while a write is in flight, even when the value/flow/
    /// trace triple is consistent. Writers skip (last-write-wins is
    /// approximate anyway) rather than spin, so the hot path stays
    /// lock-free.
    exemplar_seq: AtomicU64,
    exemplar_value: AtomicU64,
    exemplar_flow: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram (the only allocating operation).
    pub fn new() -> Self {
        let buckets = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_seq: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_flow: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one sample and attach it as the histogram's exemplar: the
    /// `(flow, trace)` identity lets an OpenMetrics scrape resolve a
    /// latency bucket back to a `/trace` timeline. Sampled call sites
    /// only — the plain [`Histogram::record`] path is untouched.
    pub fn record_with_exemplar(&self, v: u64, flow: u64, trace: u64) {
        self.record(v);
        self.write_exemplar(v, flow, trace);
    }

    /// Write the exemplar cell without touching the sample counts.
    fn write_exemplar(&self, v: u64, flow: u64, trace: u64) {
        let seq = self.exemplar_seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return; // another writer is mid-flight; theirs wins
        }
        if self
            .exemplar_seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.exemplar_value.store(v, Ordering::Relaxed);
        self.exemplar_flow.store(flow, Ordering::Relaxed);
        self.exemplar_trace.store(trace, Ordering::Relaxed);
        self.exemplar_seq.store(seq + 2, Ordering::Release);
    }

    /// The most recently attached exemplar, if any call site ever
    /// attached one and a consistent read is available right now.
    pub fn exemplar(&self) -> Option<ExemplarSnapshot> {
        for _ in 0..8 {
            let before = self.exemplar_seq.load(Ordering::Acquire);
            if before == 0 {
                return None; // never written
            }
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue; // write in flight
            }
            let snap = ExemplarSnapshot {
                value: self.exemplar_value.load(Ordering::Relaxed),
                flow: self.exemplar_flow.load(Ordering::Relaxed),
                trace: self.exemplar_trace.load(Ordering::Relaxed),
            };
            if self.exemplar_seq.load(Ordering::Acquire) == before {
                return Some(snap);
            }
        }
        None // writers kept winning; exemplars are best-effort
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold another histogram's contents into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        if let Some(e) = other.exemplar() {
            self.write_exemplar(e.value, e.flow, e.trace);
        }
    }

    /// Capture the current contents as an immutable snapshot, keeping
    /// only non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(HistBucket {
                    lo: bucket_lo(i),
                    hi: bucket_hi(i),
                    count: n,
                });
            }
        }
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
            exemplar: self.exemplar(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn linear_range_is_exact() {
        for v in 0u64..16 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lo(i), v);
            assert_eq!(bucket_hi(i), v + 1);
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        let probes = [
            16u64,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_lo(i) <= v, "lo({i}) > {v}");
            assert!(
                v < bucket_hi(i) || bucket_hi(i) == u64::MAX,
                "hi({i}) <= {v}"
            );
        }
    }

    #[test]
    fn buckets_tile_the_number_line() {
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(
                bucket_hi(i),
                bucket_lo(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Above the linear range every bucket spans lo..lo+lo/8, so the
        // midpoint mis-estimates a sample by at most 12.5%.
        for i in LINEAR_BUCKETS..N_BUCKETS - 1 {
            let lo = bucket_lo(i);
            let hi = bucket_hi(i);
            assert!(hi - lo <= lo / 8 + 1, "bucket {i} too wide: {lo}..{hi}");
        }
    }

    #[test]
    fn count_sum_min_max_track_samples() {
        let h = Histogram::new();
        for v in [3u64, 9, 1000, 77] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 3 + 9 + 1000 + 77);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for _ in 0..2000 {
            let v = rng.gen_range(0..1_000_000u64);
            if rng.gen_bool(0.5) {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }

    #[test]
    fn quantiles_track_exact_values_on_random_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let h = Histogram::new();
        // Mixed regimes: small exact values, mid-range, heavy tail.
        let mut samples: Vec<u64> = (0..5000)
            .map(|i| match i % 3 {
                0 => rng.gen_range(0..16),
                1 => rng.gen_range(100..10_000),
                _ => rng.gen_range(100_000..50_000_000),
            })
            .collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.95, 0.99] {
            let exact = samples[((samples.len() - 1) as f64 * q) as usize] as f64;
            let est = snap.quantile(q).unwrap();
            let tolerance = exact * 0.125 + 1.0;
            assert!(
                (est - exact).abs() <= tolerance,
                "q{q}: est {est} vs exact {exact} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn exemplar_is_last_write_wins_and_consistent() {
        let h = Histogram::new();
        assert!(h.exemplar().is_none(), "no exemplar before first write");
        assert!(h.snapshot().exemplar.is_none());
        h.record_with_exemplar(120, 0xf10, 0x71c);
        h.record_with_exemplar(450, 0xf20, 0x72c);
        let e = h.exemplar().expect("exemplar after writes");
        assert_eq!(e.value, 450);
        assert_eq!(e.flow, 0xf20);
        assert_eq!(e.trace, 0x72c);
        // The samples themselves landed in the ordinary buckets.
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 570);
        assert_eq!(s.exemplar, Some(e));
    }

    #[test]
    fn merge_carries_the_exemplar_without_touching_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        b.record_with_exemplar(99, 5, 6);
        a.merge_from(&b);
        let e = a.exemplar().expect("merged exemplar");
        assert_eq!((e.value, e.flow, e.trace), (99, 5, 6));
        assert_eq!(a.count(), 1, "only the real sample was merged");
        assert_eq!(a.sum(), 99);
    }

    #[test]
    fn concurrent_exemplar_writers_never_tear() {
        const THREADS: u64 = 4;
        const PER: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        // Keep (value, flow, trace) correlated so a torn
                        // read is detectable.
                        let v = t * PER + i;
                        h.record_with_exemplar(v, v + 1, v + 2);
                    }
                })
            })
            .collect();
        let reader = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..50_000 {
                    if let Some(e) = h.exemplar() {
                        assert_eq!(e.flow, e.value + 1, "torn exemplar: {e:?}");
                        assert_eq!(e.trace, e.value + 2, "torn exemplar: {e:?}");
                        seen += 1;
                    }
                }
                seen
            })
        };
        for handle in handles {
            handle.join().unwrap();
        }
        reader.join().unwrap();
        let e = h.exemplar().expect("quiescent read always succeeds");
        assert_eq!(e.flow, e.value + 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 25_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(s.sum, n * (n - 1) / 2);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), n);
    }
}
