//! Typed flow-lifecycle events and the lock-free ring that carries them.
//!
//! Every decision the live path takes about a flow — admission, title
//! call, stage transition, pattern inference, QoE verdict, closure — is
//! describable as one [`Event`]: a flow id, a tap timestamp and an
//! [`EventKind`]. Producers on the tap hot path push events into an
//! [`EventRing`], a bounded lock-free MPSC/MPMC queue; a [`Journal`]
//! consumer drains it off the hot path and materializes per-session
//! decision timelines.
//!
//! Design constraints mirror the metrics core: recording an event is a
//! handful of atomic ops and one 64-ish-byte copy, never a lock and never
//! an allocation. When the ring is full the event is *dropped and
//! counted* (see [`EventSink`](crate::journal::EventSink)), so a stalled
//! consumer can only ever cost visibility, not tap throughput.
//!
//! [`Journal`]: crate::journal::Journal

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};

use cgc_domain::{ActivityPattern, GameTitle, Platform, QoeLevel, Stage};
use serde::{Serialize, Value};

/// Flow endpoint identity in downstream orientation (`server` is the
/// platform-signature side). A plain-copy mirror of the five-tuple that
/// lives below this crate in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowAddr {
    /// Cloud-server address.
    pub server_ip: IpAddr,
    /// Cloud-server (platform signature) port.
    pub server_port: u16,
    /// Subscriber address.
    pub client_ip: IpAddr,
    /// Subscriber port.
    pub client_port: u16,
}

impl fmt::Display for FlowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.server_ip, self.server_port, self.client_ip, self.client_port
        )
    }
}

impl Serialize for FlowAddr {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "server".into(),
                Value::String(format!("{}:{}", self.server_ip, self.server_port)),
            ),
            (
                "client".into(),
                Value::String(format!("{}:{}", self.client_ip, self.client_port)),
            ),
        ])
    }
}

/// Why a flow left the monitor's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseCause {
    /// Idle past the monitor's timeout.
    Idle,
    /// Evicted early because the flow table hit its cap.
    Evicted,
    /// Finalized by an end-of-capture drain (`finish_all`).
    Drained,
}

impl CloseCause {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseCause::Idle => "idle",
            CloseCause::Evicted => "evicted",
            CloseCause::Drained => "drained",
        }
    }
}

impl fmt::Display for CloseCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One decision-point event in a flow's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A new flow passed the platform filter and got an analyzer.
    FlowAdmitted {
        /// Flow endpoints, downstream orientation.
        addr: FlowAddr,
        /// Platform inferred from the port signature.
        platform: Platform,
    },
    /// Which model-registry version the flow's analyzer pinned at
    /// admission (emitted right after `FlowAdmitted` when the monitor
    /// serves from a hot-swappable [`LiveModel`] slot, so journal
    /// timelines attribute every later decision to a model version).
    ///
    /// [`LiveModel`]: https://docs.rs/cgc-lifecycle
    ModelVersion {
        /// Registry version id the flow will classify on.
        version: u32,
    },
    /// A UDP payload on a gaming port failed RTP validation (nettrace
    /// decode path; `payload_len` is the raw UDP payload length).
    RtpInvalid {
        /// Undecodable payload length, bytes.
        payload_len: u32,
    },
    /// The title-classification window closed and the title RF ran.
    LaunchWindowClosed {
        /// Packets inside the window handed to the title RF.
        packets: u32,
    },
    /// The title process decided (possibly "unknown" when confidence was
    /// below the reporting threshold).
    TitleDecided {
        /// Classified title; `None` = reported unknown.
        title: Option<GameTitle>,
        /// RF vote share behind the decision.
        confidence: f64,
    },
    /// A closed slot was classified into a different stage than the
    /// previous slot (emitted on transitions only, bounding event volume).
    StageEntered {
        /// Slot index (0 = flow start).
        slot: u32,
        /// Stage entered.
        stage: Stage,
    },
    /// The pattern tracker reached a confident activity-pattern decision.
    PatternInferred {
        /// Inferred gameplay activity pattern.
        pattern: ActivityPattern,
        /// Confidence at decision time.
        confidence: f64,
    },
    /// The per-slot (objective, effective) QoE pair changed (emitted on
    /// shifts only, like stage transitions).
    QoeShift {
        /// Slot index of the shift.
        slot: u32,
        /// Objective QoE of the slot.
        objective: QoeLevel,
        /// Effective (context-calibrated) QoE of the slot.
        effective: QoeLevel,
    },
    /// Session-level majority QoE verdict at finalization.
    SessionVerdict {
        /// Majority objective QoE over gameplay slots.
        objective: QoeLevel,
        /// Majority effective QoE over gameplay slots.
        effective: QoeLevel,
    },
    /// The flow was finalized and removed from the monitor.
    FlowClosed {
        /// What triggered the finalization.
        cause: CloseCause,
        /// Whether volumetric confirmation ever passed.
        confirmed: bool,
    },
}

impl EventKind {
    /// Stable snake_case event name used as the `event` JSON field and in
    /// schema docs.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FlowAdmitted { .. } => "flow_admitted",
            EventKind::RtpInvalid { .. } => "rtp_invalid",
            EventKind::ModelVersion { .. } => "model_version",
            EventKind::LaunchWindowClosed { .. } => "launch_window_closed",
            EventKind::TitleDecided { .. } => "title_decided",
            EventKind::StageEntered { .. } => "stage_entered",
            EventKind::PatternInferred { .. } => "pattern_inferred",
            EventKind::QoeShift { .. } => "qoe_shift",
            EventKind::SessionVerdict { .. } => "session_verdict",
            EventKind::FlowClosed { .. } => "flow_closed",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::FlowAdmitted { addr, platform } => {
                write!(f, "admitted [{platform}] {addr}")
            }
            EventKind::ModelVersion { version } => write!(f, "model v{version}"),
            EventKind::RtpInvalid { payload_len } => {
                write!(f, "rtp invalid ({payload_len} B payload)")
            }
            EventKind::LaunchWindowClosed { packets } => {
                write!(f, "launch window closed ({packets} pkts)")
            }
            EventKind::TitleDecided { title, confidence } => write!(
                f,
                "title={} ({:.0}%)",
                title.map(|t| t.name()).unwrap_or("unknown"),
                confidence * 100.0
            ),
            EventKind::StageEntered { slot, stage } => write!(f, "stage={stage} @slot {slot}"),
            EventKind::PatternInferred {
                pattern,
                confidence,
            } => write!(f, "pattern={pattern} ({:.0}%)", confidence * 100.0),
            EventKind::QoeShift {
                slot,
                objective,
                effective,
            } => write!(f, "qoe {objective}/{effective} @slot {slot}"),
            EventKind::SessionVerdict {
                objective,
                effective,
            } => write!(f, "verdict {objective}/{effective}"),
            EventKind::FlowClosed { cause, confirmed } => write!(
                f,
                "closed ({cause}{})",
                if *confirmed { "" } else { ", unconfirmed" }
            ),
        }
    }
}

/// One recorded event: which flow, when on the tap clock, what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Flow id: the direction-invariant hash of the normalized five-tuple
    /// (`FiveTuple::shard_hash`), or a session id for per-session runs.
    pub flow: u64,
    /// Tap timestamp of the decision, microseconds.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Hex rendering of the flow id used in exports and queries (the raw
    /// u64 would lose precision in JavaScript JSON consumers).
    pub fn flow_hex(flow: u64) -> String {
        format!("{flow:016x}")
    }

    /// Abbreviated flow id for human-facing output: the low 32 bits in
    /// hex. Small sequential ids (fleet simulations) stay tell-apart-able
    /// where a high-bits prefix would render them all as zeros.
    pub fn flow_short(flow: u64) -> String {
        format!("{:08x}", flow & 0xffff_ffff)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t+{:.1}s flow {} {}",
            self.ts as f64 / 1e6,
            Event::flow_short(self.flow),
            self.kind
        )
    }
}

impl Serialize for Event {
    /// Flat, stable JSONL schema: `flow` (hex), `ts` (µs), `event` (name),
    /// then the variant's fields inline. Hand-rolled instead of derived so
    /// the wire format is a documented contract, not a derive artifact.
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("flow".into(), Value::String(Event::flow_hex(self.flow))),
            ("ts".into(), Value::UInt(self.ts)),
            ("event".into(), Value::String(self.kind.name().into())),
        ];
        match &self.kind {
            EventKind::FlowAdmitted { addr, platform } => {
                if let Value::Object(pairs) = addr.to_value() {
                    fields.extend(pairs);
                }
                fields.push(("platform".into(), Value::String(platform.to_string())));
            }
            EventKind::ModelVersion { version } => {
                fields.push(("version".into(), Value::UInt(u64::from(*version))));
            }
            EventKind::RtpInvalid { payload_len } => {
                fields.push(("payload_len".into(), Value::UInt(u64::from(*payload_len))));
            }
            EventKind::LaunchWindowClosed { packets } => {
                fields.push(("packets".into(), Value::UInt(u64::from(*packets))));
            }
            EventKind::TitleDecided { title, confidence } => {
                fields.push((
                    "title".into(),
                    match title {
                        Some(t) => Value::String(t.name().into()),
                        None => Value::Null,
                    },
                ));
                fields.push(("confidence".into(), Value::Float(*confidence)));
            }
            EventKind::StageEntered { slot, stage } => {
                fields.push(("slot".into(), Value::UInt(u64::from(*slot))));
                fields.push(("stage".into(), Value::String(stage.to_string())));
            }
            EventKind::PatternInferred {
                pattern,
                confidence,
            } => {
                fields.push(("pattern".into(), Value::String(pattern.to_string())));
                fields.push(("confidence".into(), Value::Float(*confidence)));
            }
            EventKind::QoeShift {
                slot,
                objective,
                effective,
            } => {
                fields.push(("slot".into(), Value::UInt(u64::from(*slot))));
                fields.push(("objective".into(), Value::String(objective.to_string())));
                fields.push(("effective".into(), Value::String(effective.to_string())));
            }
            EventKind::SessionVerdict {
                objective,
                effective,
            } => {
                fields.push(("objective".into(), Value::String(objective.to_string())));
                fields.push(("effective".into(), Value::String(effective.to_string())));
            }
            EventKind::FlowClosed { cause, confirmed } => {
                fields.push(("cause".into(), Value::String(cause.as_str().into())));
                fields.push(("confirmed".into(), Value::Bool(*confirmed)));
            }
        }
        Value::Object(fields)
    }
}

// ---------------------------------------------------------------- ring

struct Slot<T> {
    /// Sequence stamp: `pos` when the slot is free for the producer at
    /// `pos`, `pos + 1` once it holds that producer's value.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer queue (Vyukov's array queue).
///
/// `try_push` never blocks and never allocates: when the ring is full it
/// returns the value to the caller, who counts the drop. Per-producer FIFO
/// order is preserved, which is all the journal needs — each flow's events
/// are produced by exactly one shard thread.
pub struct EventRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next enqueue position (cache-line-padded from `tail` by the
    /// interposed slots allocation being elsewhere; the two atomics still
    /// get their own lines below).
    head: CachePadded,
    tail: CachePadded,
}

/// A cache-line-aligned atomic counter so head and tail never false-share.
#[repr(align(64))]
struct CachePadded(AtomicUsize);

// SAFETY: slot handoff is mediated by the per-slot `seq` (release on
// publish, acquire on claim), so values move between threads fully
// initialized exactly once.
unsafe impl<T: Send> Send for EventRing<T> {}
unsafe impl<T: Send> Sync for EventRing<T> {}

impl<T> EventRing<T> {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot<T>> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued events (exact when quiescent).
    pub fn len(&self) -> usize {
        self.head
            .0
            .load(Ordering::Relaxed)
            .saturating_sub(self.tail.0.load(Ordering::Relaxed))
    }

    /// True when no events are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking. `Err(value)` when full — the
    /// caller owns the drop accounting.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive claim
                        // on the slot until the seq store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // The slot still holds an unconsumed value a full lap
                // behind: the ring is full.
                return Err(value);
            } else {
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues one event, `None` when the ring is (momentarily) empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the producer published this slot with a
                        // release store of seq = pos + 1; the CAS gives
                        // this thread exclusive consumption rights.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for EventRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(flow: u64, ts: u64) -> Event {
        Event {
            flow,
            ts,
            kind: EventKind::LaunchWindowClosed { packets: 7 },
        }
    }

    #[test]
    fn push_pop_roundtrips_in_order() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5u64 {
            ring.try_push(ev(1, i)).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5u64 {
            assert_eq!(ring.try_pop().unwrap().ts, i);
        }
        assert!(ring.try_pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_without_losing_slots() {
        let ring = EventRing::with_capacity(4);
        for i in 0..4u64 {
            ring.try_push(ev(1, i)).unwrap();
        }
        // Full: pushes bounce and return the value.
        let bounced = ring.try_push(ev(1, 99)).unwrap_err();
        assert_eq!(bounced.ts, 99);
        // One pop frees exactly one slot.
        assert_eq!(ring.try_pop().unwrap().ts, 0);
        ring.try_push(ev(1, 4)).unwrap();
        assert!(ring.try_push(ev(1, 100)).is_err());
        let drained: Vec<u64> = std::iter::from_fn(|| ring.try_pop())
            .map(|e| e.ts)
            .collect();
        assert_eq!(drained, [1, 2, 3, 4]);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::<Event>::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::<Event>::with_capacity(3).capacity(), 4);
        assert_eq!(EventRing::<Event>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producers_lose_nothing_when_capacity_suffices() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 2_000;
        let ring = Arc::new(EventRing::with_capacity((PRODUCERS * PER) as usize));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        ring.try_push(ev(p, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every event arrives exactly once, and per-producer order holds.
        let mut next = [0u64; PRODUCERS as usize];
        let mut n = 0u64;
        while let Some(e) = ring.try_pop() {
            assert_eq!(e.ts, next[e.flow as usize], "producer {} reordered", e.flow);
            next[e.flow as usize] += 1;
            n += 1;
        }
        assert_eq!(n, PRODUCERS * PER);
    }

    #[test]
    fn concurrent_overflow_is_fully_accounted() {
        // More events than capacity: delivered + bounced must equal sent.
        const PRODUCERS: u64 = 4;
        const PER: u64 = 5_000;
        let ring = Arc::new(EventRing::<Event>::with_capacity(256));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut dropped = 0u64;
                    for i in 0..PER {
                        if ring.try_push(ev(p, i)).is_err() {
                            dropped += 1;
                        }
                    }
                    dropped
                })
            })
            .collect();
        let dropped: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut delivered = 0u64;
        while ring.try_pop().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered + dropped, PRODUCERS * PER);
        assert!(
            delivered >= 256,
            "consumerless ring holds at least capacity"
        );
    }

    #[test]
    fn event_jsonl_schema_is_flat_and_stable() {
        let e = Event {
            flow: 0xabcd,
            ts: 5_000_000,
            kind: EventKind::TitleDecided {
                title: Some(GameTitle::Fortnite),
                confidence: 0.93,
            },
        };
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"flow\":\"000000000000abcd\""));
        assert!(line.contains("\"ts\":5000000"));
        assert!(line.contains("\"event\":\"title_decided\""));
        assert!(line.contains("\"title\":\"Fortnite\""));
        let unknown = Event {
            flow: 1,
            ts: 0,
            kind: EventKind::TitleDecided {
                title: None,
                confidence: 0.2,
            },
        };
        assert!(serde_json::to_string(&unknown)
            .unwrap()
            .contains("\"title\":null"));
    }

    #[test]
    fn event_display_is_operator_readable() {
        let addr = FlowAddr {
            server_ip: "10.0.0.1".parse().unwrap(),
            server_port: 49003,
            client_ip: "100.64.1.1".parse().unwrap(),
            client_port: 50000,
        };
        let e = Event {
            flow: 0x0000_0000_ffee_0000,
            ts: 1_500_000,
            kind: EventKind::FlowAdmitted {
                addr,
                platform: Platform::GeForceNow,
            },
        };
        let s = e.to_string();
        assert!(s.starts_with("t+1.5s flow ffee0000"), "{s}");
        assert!(s.contains("10.0.0.1:49003 -> 100.64.1.1:50000"), "{s}");
        assert_eq!(
            EventKind::FlowClosed {
                cause: CloseCause::Evicted,
                confirmed: false
            }
            .to_string(),
            "closed (evicted, unconfirmed)"
        );
    }
}
