//! Rolling-window service-level objectives with multi-window burn-rate.
//!
//! Pipeline health must be windowed, not threshold-on-instant: a single
//! bursty second should page nobody, while a sustained drift should. The
//! [`SloEngine`] holds interval observations per objective and evaluates
//! each against a **fast** (default 5 m) and **slow** (default 1 h)
//! window. The burn rate of a window is the error budget consumed inside
//! it relative to the budget the target allows for the whole window:
//!
//! ```text
//! burn(W) = Σ value·overlap(sample, W) / |W| / target
//! ```
//!
//! * `burn_fast ≥ 1`                    → **degraded** (budget burning
//!   faster than allowed right now)
//! * `burn_fast ≥ critical_factor` and
//!   `burn_slow ≥ 1`                    → **critical** (and still burning)
//!
//! Both windows slide on whatever clock the caller passes — the fleet's
//! virtual clock or real time — so recovery needs no new observations:
//! once the burst leaves the fast window, `evaluate` returns to ok.
//!
//! [`SnapshotBridge`] derives the objective values (drop ratio, hand-off
//! p99, queue saturation, classifier staleness, rolling classification
//! error, label-free drift score) from consecutive registry
//! [`Snapshot`]s, and [`SloHub`] packages engine + bridge + clock behind
//! one `&self` entry point for the telemetry server and the fleet
//! reporter.

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::{Serialize, Value};

use crate::snapshot::Snapshot;

/// The pipeline health signals tracked as objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// p99 of shard-batch hand-off processing time, in µs.
    HandoffP99Us,
    /// Fraction of records/events dropped (ingest queues + recorder rings).
    DropRatio,
    /// Peak bounded-queue depth as a fraction of capacity, 0..=1.
    QueueSaturation,
    /// µs since the classifier pipeline last closed a slot while flows
    /// were active.
    ClassifierStalenessUs,
    /// Worst rolling classification error (1 − accuracy) across models
    /// where ground truth is streamed into the quality hub, 0..=1.
    QualityErrorRatio,
    /// Worst label-free drift score across models (PSI units; see
    /// [`crate::drift`]).
    DriftScore,
}

impl ObjectiveKind {
    /// Every objective kind.
    pub const ALL: [ObjectiveKind; 6] = [
        ObjectiveKind::HandoffP99Us,
        ObjectiveKind::DropRatio,
        ObjectiveKind::QueueSaturation,
        ObjectiveKind::ClassifierStalenessUs,
        ObjectiveKind::QualityErrorRatio,
        ObjectiveKind::DriftScore,
    ];

    /// Stable snake_case name (JSON `objective` field, healthz reasons).
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::HandoffP99Us => "handoff_p99_us",
            ObjectiveKind::DropRatio => "drop_ratio",
            ObjectiveKind::QueueSaturation => "queue_saturation",
            ObjectiveKind::ClassifierStalenessUs => "classifier_staleness_us",
            ObjectiveKind::QualityErrorRatio => "quality_error_ratio",
            ObjectiveKind::DriftScore => "drift_score",
        }
    }
}

impl std::fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One objective: a signal and the level it must stay under.
#[derive(Debug, Clone, Copy)]
pub struct Objective {
    /// Which signal.
    pub kind: ObjectiveKind,
    /// The target ceiling; windowed burn is `value / target` time-weighted.
    pub target: f64,
}

/// Window sizes, escalation factor, and the objective set.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Fast window (µs): degradation sensitivity. Default 5 minutes.
    pub fast_window_us: u64,
    /// Slow window (µs): escalation significance. Default 1 hour.
    pub slow_window_us: u64,
    /// Fast burn must reach this multiple (with slow burn ≥ 1) before a
    /// degradation escalates to critical. Default 2.
    pub critical_factor: f64,
    /// The tracked objectives.
    pub objectives: Vec<Objective>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            fast_window_us: 300_000_000,
            slow_window_us: 3_600_000_000,
            critical_factor: 2.0,
            objectives: vec![
                Objective {
                    kind: ObjectiveKind::HandoffP99Us,
                    target: 50_000.0,
                },
                Objective {
                    kind: ObjectiveKind::DropRatio,
                    target: 0.01,
                },
                Objective {
                    kind: ObjectiveKind::QueueSaturation,
                    target: 0.5,
                },
                Objective {
                    kind: ObjectiveKind::ClassifierStalenessUs,
                    target: 30_000_000.0,
                },
                Objective {
                    kind: ObjectiveKind::QualityErrorRatio,
                    target: 0.10,
                },
                Objective {
                    kind: ObjectiveKind::DriftScore,
                    target: 0.25,
                },
            ],
        }
    }
}

/// Overall or per-objective health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Every objective inside budget.
    Ok,
    /// Fast-window burn at or past 1 on some objective.
    Degraded,
    /// Fast burn past the critical factor with the slow window burnt too.
    Critical,
}

impl Health {
    /// Stable lowercase name (healthz body, JSON `status`).
    pub fn name(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Critical => "critical",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One objective's evaluation.
#[derive(Debug, Clone)]
pub struct ObjectiveStatus {
    /// Which signal.
    pub kind: ObjectiveKind,
    /// The configured ceiling.
    pub target: f64,
    /// The most recently observed value.
    pub last: f64,
    /// Fast-window burn rate (≥ 1 means over budget).
    pub burn_fast: f64,
    /// Slow-window burn rate.
    pub burn_slow: f64,
    /// This objective's health.
    pub health: Health,
    /// Operator-readable explanation when not ok.
    pub reason: Option<String>,
}

impl Serialize for ObjectiveStatus {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("objective".into(), Value::String(self.kind.name().into())),
            ("target".into(), Value::Float(self.target)),
            ("last".into(), Value::Float(self.last)),
            ("burn_fast".into(), Value::Float(self.burn_fast)),
            ("burn_slow".into(), Value::Float(self.burn_slow)),
            ("status".into(), Value::String(self.health.name().into())),
            (
                "reason".into(),
                match &self.reason {
                    Some(r) => Value::String(r.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// The whole evaluation: worst objective wins.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Evaluation timestamp (µs on the engine's clock).
    pub ts: u64,
    /// Worst per-objective health.
    pub health: Health,
    /// Every objective's detail.
    pub objectives: Vec<ObjectiveStatus>,
}

impl SloReport {
    /// The reasons of every non-ok objective.
    pub fn reasons(&self) -> Vec<&str> {
        self.objectives
            .iter()
            .filter_map(|o| o.reason.as_deref())
            .collect()
    }

    /// The `/healthz` body: `ok`, or `degraded: r1; r2`, one line.
    pub fn healthz_body(&self) -> String {
        match self.health {
            Health::Ok => "ok\n".to_string(),
            h => format!("{}: {}\n", h.name(), self.reasons().join("; ")),
        }
    }
}

impl Serialize for SloReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ts".into(), Value::UInt(self.ts)),
            ("status".into(), Value::String(self.health.name().into())),
            (
                "objectives".into(),
                Value::Array(self.objectives.iter().map(|o| o.to_value()).collect()),
            ),
        ])
    }
}

/// One interval observation: `value` held over `(from, to]`.
#[derive(Debug, Clone, Copy)]
struct Sample {
    from: u64,
    to: u64,
    value: f64,
}

struct ObjectiveWindow {
    objective: Objective,
    samples: VecDeque<Sample>,
    last_ts: Option<u64>,
}

impl ObjectiveWindow {
    /// Budget consumed in the window ending at `now`, relative to the
    /// budget `target` allows over the whole window.
    fn burn(&self, now: u64, window: u64) -> f64 {
        if self.objective.target <= 0.0 || window == 0 {
            return 0.0;
        }
        let lo = now.saturating_sub(window);
        let mut consumed = 0.0;
        for s in &self.samples {
            let overlap = s.to.min(now).saturating_sub(s.from.max(lo));
            if overlap > 0 {
                consumed += s.value * overlap as f64;
            }
        }
        consumed / window as f64 / self.objective.target
    }
}

/// Rolling-window burn-rate evaluator. Clock-agnostic: `observe` and
/// [`SloEngine::evaluate`] take explicit `now_us` values, which may come
/// from the fleet's virtual clock or from real time.
pub struct SloEngine {
    config: SloConfig,
    windows: Vec<ObjectiveWindow>,
}

impl SloEngine {
    /// Builds an engine tracking `config.objectives`.
    pub fn new(config: SloConfig) -> Self {
        let windows = config
            .objectives
            .iter()
            .map(|&objective| ObjectiveWindow {
                objective,
                samples: VecDeque::new(),
                last_ts: None,
            })
            .collect();
        SloEngine { config, windows }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records `value` for `kind`, covering the interval since the
    /// previous observation of the same kind (the first observation is
    /// zero-width — it only starts the clock, matching pull-based delta
    /// semantics where the first delta is undefined). Unknown kinds are
    /// ignored.
    pub fn observe(&mut self, now_us: u64, kind: ObjectiveKind, value: f64) {
        let slow_window = self.config.slow_window_us;
        if let Some(w) = self.windows.iter_mut().find(|w| w.objective.kind == kind) {
            let from = w.last_ts.unwrap_or(now_us).min(now_us);
            let to = now_us;
            w.samples.push_back(Sample { from, to, value });
            w.last_ts = Some(to);
            let horizon = now_us.saturating_sub(slow_window);
            while w.samples.front().is_some_and(|s| s.to <= horizon) {
                w.samples.pop_front();
            }
        }
    }

    /// Evaluates every objective's fast/slow burn at `now_us`.
    pub fn evaluate(&self, now_us: u64) -> SloReport {
        let mut overall = Health::Ok;
        let objectives = self
            .windows
            .iter()
            .map(|w| {
                let burn_fast = w.burn(now_us, self.config.fast_window_us);
                let burn_slow = w.burn(now_us, self.config.slow_window_us);
                let health = if burn_fast >= self.config.critical_factor && burn_slow >= 1.0 {
                    Health::Critical
                } else if burn_fast >= 1.0 {
                    Health::Degraded
                } else {
                    Health::Ok
                };
                overall = overall.max(health);
                let reason = (health != Health::Ok).then(|| {
                    format!(
                        "{} burning {:.1}x fast / {:.1}x slow (target {})",
                        w.objective.kind.name(),
                        burn_fast,
                        burn_slow,
                        w.objective.target
                    )
                });
                ObjectiveStatus {
                    kind: w.objective.kind,
                    target: w.objective.target,
                    last: w.samples.back().map_or(0.0, |s| s.value),
                    burn_fast,
                    burn_slow,
                    health,
                    reason,
                }
            })
            .collect();
        SloReport {
            ts: now_us,
            health: overall,
            objectives,
        }
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("objectives", &self.windows.len())
            .finish()
    }
}

// ------------------------------------------------------- snapshot bridge

/// Derives objective values from consecutive registry snapshots, so the
/// SLO engine needs no hooks inside the pipeline: anything the metrics
/// already count is enough.
#[derive(Default)]
pub struct SnapshotBridge {
    prev: Option<Snapshot>,
    last_slots_total: u64,
    last_advance_us: Option<u64>,
}

/// Counter families whose increments mean "a record/event was lost".
pub(crate) const DROP_COUNTERS: [&str; 3] = [
    "cgc_ingest_dropped_total",
    "cgc_journal_dropped_events_total",
    "cgc_trace_dropped_spans_total",
];

/// Counter families whose increments mean "a record/event was accepted".
pub(crate) const ACCEPT_COUNTERS: [&str; 3] = [
    "cgc_ingest_enqueued_total",
    "cgc_journal_events_total",
    "cgc_trace_spans_total",
];

impl SnapshotBridge {
    /// A bridge with no baseline yet; the first `observe` only records it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `engine` every objective value derivable from `snap` (deltas
    /// against the previous snapshot where the signal is a rate).
    pub fn observe(&mut self, engine: &mut SloEngine, now_us: u64, snap: &Snapshot) {
        if self.prev.is_none() {
            // Baseline: no deltas to judge yet, but start the rate
            // objectives' interval clocks so the first real delta covers
            // the full baseline→now interval instead of zero width.
            engine.observe(now_us, ObjectiveKind::DropRatio, 0.0);
            engine.observe(now_us, ObjectiveKind::HandoffP99Us, 0.0);
        }
        if let Some(prev) = &self.prev {
            let d = snap.delta(prev);
            let dropped: u64 = DROP_COUNTERS.iter().filter_map(|n| d.counter(n)).sum();
            let accepted: u64 = ACCEPT_COUNTERS.iter().filter_map(|n| d.counter(n)).sum();
            let total = dropped + accepted;
            let ratio = if total == 0 {
                0.0
            } else {
                dropped as f64 / total as f64
            };
            engine.observe(now_us, ObjectiveKind::DropRatio, ratio);
            if let Some(h) = d.histogram("cgc_monitor_batch_ns") {
                if let Some(p99_ns) = h.quantile(0.99) {
                    engine.observe(now_us, ObjectiveKind::HandoffP99Us, p99_ns / 1_000.0);
                }
            }
        }
        // Saturation reads instantaneous gauges: the deepest queue as a
        // fraction of the per-queue capacity gauge.
        let capacity = snap.gauge("cgc_ingest_queue_capacity").unwrap_or(0);
        if capacity > 0 {
            let deepest = snap
                .metrics
                .iter()
                .filter(|m| m.name == "cgc_ingest_queue_depth")
                .filter_map(|m| match m.value {
                    crate::snapshot::MetricValue::Gauge(v) => Some(v),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            engine.observe(
                now_us,
                ObjectiveKind::QueueSaturation,
                (deepest.max(0) as f64 / capacity as f64).clamp(0.0, 1.0),
            );
        }
        // Staleness: µs since slot production last advanced while flows
        // were active (an idle pipeline with no flows is not stale).
        let slots = snap.counter("cgc_pipeline_slots_total").unwrap_or(0);
        if slots > self.last_slots_total || self.last_advance_us.is_none() {
            self.last_advance_us = Some(now_us);
        }
        self.last_slots_total = slots;
        let active = snap.gauge("cgc_monitor_active_flows").unwrap_or(0);
        let staleness = if active > 0 {
            now_us.saturating_sub(self.last_advance_us.unwrap_or(now_us))
        } else {
            0
        };
        engine.observe(
            now_us,
            ObjectiveKind::ClassifierStalenessUs,
            staleness as f64,
        );
        // Quality: worst rolling error across the models whose windows
        // actually hold truth-joined samples (an empty window is not
        // evidence of accuracy).
        let worst_error = snap
            .metrics
            .iter()
            .filter(|m| m.name == "cgc_quality_accuracy_pct")
            .filter_map(|m| {
                // Pair each accuracy series with the window_len series that
                // carries the same full label set, so extra labels (e.g. an
                // impairment `profile`) never silently break the pairing.
                let filled = snap
                    .metrics
                    .iter()
                    .find(|w| w.name == "cgc_quality_window_len" && w.labels == m.labels)
                    .is_some_and(
                        |w| matches!(w.value, crate::snapshot::MetricValue::Gauge(v) if v > 0),
                    );
                if !filled {
                    return None;
                }
                match m.value {
                    crate::snapshot::MetricValue::Gauge(pct) => {
                        Some((1.0 - pct as f64 / 100.0).clamp(0.0, 1.0))
                    }
                    _ => None,
                }
            })
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            });
        if let Some(err) = worst_error {
            engine.observe(now_us, ObjectiveKind::QualityErrorRatio, err);
        }
        // Drift: worst label-free score across models (milli-gauge → PSI
        // units). Present whenever a drift engine is registered; zero
        // during warmup, so installing the engine never alarms by itself.
        let worst_drift = snap
            .metrics
            .iter()
            .filter(|m| m.name == "cgc_drift_score_milli")
            .filter_map(|m| match m.value {
                crate::snapshot::MetricValue::Gauge(v) => Some(v.max(0) as f64 / 1000.0),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        if let Some(score) = worst_drift {
            engine.observe(now_us, ObjectiveKind::DriftScore, score);
        }
        self.prev = Some(snap.clone());
    }
}

impl std::fmt::Debug for SnapshotBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotBridge")
            .field("baselined", &self.prev.is_some())
            .finish()
    }
}

// ---------------------------------------------------------------- hub

/// Engine + bridge + clock behind one shared handle: the telemetry
/// server's `/healthz` and `/slo`, and the fleet reporter, all call
/// [`SloHub::observe_and_evaluate`] with a fresh snapshot.
pub struct SloHub {
    engine: Mutex<(SloEngine, SnapshotBridge)>,
    now: Box<dyn Fn() -> u64 + Send + Sync>,
}

impl SloHub {
    /// A hub on an explicit clock (pass the fleet's virtual clock here).
    pub fn new(config: SloConfig, now: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        SloHub {
            engine: Mutex::new((SloEngine::new(config), SnapshotBridge::new())),
            now: Box::new(now),
        }
    }

    /// A hub on real time (µs since the hub was built).
    pub fn real_time(config: SloConfig) -> Self {
        let start = std::time::Instant::now();
        Self::new(config, move || start.elapsed().as_micros() as u64)
    }

    /// Feeds `snap` through the bridge and evaluates, all under one lock
    /// (poison-recovering: a panicked scraper must not wedge health).
    pub fn observe_and_evaluate(&self, snap: &Snapshot) -> SloReport {
        let now = (self.now)();
        let mut guard = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let (engine, bridge) = &mut *guard;
        bridge.observe(engine, now, snap);
        engine.evaluate(now)
    }

    /// Evaluates without a new observation (windows still slide).
    pub fn evaluate(&self) -> SloReport {
        let now = (self.now)();
        let guard = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        guard.0.evaluate(now)
    }
}

impl std::fmt::Debug for SloHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloHub").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const MIN: u64 = 60_000_000;

    fn engine_with(kind: ObjectiveKind, target: f64) -> SloEngine {
        SloEngine::new(SloConfig {
            objectives: vec![Objective { kind, target }],
            ..SloConfig::default()
        })
    }

    #[test]
    fn quiet_engine_is_ok() {
        let mut engine = engine_with(ObjectiveKind::DropRatio, 0.01);
        engine.observe(0, ObjectiveKind::DropRatio, 0.0);
        engine.observe(MIN, ObjectiveKind::DropRatio, 0.0);
        let report = engine.evaluate(MIN);
        assert_eq!(report.health, Health::Ok);
        assert!(report.reasons().is_empty());
        assert_eq!(report.healthz_body(), "ok\n");
    }

    #[test]
    fn drop_burst_degrades_then_recovers_as_the_window_slides() {
        let mut engine = engine_with(ObjectiveKind::DropRatio, 0.01);
        engine.observe(0, ObjectiveKind::DropRatio, 0.0); // baseline
                                                          // One minute at 20% drops: fast burn = 0.2·(60/300)/0.01 = 4.
        engine.observe(MIN, ObjectiveKind::DropRatio, 0.2);
        let burst = engine.evaluate(MIN);
        assert_eq!(burst.health, Health::Degraded, "{burst:?}");
        let status = &burst.objectives[0];
        assert!(status.burn_fast > 1.0, "{status:?}");
        assert!(
            burst.healthz_body().starts_with("degraded: drop_ratio"),
            "{}",
            burst.healthz_body()
        );
        // The burst slides out of the 5m fast window: ok again, with no
        // further observations needed.
        let recovered = engine.evaluate(MIN + 6 * MIN);
        assert_eq!(recovered.health, Health::Ok, "{recovered:?}");
        assert!(recovered.objectives[0].burn_fast < 1.0);
    }

    #[test]
    fn sustained_burn_escalates_to_critical() {
        let mut engine = engine_with(ObjectiveKind::QueueSaturation, 0.5);
        engine.observe(0, ObjectiveKind::QueueSaturation, 0.0);
        // Saturated queues for 70 minutes straight: the slow window is
        // fully burnt and the fast window far past the critical factor.
        for m in 1..=70u64 {
            engine.observe(m * MIN, ObjectiveKind::QueueSaturation, 1.0);
        }
        let report = engine.evaluate(70 * MIN);
        assert_eq!(report.health, Health::Critical, "{report:?}");
        let status = &report.objectives[0];
        assert!(status.burn_slow >= 1.0, "{status:?}");
        assert!(status.burn_fast >= 2.0, "{status:?}");
        assert!(report.healthz_body().starts_with("critical:"));
    }

    #[test]
    fn short_burst_never_escalates_past_degraded() {
        // The multi-window rule: a burst that blows the fast window past
        // the critical factor but not the hour budget stays a
        // degradation.
        let mut engine = engine_with(ObjectiveKind::QueueSaturation, 0.1);
        engine.observe(0, ObjectiveKind::QueueSaturation, 0.0);
        engine.observe(MIN, ObjectiveKind::QueueSaturation, 1.0);
        let report = engine.evaluate(MIN);
        assert_eq!(report.health, Health::Degraded, "{report:?}");
        assert!(report.objectives[0].burn_fast >= 2.0, "{report:?}");
        assert!(report.objectives[0].burn_slow < 1.0, "{report:?}");
    }

    #[test]
    fn report_serializes_with_stable_fields() {
        let mut engine = engine_with(ObjectiveKind::DropRatio, 0.01);
        engine.observe(0, ObjectiveKind::DropRatio, 0.0);
        engine.observe(MIN, ObjectiveKind::DropRatio, 0.5);
        let line = serde_json::to_string(&engine.evaluate(MIN)).unwrap();
        assert!(line.contains("\"status\":\"degraded\""), "{line}");
        assert!(line.contains("\"objective\":\"drop_ratio\""), "{line}");
        assert!(line.contains("\"burn_fast\":"), "{line}");
        assert!(line.contains("\"reason\":\"drop_ratio burning"), "{line}");
    }

    #[test]
    fn bridge_derives_drop_ratio_from_counter_deltas() {
        let registry = Registry::new();
        let enq = registry.counter("cgc_ingest_enqueued_total", "t");
        let dropped = registry.counter_with(
            "cgc_ingest_dropped_total",
            "t",
            &[("policy", "drop_oldest")],
        );
        let mut engine = engine_with(ObjectiveKind::DropRatio, 0.01);
        let mut bridge = SnapshotBridge::new();
        enq.add(100);
        bridge.observe(&mut engine, 0, &registry.snapshot()); // baseline
                                                              // Interval: 80 accepted, 20 dropped → ratio 0.2 over one minute.
        enq.add(80);
        dropped.add(20);
        bridge.observe(&mut engine, MIN, &registry.snapshot());
        let report = engine.evaluate(MIN);
        assert_eq!(report.health, Health::Degraded, "{report:?}");
        assert!((report.objectives[0].last - 0.2).abs() < 1e-9, "{report:?}");
    }

    #[test]
    fn bridge_derives_saturation_and_staleness() {
        let registry = Registry::new();
        registry
            .gauge("cgc_ingest_queue_capacity", "cap")
            .set(1_000);
        let depth = registry.gauge_with("cgc_ingest_queue_depth", "d", &[("shard", "0")]);
        let slots = registry.counter("cgc_pipeline_slots_total", "s");
        let active = registry.gauge("cgc_monitor_active_flows", "a");
        let mut engine = SloEngine::new(SloConfig {
            objectives: vec![
                Objective {
                    kind: ObjectiveKind::QueueSaturation,
                    target: 0.5,
                },
                Objective {
                    kind: ObjectiveKind::ClassifierStalenessUs,
                    target: 30_000_000.0,
                },
            ],
            ..SloConfig::default()
        });
        let mut bridge = SnapshotBridge::new();
        depth.set(900);
        active.set(5);
        slots.add(1);
        bridge.observe(&mut engine, 0, &registry.snapshot());
        // Slots stopped advancing while flows stayed active: staleness
        // grows; the queue sits at 90% of capacity.
        bridge.observe(&mut engine, 2 * MIN, &registry.snapshot());
        let report = engine.evaluate(2 * MIN);
        let sat = &report.objectives[0];
        assert!((sat.last - 0.9).abs() < 1e-9, "{sat:?}");
        let stale = &report.objectives[1];
        assert!((stale.last - (2 * MIN) as f64).abs() < 1.0, "{stale:?}");
        // Slot production resumes: staleness resets.
        slots.add(1);
        bridge.observe(&mut engine, 3 * MIN, &registry.snapshot());
        let report = engine.evaluate(3 * MIN);
        assert_eq!(report.objectives[1].last, 0.0, "{report:?}");
    }

    #[test]
    fn bridge_derives_quality_error_from_accuracy_gauges() {
        let registry = Registry::new();
        let acc_title = registry.gauge_with("cgc_quality_accuracy_pct", "a", &[("model", "title")]);
        let len_title = registry.gauge_with("cgc_quality_window_len", "w", &[("model", "title")]);
        // A second model with an empty window and 0% accuracy must NOT
        // count: no samples means no evidence.
        registry
            .gauge_with("cgc_quality_accuracy_pct", "a", &[("model", "stage")])
            .set(0);
        registry
            .gauge_with("cgc_quality_window_len", "w", &[("model", "stage")])
            .set(0);
        let mut engine = engine_with(ObjectiveKind::QualityErrorRatio, 0.10);
        let mut bridge = SnapshotBridge::new();
        acc_title.set(95);
        len_title.set(256);
        bridge.observe(&mut engine, 0, &registry.snapshot());
        bridge.observe(&mut engine, MIN, &registry.snapshot());
        let report = engine.evaluate(MIN);
        assert_eq!(report.health, Health::Ok, "{report:?}");
        assert!(
            (report.objectives[0].last - 0.05).abs() < 1e-9,
            "{report:?}"
        );
        // Accuracy collapses: sustained error past the floor degrades.
        acc_title.set(40);
        for m in 2..=7u64 {
            bridge.observe(&mut engine, m * MIN, &registry.snapshot());
        }
        let report = engine.evaluate(7 * MIN);
        assert_eq!(report.health, Health::Degraded, "{report:?}");
        assert!(report
            .healthz_body()
            .starts_with("degraded: quality_error_ratio"));
    }

    #[test]
    fn bridge_derives_drift_score_from_milli_gauges() {
        let registry = Registry::new();
        let title = registry.gauge_with("cgc_drift_score_milli", "d", &[("model", "title")]);
        registry
            .gauge_with("cgc_drift_score_milli", "d", &[("model", "stage")])
            .set(10);
        let mut engine = engine_with(ObjectiveKind::DriftScore, 0.25);
        let mut bridge = SnapshotBridge::new();
        title.set(0); // warmup: engine installed, nothing scored yet
        bridge.observe(&mut engine, 0, &registry.snapshot());
        bridge.observe(&mut engine, MIN, &registry.snapshot());
        assert_eq!(engine.evaluate(MIN).health, Health::Ok);
        // The worst model's score crosses the ceiling and stays there.
        title.set(600);
        for m in 2..=7u64 {
            bridge.observe(&mut engine, m * MIN, &registry.snapshot());
        }
        let report = engine.evaluate(7 * MIN);
        assert_eq!(report.health, Health::Degraded, "{report:?}");
        assert!((report.objectives[0].last - 0.6).abs() < 1e-9, "{report:?}");
        assert!(report.healthz_body().starts_with("degraded: drift_score"));
    }

    #[test]
    fn hub_runs_on_an_injected_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let clock = Arc::new(AtomicU64::new(0));
        let tick = Arc::clone(&clock);
        let hub = SloHub::new(
            SloConfig {
                objectives: vec![Objective {
                    kind: ObjectiveKind::DropRatio,
                    target: 0.01,
                }],
                ..SloConfig::default()
            },
            move || tick.load(Ordering::Relaxed),
        );
        let registry = Registry::new();
        let enq = registry.counter("cgc_ingest_enqueued_total", "t");
        let dropped = registry.counter("cgc_ingest_dropped_total", "t");
        enq.add(10);
        assert_eq!(
            hub.observe_and_evaluate(&registry.snapshot()).health,
            Health::Ok
        );
        clock.store(MIN, Ordering::Relaxed);
        enq.add(50);
        dropped.add(50);
        let report = hub.observe_and_evaluate(&registry.snapshot());
        assert_eq!(report.health, Health::Degraded, "{report:?}");
        // Recovery purely by the clock advancing.
        clock.store(8 * MIN, Ordering::Relaxed);
        assert_eq!(hub.evaluate().health, Health::Ok);
    }
}
