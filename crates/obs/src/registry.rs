//! Metric registry: named, labelled handles with get-or-create
//! semantics and whole-registry snapshots.
//!
//! Instrumented code holds `Arc` handles obtained once at registration,
//! so the hot path never touches the registry lock — only registration
//! and `snapshot()` do. A process-wide registry is available via
//! [`Registry::global`], and every consumer also accepts an injected
//! registry for deterministic tests.

use crate::hist::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricSnapshot, MetricValue, Snapshot};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// Collection of named metrics with snapshot support.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<Vec<Entry>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// Create an empty registry (for injection into tests or tools that
    /// need isolation from the process-wide one).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or create a counter with labels.
    ///
    /// # Panics
    /// If `name`+`labels` is already registered as a different kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a gauge with labels.
    ///
    /// # Panics
    /// If `name`+`labels` is already registered as a different kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or create an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get or create a histogram with labels.
    ///
    /// # Panics
    /// If `name`+`labels` is already registered as a different kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        // Labels are stored and compared in sorted order so the same
        // series registered with a different label order deduplicates to
        // one handle instead of silently splitting the series.
        let mut sorted: Vec<(&str, &str)> = labels.to_vec();
        sorted.sort_unstable();
        let matches = |e: &Entry| {
            e.name == name
                && e.labels.len() == sorted.len()
                && e.labels
                    .iter()
                    .zip(&sorted)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        };
        {
            // Poison recovery throughout: a panicking exporter thread must
            // not wedge registration on the tap path — entries are only
            // ever appended, so a poisoned guard still holds valid data.
            let entries = self.entries.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(e) = entries.iter().find(|e| matches(e)) {
                return e.metric.clone();
            }
        }
        let mut entries = self.entries.write().unwrap_or_else(PoisonError::into_inner);
        // Re-check: another thread may have registered between locks.
        if let Some(e) = entries.iter().find(|e| matches(e)) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: sorted
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capture every registered metric, sorted by name then labels.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.read().unwrap_or_else(PoisonError::into_inner);
        let mut metrics: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.counter_with("d_total", "d", &[("title", "fortnite")]);
        let b = r.counter_with("d_total", "d", &[("title", "dota_2")]);
        a.inc();
        b.add(5);
        assert_eq!(r.len(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("d_total"), Some(6));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "m");
        r.gauge("m", "m");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("b_depth", "depth").set(3);
        r.counter("a_total", "a").add(7);
        r.histogram("c_ns", "latency").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_total", "b_depth", "c_ns"]);
        assert_eq!(snap.counter("a_total"), Some(7));
        assert_eq!(snap.gauge("b_depth"), Some(3));
        assert_eq!(snap.histogram("c_ns").unwrap().count, 1);
    }

    #[test]
    fn duplicate_registration_returns_identical_handle() {
        // Not just equal values: the very same allocation, so increments
        // through either handle land on one series.
        let r = Registry::new();
        let a = r.counter("dup_total", "d");
        let b = r.counter("dup_total", "other help text is ignored");
        assert!(Arc::ptr_eq(&a, &b));
        let g1 = r.gauge("dup_depth", "d");
        let g2 = r.gauge("dup_depth", "d");
        assert!(Arc::ptr_eq(&g1, &g2));
        let h1 = r.histogram("dup_ns", "d");
        let h2 = r.histogram("dup_ns", "d");
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter_with(
            "lbl_total",
            "l",
            &[("kind", "objective"), ("level", "good")],
        );
        let b = r.counter_with(
            "lbl_total",
            "l",
            &[("level", "good"), ("kind", "objective")],
        );
        assert!(Arc::ptr_eq(&a, &b), "reordered labels must deduplicate");
        a.inc();
        b.inc();
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot().counter("lbl_total"), Some(2));
    }

    #[test]
    fn snapshot_order_is_independent_of_registration_order() {
        // Golden-diffing Prometheus scrapes only works if two processes
        // that register the same series in different orders render byte-
        // identical output.
        let forward = Registry::new();
        forward.counter("z_total", "z").add(1);
        forward
            .counter_with("m_total", "m", &[("shard", "1")])
            .add(2);
        forward
            .counter_with("m_total", "m", &[("shard", "0")])
            .add(3);
        forward.gauge("a_depth", "a").set(4);
        forward.histogram("h_us", "h").record(5);

        let reverse = Registry::new();
        reverse.histogram("h_us", "h").record(5);
        reverse.gauge("a_depth", "a").set(4);
        reverse
            .counter_with("m_total", "m", &[("shard", "0")])
            .add(3);
        reverse
            .counter_with("m_total", "m", &[("shard", "1")])
            .add(2);
        reverse.counter("z_total", "z").add(1);

        let fwd = forward.snapshot();
        let rev = reverse.snapshot();
        assert_eq!(fwd, rev);
        assert_eq!(
            crate::export::prometheus(&fwd),
            crate::export::prometheus(&rev)
        );
        // And label sets within one family come out sorted.
        let shards: Vec<&str> = fwd
            .metrics
            .iter()
            .filter(|m| m.name == "m_total")
            .map(|m| m.labels[0].1.as_str())
            .collect();
        assert_eq!(shards, ["0", "1"]);
    }

    #[test]
    fn repeated_snapshots_keep_a_stable_order() {
        let r = Registry::new();
        for i in 0..16 {
            r.counter_with("stable_total", "s", &[("shard", &i.to_string())])
                .inc();
        }
        let first: Vec<_> = r
            .snapshot()
            .metrics
            .iter()
            .map(|m| (m.name.clone(), m.labels.clone()))
            .collect();
        for _ in 0..4 {
            let again: Vec<_> = r
                .snapshot()
                .metrics
                .iter()
                .map(|m| (m.name.clone(), m.labels.clone()))
                .collect();
            assert_eq!(first, again);
        }
    }

    #[test]
    fn poisoned_lock_does_not_wedge_the_registry() {
        let r = Arc::new(Registry::new());
        r.counter("survives_total", "s").add(5);
        // Poison the RwLock by panicking while holding the write guard.
        let r2 = Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _guard = r2.entries.write().unwrap();
            panic!("exporter thread dies mid-write");
        })
        .join();
        assert!(r.entries.is_poisoned());
        // Every access path still works on the (append-only) data.
        assert_eq!(r.len(), 1);
        let c = r.counter("survives_total", "s");
        c.inc();
        let fresh = r.counter("post_poison_total", "p");
        fresh.add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("survives_total"), Some(6));
        assert_eq!(snap.counter("post_poison_total"), Some(2));
    }

    #[test]
    fn concurrent_registration_converges_to_one_series() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter("contended_total", "c").inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot().counter("contended_total"), Some(8000));
    }
}
