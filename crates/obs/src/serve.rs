//! Dependency-free blocking HTTP telemetry endpoint.
//!
//! One `std::net::TcpListener` + one thread, enough for a scraper and an
//! operator with `curl` — deliberately not an async stack. Routes:
//!
//! - `GET /metrics` — live registry snapshot, Prometheus text exposition
//! - `GET /healthz` — `ok`
//! - `GET /journal` — flight-recorder timelines as JSONL (one flow per
//!   line); `?flow=<hex id>` narrows to one timeline, `?tail=N` returns
//!   the N most recent events (one event per line) instead
//!
//! The snapshot comes from a caller-supplied closure so the server works
//! against the global registry, a private fleet registry, or anything
//! else that can produce a [`Snapshot`]. Shutdown is edge-free: dropping
//! [`TelemetryServer`] flips a flag and self-connects to unblock
//! `accept`, then joins the thread.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::export;
use crate::journal::{lock_journal, Journal};
use crate::snapshot::Snapshot;

/// A running telemetry endpoint; drops cleanly when it goes out of scope.
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// serves until dropped. `snapshot` is called per `/metrics` request;
    /// `journal`, when given, backs `/journal` (404 otherwise).
    pub fn spawn<F>(
        addr: &str,
        snapshot: F,
        journal: Option<Arc<Mutex<Journal>>>,
    ) -> std::io::Result<TelemetryServer>
    where
        F: Fn() -> Snapshot + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // A stalled client must not wedge the single thread.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    handle_conn(&mut stream, &snapshot, journal.as_deref());
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn handle_conn<F: Fn() -> Snapshot>(
    stream: &mut TcpStream,
    snapshot: &F,
    journal: Option<&Mutex<Journal>>,
) {
    let Some(target) = read_request_target(stream) else {
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            export::prometheus(&snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/journal" => match journal {
            Some(j) => ("200 OK", "application/jsonl", journal_body(j, query)),
            None => (
                "404 Not Found",
                "text/plain",
                "no journal installed\n".to_string(),
            ),
        },
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Reads just enough of the request to get the target of the request
/// line (`GET <target> HTTP/1.1`); returns `None` on anything malformed.
fn read_request_target(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 2048];
    let mut used = 0;
    loop {
        if used == buf.len() {
            return None; // request line absurdly long
        }
        let n = stream.read(&mut buf[used..]).ok()?;
        if n == 0 {
            return None;
        }
        used += n;
        if buf[..used].contains(&b'\n') {
            break;
        }
    }
    let line = std::str::from_utf8(&buf[..used]).ok()?.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(target.to_string())
}

fn journal_body(journal: &Mutex<Journal>, query: &str) -> String {
    let mut j = lock_journal(journal);
    j.drain();
    for kv in query.split('&') {
        if let Some(n) = kv.strip_prefix("tail=") {
            let n = n.parse::<usize>().unwrap_or(100);
            return j.tail_jsonl(n);
        }
        if let Some(id) = kv.strip_prefix("flow=") {
            let flow =
                u64::from_str_radix(id.trim_start_matches("0x"), 16).or_else(|_| id.parse::<u64>());
            return match flow.ok().and_then(|f| j.timeline(f)) {
                Some(tl) => {
                    let mut line = crate::journal::render_line(tl);
                    line.push('\n');
                    line
                }
                None => String::new(),
            };
        }
    }
    j.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::journal::JournalConfig;
    use crate::registry::Registry;

    fn get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_journal() {
        let registry = Arc::new(Registry::new());
        registry.counter("served_total", "requests").add(3);
        let (sink, journal) = Journal::new(JournalConfig::default(), &registry);
        sink.emit(
            0xbeef,
            1_000_000,
            EventKind::LaunchWindowClosed { packets: 12 },
        );
        sink.emit(
            0xbeef,
            2_000_000,
            EventKind::SessionVerdict {
                objective: cgc_domain::QoeLevel::Good,
                effective: cgc_domain::QoeLevel::Good,
            },
        );
        let journal = Arc::new(Mutex::new(journal));
        let reg = Arc::clone(&registry);
        let server =
            TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), Some(journal)).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("# TYPE served_total counter"), "{body}");
        assert!(body.contains("served_total 3"), "{body}");

        let (head, body) = get(addr, "/journal");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body.lines().count(), 1, "one timeline line: {body}");
        assert!(body.contains("\"flow\":\"000000000000beef\""), "{body}");

        let (_, one) = get(addr, "/journal?flow=beef");
        assert!(one.contains("launch_window_closed"), "{one}");
        let (_, tail) = get(addr, "/journal?tail=1");
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("session_verdict"), "{tail}");
        let (_, missing) = get(addr, "/journal?flow=1234");
        assert!(missing.is_empty());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn journal_route_404s_without_a_journal() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, _) = get(server.local_addr(), "/journal");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The port is closed (or at least no longer answering HTTP).
        let answered = TcpStream::connect(addr)
            .ok()
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_millis(200))).ok()?;
                write!(s, "GET /healthz HTTP/1.1\r\n\r\n").ok()?;
                let mut out = String::new();
                s.read_to_string(&mut out).ok()?;
                (!out.is_empty()).then_some(out)
            })
            .is_some();
        assert!(!answered, "server kept answering after drop");
    }
}
