//! Dependency-free blocking HTTP telemetry endpoint.
//!
//! One `std::net::TcpListener` + one thread, enough for a scraper and an
//! operator with `curl` — deliberately not an async stack. Routes:
//!
//! - `GET /metrics` — live registry snapshot, Prometheus text exposition
//!   (histograms carry OpenMetrics exemplars when traced call sites
//!   attached them)
//! - `GET /healthz` — `ok` / `degraded: …` / `critical: …`; critical
//!   answers HTTP 503 so external probes work unmodified. With an
//!   [`SloHub`] the verdict is the multi-window burn-rate evaluation;
//!   without one it falls back to cumulative drop/saturation counters.
//! - `GET /journal` — flight-recorder timelines as JSONL (one flow per
//!   line); `?flow=<hex id>` narrows to one timeline, `?tail=N` returns
//!   the N most recent events (one event per line) instead
//! - `GET /trace` — span timelines as JSONL (one flow per line);
//!   `?flow=<hex id>` narrows to one flow, `?slot=N` to one slot's spans
//! - `GET /slo` — the full burn-rate report as JSON (404 without a hub)
//! - `GET /quality` — streaming confusion-telemetry report as JSON
//!   (rolling accuracy/precision/recall per model; 404 without a hub)
//! - `GET /drift` — label-free drift report as JSON (PSI/KS/novelty per
//!   model; 404 without an engine)
//! - `GET /models` — model-lifecycle status as JSON (live/shadow
//!   registry versions, manifests, A/B verdict; 404 without a registry)
//!
//! The snapshot comes from a caller-supplied closure so the server works
//! against the global registry, a private fleet registry, or anything
//! else that can produce a [`Snapshot`]. Shutdown is edge-free: dropping
//! [`TelemetryServer`] flips a flag and self-connects to unblock
//! `accept`, then joins the thread.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::build::BuildInfo;
use crate::drift::{lock_engine, DriftEngine};
use crate::export;
use crate::journal::{lock_journal, Journal};
use crate::quality::{lock_hub, QualityHub};
use crate::slo::{Health, SloHub};
use crate::snapshot::Snapshot;
use crate::trace::{lock_collector, TraceCollector};

/// Optional backends for the non-metrics routes.
#[derive(Default)]
pub struct ServeOptions {
    /// Backs `/journal`; the route answers 404 when absent.
    pub journal: Option<Arc<Mutex<Journal>>>,
    /// Backs `/trace`; the route answers 404 when absent.
    pub trace: Option<Arc<Mutex<TraceCollector>>>,
    /// Backs `/slo` and upgrades `/healthz` to burn-rate evaluation.
    pub slo: Option<Arc<SloHub>>,
    /// Backs `/quality`; the route answers 404 when absent. Drained and
    /// re-synced before every response so scraped gauges are current.
    pub quality: Option<Arc<Mutex<QualityHub>>>,
    /// Backs `/drift`; the route answers 404 when absent. Drained and
    /// re-synced before every response.
    pub drift: Option<Arc<Mutex<DriftEngine>>>,
    /// Appends the build line to `/healthz` and keeps the uptime gauge
    /// fresh on every request.
    pub build: Option<Arc<BuildInfo>>,
    /// Backs `/models`: a closure producing the model-lifecycle status
    /// report as a JSON string (live/shadow versions, registry
    /// manifests, A/B verdict). The route answers 404 when absent, or
    /// when the closure returns `None` (lifecycle wired but no registry
    /// open yet). A closure — rather than a concrete type — keeps `obs`
    /// below the lifecycle crate in the dependency order.
    pub models: Option<Arc<dyn Fn() -> Option<String> + Send + Sync>>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("journal", &self.journal.is_some())
            .field("trace", &self.trace.is_some())
            .field("slo", &self.slo.is_some())
            .field("quality", &self.quality.is_some())
            .field("drift", &self.drift.is_some())
            .field("build", &self.build.is_some())
            .field("models", &self.models.is_some())
            .finish()
    }
}

/// A running telemetry endpoint; drops cleanly when it goes out of scope.
pub struct TelemetryServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// serves until dropped. `snapshot` is called per `/metrics` request;
    /// `journal`, when given, backs `/journal` (404 otherwise).
    pub fn spawn<F>(
        addr: &str,
        snapshot: F,
        journal: Option<Arc<Mutex<Journal>>>,
    ) -> std::io::Result<TelemetryServer>
    where
        F: Fn() -> Snapshot + Send + 'static,
    {
        Self::spawn_with(
            addr,
            snapshot,
            ServeOptions {
                journal,
                ..ServeOptions::default()
            },
        )
    }

    /// [`TelemetryServer::spawn`] with the full backend set: journal,
    /// trace collector, and SLO hub.
    pub fn spawn_with<F>(
        addr: &str,
        snapshot: F,
        options: ServeOptions,
    ) -> std::io::Result<TelemetryServer>
    where
        F: Fn() -> Snapshot + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // A stalled client must not wedge the single thread.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    handle_conn(&mut stream, &snapshot, &options);
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn handle_conn<F: Fn() -> Snapshot>(stream: &mut TcpStream, snapshot: &F, options: &ServeOptions) {
    let Some(target) = read_request_target(stream) else {
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    // Bring derived gauges up to date before any snapshot is taken, so
    // `/metrics`, `/healthz`, and the SLO bridge all see current
    // quality/drift scores and uptime — not the last request's.
    if let Some(build) = &options.build {
        build.sync();
    }
    if let Some(quality) = &options.quality {
        lock_hub(quality).drain_and_sync();
    }
    if let Some(drift) = &options.drift {
        lock_engine(drift).drain_and_sync();
    }
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            export::prometheus(&snapshot()),
        ),
        "/healthz" => {
            let (health, body) = healthz(snapshot, options);
            let status = if health == Health::Critical {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status, "text/plain", body)
        }
        "/slo" => match &options.slo {
            Some(hub) => (
                "200 OK",
                "application/json",
                serde_json::to_string(&hub.observe_and_evaluate(&snapshot()))
                    .expect("slo report serialization is infallible"),
            ),
            None => (
                "404 Not Found",
                "text/plain",
                "no slo engine installed\n".to_string(),
            ),
        },
        "/quality" => match &options.quality {
            Some(hub) => (
                "200 OK",
                "application/json",
                serde_json::to_string(&lock_hub(hub).report())
                    .expect("quality report serialization is infallible"),
            ),
            None => (
                "404 Not Found",
                "text/plain",
                "no quality telemetry installed\n".to_string(),
            ),
        },
        "/drift" => match &options.drift {
            Some(engine) => (
                "200 OK",
                "application/json",
                serde_json::to_string(&lock_engine(engine).report())
                    .expect("drift report serialization is infallible"),
            ),
            None => (
                "404 Not Found",
                "text/plain",
                "no drift engine installed\n".to_string(),
            ),
        },
        "/models" => match options.models.as_ref().and_then(|report| report()) {
            Some(body) => ("200 OK", "application/json", body),
            None => (
                "404 Not Found",
                "text/plain",
                "no model registry installed\n".to_string(),
            ),
        },
        "/journal" => match &options.journal {
            Some(j) => ("200 OK", "application/jsonl", journal_body(j, query)),
            None => (
                "404 Not Found",
                "text/plain",
                "no journal installed\n".to_string(),
            ),
        },
        "/trace" => match &options.trace {
            Some(t) => ("200 OK", "application/jsonl", trace_body(t, query)),
            None => (
                "404 Not Found",
                "text/plain",
                "no trace collector installed\n".to_string(),
            ),
        },
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Reads just enough of the request to get the target of the request
/// line (`GET <target> HTTP/1.1`); returns `None` on anything malformed.
fn read_request_target(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 2048];
    let mut used = 0;
    loop {
        if used == buf.len() {
            return None; // request line absurdly long
        }
        let n = stream.read(&mut buf[used..]).ok()?;
        if n == 0 {
            return None;
        }
        used += n;
        if buf[..used].contains(&b'\n') {
            break;
        }
    }
    let line = std::str::from_utf8(&buf[..used]).ok()?.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(target.to_string())
}

/// Cumulative-counter fallback thresholds for `/healthz` without an SLO
/// hub: crude by design (lifetime ratios, no windows) but enough to turn
/// real drop storms and saturated queues into non-ok probes.
const FALLBACK_DROP_DEGRADED: f64 = 0.001;
const FALLBACK_DROP_CRITICAL: f64 = 0.05;
const FALLBACK_SATURATION_DEGRADED: f64 = 0.9;

fn healthz<F: Fn() -> Snapshot>(snapshot: &F, options: &ServeOptions) -> (Health, String) {
    let (health, mut body) = healthz_verdict(snapshot, options);
    if let Some(build) = &options.build {
        body.push_str(&build.healthz_line());
    }
    (health, body)
}

fn healthz_verdict<F: Fn() -> Snapshot>(snapshot: &F, options: &ServeOptions) -> (Health, String) {
    if let Some(hub) = &options.slo {
        let report = hub.observe_and_evaluate(&snapshot());
        return (report.health, report.healthz_body());
    }
    let snap = snapshot();
    let mut health = Health::Ok;
    let mut reasons: Vec<String> = Vec::new();
    let dropped: u64 = crate::slo::DROP_COUNTERS
        .iter()
        .filter_map(|n| snap.counter(n))
        .sum();
    let accepted: u64 = crate::slo::ACCEPT_COUNTERS
        .iter()
        .filter_map(|n| snap.counter(n))
        .sum();
    let total = dropped + accepted;
    if total > 0 && dropped > 0 {
        let ratio = dropped as f64 / total as f64;
        if ratio >= FALLBACK_DROP_CRITICAL {
            health = health.max(Health::Critical);
            reasons.push(format!("drop ratio {:.1}% (cumulative)", ratio * 100.0));
        } else if ratio >= FALLBACK_DROP_DEGRADED {
            health = health.max(Health::Degraded);
            reasons.push(format!("drop ratio {:.2}% (cumulative)", ratio * 100.0));
        }
    }
    let capacity = snap.gauge("cgc_ingest_queue_capacity").unwrap_or(0);
    if capacity > 0 {
        let deepest = snap
            .metrics
            .iter()
            .filter(|m| m.name == "cgc_ingest_queue_depth")
            .filter_map(|m| match m.value {
                crate::snapshot::MetricValue::Gauge(v) => Some(v),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let saturation = deepest.max(0) as f64 / capacity as f64;
        if saturation >= 1.0 {
            health = health.max(Health::Critical);
            reasons.push(format!("queue saturated ({deepest}/{capacity})"));
        } else if saturation >= FALLBACK_SATURATION_DEGRADED {
            health = health.max(Health::Degraded);
            reasons.push(format!("queue near capacity ({deepest}/{capacity})"));
        }
    }
    let body = match health {
        Health::Ok => "ok\n".to_string(),
        h => format!("{}: {}\n", h.name(), reasons.join("; ")),
    };
    (health, body)
}

fn trace_body(trace: &Mutex<TraceCollector>, query: &str) -> String {
    let mut collector = lock_collector(trace);
    collector.drain();
    let mut flow = None;
    let mut slot = None;
    for kv in query.split('&') {
        if let Some(id) = kv.strip_prefix("flow=") {
            flow = u64::from_str_radix(id.trim_start_matches("0x"), 16)
                .or_else(|_| id.parse::<u64>())
                .ok();
        }
        if let Some(s) = kv.strip_prefix("slot=") {
            slot = s.parse::<u32>().ok();
        }
    }
    collector.to_jsonl_filtered(flow, slot)
}

fn journal_body(journal: &Mutex<Journal>, query: &str) -> String {
    let mut j = lock_journal(journal);
    j.drain();
    for kv in query.split('&') {
        if let Some(n) = kv.strip_prefix("tail=") {
            let n = n.parse::<usize>().unwrap_or(100);
            return j.tail_jsonl(n);
        }
        if let Some(id) = kv.strip_prefix("flow=") {
            let flow =
                u64::from_str_radix(id.trim_start_matches("0x"), 16).or_else(|_| id.parse::<u64>());
            return match flow.ok().and_then(|f| j.timeline(f)) {
                Some(tl) => {
                    let mut line = crate::journal::render_line(tl);
                    line.push('\n');
                    line
                }
                None => String::new(),
            };
        }
    }
    j.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::journal::JournalConfig;
    use crate::registry::Registry;

    fn get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_journal() {
        let registry = Arc::new(Registry::new());
        registry.counter("served_total", "requests").add(3);
        let (sink, journal) = Journal::new(JournalConfig::default(), &registry);
        sink.emit(
            0xbeef,
            1_000_000,
            EventKind::LaunchWindowClosed { packets: 12 },
        );
        sink.emit(
            0xbeef,
            2_000_000,
            EventKind::SessionVerdict {
                objective: cgc_domain::QoeLevel::Good,
                effective: cgc_domain::QoeLevel::Good,
            },
        );
        let journal = Arc::new(Mutex::new(journal));
        let reg = Arc::clone(&registry);
        let server =
            TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), Some(journal)).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("# TYPE served_total counter"), "{body}");
        assert!(body.contains("served_total 3"), "{body}");

        let (head, body) = get(addr, "/journal");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body.lines().count(), 1, "one timeline line: {body}");
        assert!(body.contains("\"flow\":\"000000000000beef\""), "{body}");

        let (_, one) = get(addr, "/journal?flow=beef");
        assert!(one.contains("launch_window_closed"), "{one}");
        let (_, tail) = get(addr, "/journal?tail=1");
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("session_verdict"), "{tail}");
        let (_, missing) = get(addr, "/journal?flow=1234");
        assert!(missing.is_empty());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    fn raw_request(addr: std::net::SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    #[test]
    fn malformed_request_lines_get_no_response() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let addr = server.local_addr();
        // Wrong method, missing target, binary garbage: the server drops
        // the connection without answering (and without dying).
        assert_eq!(raw_request(addr, b"POST /metrics HTTP/1.1\r\n\r\n"), "");
        assert_eq!(raw_request(addr, b"GET\r\n\r\n"), "");
        assert_eq!(raw_request(addr, b"\xff\xfe\x00garbage\r\n\r\n"), "");
        assert_eq!(raw_request(addr, b"no newline at all"), "");
        // And it still serves well-formed requests afterwards.
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn oversized_query_strings_are_rejected() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let addr = server.local_addr();
        let huge = format!("GET /metrics?x={} HTTP/1.1\r\n\r\n", "y".repeat(4096));
        assert_eq!(raw_request(addr, huge.as_bytes()), "");
        // A query just inside the request-line budget still answers.
        let ok = format!(
            "GET /healthz?x={} HTTP/1.1\r\nHost: x\r\n\r\n",
            "y".repeat(500)
        );
        assert!(raw_request(addr, ok.as_bytes()).starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn healthz_fallback_wires_drop_and_saturation_counters() {
        use crate::slo::{SloConfig, SloHub};
        // Degraded: a visible but sub-critical cumulative drop ratio.
        let registry = Arc::new(Registry::new());
        registry.counter("cgc_ingest_enqueued_total", "t").add(999);
        registry.counter("cgc_ingest_dropped_total", "t").add(5);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, body) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with("degraded: drop ratio"), "{body}");
        drop(server);

        // Critical: a drop storm answers 503 so external probes trip.
        let registry = Arc::new(Registry::new());
        registry.counter("cgc_ingest_enqueued_total", "t").add(100);
        registry.counter("cgc_ingest_dropped_total", "t").add(50);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, body) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.starts_with("critical:"), "{body}");
        drop(server);

        // Saturated queue gauges trip it too, independent of drops.
        let registry = Arc::new(Registry::new());
        registry.gauge("cgc_ingest_queue_capacity", "c").set(100);
        registry
            .gauge_with("cgc_ingest_queue_depth", "d", &[("shard", "0")])
            .set(95);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, body) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with("degraded: queue near capacity"), "{body}");
        drop(server);

        // An SLO hub takes over: windowed evaluation, not lifetime ratios.
        let registry = Arc::new(Registry::new());
        registry.counter("cgc_ingest_enqueued_total", "t").add(100);
        let reg = Arc::clone(&registry);
        let hub = Arc::new(SloHub::real_time(SloConfig::default()));
        let server = TelemetryServer::spawn_with(
            "127.0.0.1:0",
            move || reg.snapshot(),
            ServeOptions {
                slo: Some(hub),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let (head, body) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, slo) = get(server.local_addr(), "/slo");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(slo.contains("\"status\":\"ok\""), "{slo}");
        assert!(slo.contains("\"objective\":\"drop_ratio\""), "{slo}");
    }

    #[test]
    fn quality_and_drift_routes_serve_live_reports() {
        use crate::drift::{DriftConfig, DriftEngine};
        use crate::quality::{ModelKind, QualityConfig, QualityHub};
        let registry = Arc::new(Registry::new());
        let (qsink, qhub) = QualityHub::new(QualityConfig::default(), &registry);
        let (dsink, dengine) = DriftEngine::new(
            DriftConfig {
                reference_size: 8,
                window: 8,
                min_window: 4,
                ..DriftConfig::default()
            },
            &registry,
        );
        let build = Arc::new(crate::build::BuildInfo::register(&registry));
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn_with(
            "127.0.0.1:0",
            move || reg.snapshot(),
            ServeOptions {
                quality: Some(Arc::new(Mutex::new(qhub))),
                drift: Some(Arc::new(Mutex::new(dengine))),
                build: Some(build),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // Producers emit; the per-request drain makes them visible
        // without any explicit pump.
        for _ in 0..3 {
            qsink.emit(ModelKind::Title, 0, 0);
        }
        qsink.emit(ModelKind::Title, 1, 0);
        for i in 0..16 {
            dsink.observe(ModelKind::Title, 0.9 - 0.01 * (i % 3) as f64, 0.8);
        }
        let (head, body) = get(addr, "/quality");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"model\":\"title\""), "{body}");
        assert!(body.contains("\"accuracy\":0.75"), "{body}");
        let (head, body) = get(addr, "/drift");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"reference_frozen\":true"), "{body}");
        assert!(body.contains("\"alarm\":false"), "{body}");
        // The drained gauges are visible on the very next scrape.
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("cgc_quality_accuracy_pct{model=\"title\"} 75"),
            "{metrics}"
        );
        assert!(
            metrics.contains("cgc_drift_reference_frozen{model=\"title\"} 1"),
            "{metrics}"
        );
        assert!(metrics.contains("cgc_build_info{git="), "{metrics}");
        assert!(metrics.contains("cgc_process_uptime_seconds"), "{metrics}");
        // And the healthz body carries the build line.
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("build "), "{body}");
        drop(server);

        // Without backends the routes 404 with a hint.
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, body) = get(server.local_addr(), "/quality");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(body, "no quality telemetry installed\n");
        let (head, body) = get(server.local_addr(), "/drift");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(body, "no drift engine installed\n");
    }

    #[test]
    fn metrics_scrape_is_openmetrics_well_formed_with_exemplars() {
        let registry = Arc::new(Registry::new());
        registry.counter("cgc_demo_total", "Demo counter").add(7);
        registry
            .gauge_with("cgc_demo_depth", "Demo gauge", &[("shard", "0")])
            .set(2);
        registry
            .histogram("cgc_demo_lat_ns", "Demo latency")
            .record_with_exemplar(100, 0xab, 0xcd);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, body) = get(server.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // Well-formedness of the whole scrape: ends with the EOF marker,
        // nothing after it, and every line is a comment or a sample whose
        // value parses.
        assert!(body.ends_with("# EOF\n"), "{body}");
        for line in body.lines() {
            if line == "# EOF" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "unknown comment: {line}"
                );
                continue;
            }
            assert!(!line.trim().is_empty(), "blank line inside scrape");
            // Sample line: `name{labels} value [# exemplar]`.
            let sample = line.split(" # ").next().unwrap();
            let value = sample.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable sample value in: {line}"
            );
        }
        // Exactly one EOF, at the very end.
        assert_eq!(body.matches("# EOF").count(), 1, "{body}");
    }

    #[test]
    fn trace_route_serves_filtered_spans() {
        use crate::trace::{TraceCollector, TraceConfig, TraceStage};
        let registry = Arc::new(Registry::new());
        let (sink, traces) = TraceCollector::new(TraceConfig::default(), &registry);
        sink.record(0xf00, 0, TraceStage::Queue, 10, 0);
        sink.record(0xf00, 2, TraceStage::Slot, 20, 5);
        sink.record(0xba5, 0, TraceStage::Queue, 15, 0);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn_with(
            "127.0.0.1:0",
            move || reg.snapshot(),
            ServeOptions {
                trace: Some(Arc::new(Mutex::new(traces))),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.lines().count(), 2, "{body}");
        let (_, one) = get(addr, "/trace?flow=f00");
        assert_eq!(one.lines().count(), 1, "{one}");
        assert!(one.contains("\"flow\":\"0000000000000f00\""), "{one}");
        let (_, slot) = get(addr, "/trace?flow=f00&slot=2");
        assert!(slot.contains("\"stage\":\"slot\""), "{slot}");
        assert!(!slot.contains("\"stage\":\"queue\""), "{slot}");
        let (_, missing) = get(addr, "/trace?flow=dead");
        assert!(missing.is_empty(), "{missing}");
    }

    #[test]
    fn trace_route_404s_without_a_collector() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, _) = get(server.local_addr(), "/trace");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = get(server.local_addr(), "/slo");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn concurrent_scrapes_while_producers_drain() {
        use crate::trace::{TraceCollector, TraceConfig, TraceStage};
        const FLOWS: u64 = 40;
        const EVENTS_PER_FLOW: u64 = 5;
        let registry = Arc::new(Registry::new());
        let (esink, journal) = Journal::new(JournalConfig::default(), &registry);
        let (tsink, traces) = TraceCollector::new(TraceConfig::default(), &registry);
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn_with(
            "127.0.0.1:0",
            move || reg.snapshot(),
            ServeOptions {
                journal: Some(Arc::new(Mutex::new(journal))),
                trace: Some(Arc::new(Mutex::new(traces))),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let writers: Vec<_> = [0u64, 1]
            .into_iter()
            .map(|half| {
                let esink = esink.clone();
                let tsink = tsink.clone();
                std::thread::spawn(move || {
                    for flow in (half * FLOWS / 2)..((half + 1) * FLOWS / 2) {
                        for i in 0..EVENTS_PER_FLOW {
                            esink.emit(flow, i, EventKind::LaunchWindowClosed { packets: 1 });
                            tsink.record(flow, 0, TraceStage::Queue, i, 0);
                        }
                    }
                })
            })
            .collect();
        // Scrape both drain routes while the writers are mid-flight: the
        // per-request drains and the producers race on the rings.
        let scrapers: Vec<_> = ["/journal", "/trace"]
            .into_iter()
            .map(|route| {
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        write!(stream, "GET {route} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                        let mut response = String::new();
                        stream.read_to_string(&mut response).unwrap();
                        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for s in scrapers {
            s.join().unwrap();
        }
        // After the writers finish, one more scrape sees every flow —
        // nothing was lost to the concurrent drains.
        let (_, body) = get(addr, "/journal");
        assert_eq!(body.lines().count(), FLOWS as usize, "{body}");
        let (_, body) = get(addr, "/trace");
        assert_eq!(body.lines().count(), FLOWS as usize, "{body}");
    }

    #[test]
    fn journal_route_404s_without_a_journal() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let (head, _) = get(server.local_addr(), "/journal");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let registry = Arc::new(Registry::new());
        let reg = Arc::clone(&registry);
        let server = TelemetryServer::spawn("127.0.0.1:0", move || reg.snapshot(), None).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The port is closed (or at least no longer answering HTTP).
        let answered = TcpStream::connect(addr)
            .ok()
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_millis(200))).ok()?;
                write!(s, "GET /healthz HTTP/1.1\r\n\r\n").ok()?;
                let mut out = String::new();
                s.read_to_string(&mut out).ok()?;
                (!out.is_empty()).then_some(out)
            })
            .is_some();
        assert!(!answered, "server kept answering after drop");
    }
}
