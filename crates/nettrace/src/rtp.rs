//! RTP (RFC 3550) fixed-header codec.
//!
//! Cloud gaming platforms stream rendered video downstream and user input
//! upstream in standard RTP flows (paper §3.2). The pipeline itself only
//! needs sizes and timings, but the pcap round-trip path serializes real RTP
//! headers so that traces written by [`crate::pcap`] are inspectable in
//! Wireshark and so the flow filter can validate the version/payload-type
//! signature the way prior-work detectors do.

use bytes::{Buf, BufMut};

/// Length in bytes of the fixed RTP header (no CSRC entries, no extension).
pub const RTP_HEADER_LEN: usize = 12;

/// RTP protocol version carried in the two high bits of the first octet.
pub const RTP_VERSION: u8 = 2;

/// Dynamic payload type used by GeForce NOW style video streams (96..127
/// range is dynamic; 96 is the conventional H.264/HEVC mapping).
pub const PT_GAME_VIDEO: u8 = 96;

/// Dynamic payload type for the upstream input/control stream.
pub const PT_GAME_INPUT: u8 = 97;

/// A decoded RTP fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpHeader {
    /// Protocol version; always 2 on the wire.
    pub version: u8,
    /// Padding flag.
    pub padding: bool,
    /// Extension flag.
    pub extension: bool,
    /// CSRC count (we emit 0; decoding tolerates up to 15 and skips them).
    pub csrc_count: u8,
    /// Marker bit — set on the final packet of an encoded video frame,
    /// which is how the QoE estimator counts delivered frames.
    pub marker: bool,
    /// Payload type.
    pub payload_type: u8,
    /// Sequence number, increments by one per packet per direction.
    pub sequence: u16,
    /// Media timestamp (90 kHz clock for video).
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
}

/// Errors produced when decoding an RTP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtpError {
    /// Fewer than [`RTP_HEADER_LEN`] (+ CSRC) bytes available.
    Truncated,
    /// First octet does not carry version 2.
    BadVersion(u8),
}

impl std::fmt::Display for RtpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtpError::Truncated => write!(f, "RTP header truncated"),
            RtpError::BadVersion(v) => write!(f, "unsupported RTP version {v}"),
        }
    }
}

impl std::error::Error for RtpError {}

impl RtpHeader {
    /// A downstream game-video header with the given dynamic fields.
    pub fn video(sequence: u16, timestamp: u32, ssrc: u32, marker: bool) -> Self {
        RtpHeader {
            version: RTP_VERSION,
            padding: false,
            extension: false,
            csrc_count: 0,
            marker,
            payload_type: PT_GAME_VIDEO,
            sequence,
            timestamp,
            ssrc,
        }
    }

    /// An upstream input-stream header.
    pub fn input(sequence: u16, timestamp: u32, ssrc: u32) -> Self {
        RtpHeader {
            payload_type: PT_GAME_INPUT,
            ..RtpHeader::video(sequence, timestamp, ssrc, false)
        }
    }

    /// Serialized length including CSRC entries.
    pub fn encoded_len(&self) -> usize {
        RTP_HEADER_LEN + 4 * self.csrc_count as usize
    }

    /// Writes the header into `buf` (network byte order).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let b0 = (self.version << 6)
            | ((self.padding as u8) << 5)
            | ((self.extension as u8) << 4)
            | (self.csrc_count & 0x0f);
        let b1 = ((self.marker as u8) << 7) | (self.payload_type & 0x7f);
        buf.put_u8(b0);
        buf.put_u8(b1);
        buf.put_u16(self.sequence);
        buf.put_u32(self.timestamp);
        buf.put_u32(self.ssrc);
        for _ in 0..self.csrc_count {
            buf.put_u32(0);
        }
    }

    /// Parses a header from the start of `buf`, returning it together with
    /// the number of bytes consumed (header + CSRC list).
    pub fn decode(mut buf: &[u8]) -> Result<(Self, usize), RtpError> {
        if buf.len() < RTP_HEADER_LEN {
            return Err(RtpError::Truncated);
        }
        let b0 = buf.get_u8();
        let version = b0 >> 6;
        if version != RTP_VERSION {
            return Err(RtpError::BadVersion(version));
        }
        let padding = b0 & 0x20 != 0;
        let extension = b0 & 0x10 != 0;
        let csrc_count = b0 & 0x0f;
        let b1 = buf.get_u8();
        let marker = b1 & 0x80 != 0;
        let payload_type = b1 & 0x7f;
        let sequence = buf.get_u16();
        let timestamp = buf.get_u32();
        let ssrc = buf.get_u32();
        let consumed = RTP_HEADER_LEN + 4 * csrc_count as usize;
        if buf.remaining() < 4 * csrc_count as usize {
            return Err(RtpError::Truncated);
        }
        Ok((
            RtpHeader {
                version,
                padding,
                extension,
                csrc_count,
                marker,
                payload_type,
                sequence,
                timestamp,
                ssrc,
            },
            consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let h = RtpHeader::video(4242, 0xdead_beef, 0x1234_5678, true);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), RTP_HEADER_LEN);
        let (d, used) = RtpHeader::decode(&buf).unwrap();
        assert_eq!(used, RTP_HEADER_LEN);
        assert_eq!(d, h);
    }

    #[test]
    fn input_header_uses_input_payload_type() {
        let h = RtpHeader::input(7, 100, 42);
        assert_eq!(h.payload_type, PT_GAME_INPUT);
        assert!(!h.marker);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(RtpHeader::decode(&[0x80; 5]), Err(RtpError::Truncated));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut buf = Vec::new();
        RtpHeader::video(1, 2, 3, false).encode(&mut buf);
        buf[0] = 0x40 | (buf[0] & 0x3f); // version 1
        assert_eq!(RtpHeader::decode(&buf), Err(RtpError::BadVersion(1)));
    }

    #[test]
    fn decode_skips_csrc_entries() {
        let h = RtpHeader {
            csrc_count: 2,
            ..RtpHeader::video(9, 9, 9, false)
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), RTP_HEADER_LEN + 8);
        let (d, used) = RtpHeader::decode(&buf).unwrap();
        assert_eq!(used, RTP_HEADER_LEN + 8);
        assert_eq!(d.csrc_count, 2);
    }

    #[test]
    fn truncated_csrc_list_is_an_error() {
        let h = RtpHeader {
            csrc_count: 3,
            ..RtpHeader::video(9, 9, 9, false)
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.truncate(RTP_HEADER_LEN + 4); // only one of three CSRCs present
        assert_eq!(RtpHeader::decode(&buf), Err(RtpError::Truncated));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any header round-trips bit-exactly through encode/decode.
        #[test]
        fn header_roundtrips(
            marker in any::<bool>(),
            payload_type in 0u8..128,
            sequence in any::<u16>(),
            timestamp in any::<u32>(),
            ssrc in any::<u32>(),
            csrc_count in 0u8..16,
        ) {
            let h = RtpHeader {
                version: RTP_VERSION,
                padding: false,
                extension: false,
                csrc_count,
                marker,
                payload_type,
                sequence,
                timestamp,
                ssrc,
            };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            prop_assert_eq!(buf.len(), h.encoded_len());
            let (d, used) = RtpHeader::decode(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(d, h);
        }

        /// Arbitrary bytes never panic the decoder; short inputs are
        /// rejected cleanly.
        #[test]
        fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let _ = RtpHeader::decode(&bytes);
            if bytes.len() < RTP_HEADER_LEN {
                prop_assert!(RtpHeader::decode(&bytes).is_err());
            }
        }
    }
}
