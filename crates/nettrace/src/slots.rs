//! Fixed-width time-slot aggregation.
//!
//! Every attribute in the paper is computed per time slot: launch-stage
//! packet-group attributes per `T`-second slot (§4.2.2) and volumetric
//! attributes per `I`-second slot (§4.3.1). [`SlotSeries`] partitions a
//! packet sequence into such slots relative to the flow's first packet and
//! exposes per-slot views without copying payload data.

use crate::packet::{Direction, Packet};
use crate::units::Micros;

/// A borrowed view of the packets that fell into one time slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    /// Slot index (0-based from the series origin).
    pub index: usize,
    /// Slot start time (inclusive), microseconds.
    pub start: Micros,
    /// Slot width, microseconds.
    pub width: Micros,
    /// Packets whose timestamp lies in `[start, start + width)`.
    pub packets: &'a [Packet],
}

impl<'a> SlotView<'a> {
    /// Packet count in this slot, optionally filtered by direction.
    pub fn count(&self, dir: Option<Direction>) -> usize {
        match dir {
            None => self.packets.len(),
            Some(d) => self.packets.iter().filter(|p| p.dir == d).count(),
        }
    }

    /// Sum of wire bytes in this slot for a direction.
    pub fn wire_bytes(&self, dir: Direction) -> u64 {
        self.packets
            .iter()
            .filter(|p| p.dir == dir)
            .map(|p| u64::from(p.wire_len()))
            .sum()
    }
}

/// Packets partitioned into fixed-width slots.
///
/// Construction sorts indices by timestamp (traces from the impairment
/// channel may be mildly reordered) but keeps the packet storage shared.
#[derive(Debug, Clone)]
pub struct SlotSeries {
    packets: Vec<Packet>,
    /// `bounds[i]..bounds[i+1]` indexes the packets of slot `i`.
    bounds: Vec<usize>,
    origin: Micros,
    width: Micros,
}

impl SlotSeries {
    /// Partitions `packets` into slots of `width` microseconds starting at
    /// `origin`. Packets earlier than `origin` are discarded (they belong to
    /// a previous measurement window). `width` must be non-zero.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(mut packets: Vec<Packet>, origin: Micros, width: Micros) -> Self {
        assert!(width > 0, "slot width must be positive");
        packets.retain(|p| p.ts >= origin);
        packets.sort_by_key(|p| p.ts);
        let n_slots = packets
            .last()
            .map(|p| ((p.ts - origin) / width) as usize + 1)
            .unwrap_or(0);
        let mut bounds = Vec::with_capacity(n_slots + 1);
        bounds.push(0);
        let mut idx = 0usize;
        for slot in 0..n_slots {
            let end_ts = origin + (slot as u64 + 1) * width;
            while idx < packets.len() && packets[idx].ts < end_ts {
                idx += 1;
            }
            bounds.push(idx);
        }
        SlotSeries {
            packets,
            bounds,
            origin,
            width,
        }
    }

    /// Convenience constructor anchored at the first packet's timestamp
    /// (how the pipeline anchors slots at flow start).
    pub fn anchored(packets: Vec<Packet>, width: Micros) -> Self {
        let origin = packets.iter().map(|p| p.ts).min().unwrap_or(0);
        Self::new(packets, origin, width)
    }

    /// Number of slots (0 when the series is empty).
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// True when no packets were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot width in microseconds.
    pub fn width(&self) -> Micros {
        self.width
    }

    /// Series origin timestamp.
    pub fn origin(&self) -> Micros {
        self.origin
    }

    /// The view of slot `i`, or `None` past the end.
    pub fn slot(&self, i: usize) -> Option<SlotView<'_>> {
        if i + 1 >= self.bounds.len() {
            return None;
        }
        Some(SlotView {
            index: i,
            start: self.origin + i as u64 * self.width,
            width: self.width,
            packets: &self.packets[self.bounds[i]..self.bounds[i + 1]],
        })
    }

    /// Iterates over all slots in order, including empty ones.
    pub fn iter(&self) -> impl Iterator<Item = SlotView<'_>> {
        (0..self.len()).map(move |i| self.slot(i).expect("index in range"))
    }

    /// All packets in timestamp order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MICROS_PER_SEC;

    fn pkt(ts: Micros, dir: Direction, len: u32) -> Packet {
        Packet::new(ts, dir, len)
    }

    #[test]
    fn partitions_into_expected_slots() {
        let s = SlotSeries::new(
            vec![
                pkt(0, Direction::Downstream, 100),
                pkt(900_000, Direction::Downstream, 100),
                pkt(1_000_000, Direction::Downstream, 100),
                pkt(2_500_000, Direction::Upstream, 50),
            ],
            0,
            MICROS_PER_SEC,
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.slot(0).unwrap().count(None), 2);
        assert_eq!(s.slot(1).unwrap().count(None), 1);
        assert_eq!(s.slot(2).unwrap().count(Some(Direction::Upstream)), 1);
        assert!(s.slot(3).is_none());
    }

    #[test]
    fn slot_boundaries_are_half_open() {
        // ts == slot end belongs to the next slot.
        let s = SlotSeries::new(
            vec![pkt(1_000_000, Direction::Downstream, 1)],
            0,
            MICROS_PER_SEC,
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.slot(0).unwrap().count(None), 0);
        assert_eq!(s.slot(1).unwrap().count(None), 1);
    }

    #[test]
    fn empty_series() {
        let s = SlotSeries::new(vec![], 0, MICROS_PER_SEC);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = SlotSeries::new(
            vec![
                pkt(2_000_000, Direction::Downstream, 1),
                pkt(0, Direction::Downstream, 1),
            ],
            0,
            MICROS_PER_SEC,
        );
        assert_eq!(s.packets()[0].ts, 0);
        assert_eq!(s.len(), 3);
        // Middle slot exists and is empty.
        assert_eq!(s.slot(1).unwrap().count(None), 0);
    }

    #[test]
    fn packets_before_origin_are_dropped() {
        let s = SlotSeries::new(
            vec![
                pkt(100, Direction::Downstream, 1),
                pkt(5_000_000, Direction::Downstream, 1),
            ],
            1_000_000,
            MICROS_PER_SEC,
        );
        assert_eq!(s.packets().len(), 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn anchored_uses_first_packet() {
        let s = SlotSeries::anchored(
            vec![
                pkt(7_300_000, Direction::Downstream, 1),
                pkt(7_400_000, Direction::Downstream, 1),
            ],
            MICROS_PER_SEC,
        );
        assert_eq!(s.origin(), 7_300_000);
        assert_eq!(s.len(), 1);
        assert_eq!(s.slot(0).unwrap().count(None), 2);
    }

    #[test]
    fn wire_bytes_per_direction() {
        let s = SlotSeries::new(
            vec![
                pkt(0, Direction::Downstream, 100),
                pkt(1, Direction::Upstream, 10),
            ],
            0,
            MICROS_PER_SEC,
        );
        let v = s.slot(0).unwrap();
        assert_eq!(v.wire_bytes(Direction::Downstream), 154);
        assert_eq!(v.wire_bytes(Direction::Upstream), 64);
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_width_panics() {
        let _ = SlotSeries::new(vec![], 0, 0);
    }
}
