//! Trace-layer telemetry: packets observed, RTP parse outcomes, pcap
//! record decode results.
//!
//! Handles live in `cgc-obs`; this module registers the nettrace series
//! once and caches the process-wide set so hot paths (`FlowStats::
//! update`, pcap frame decode) pay a single relaxed atomic increment.

use cgc_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

/// Counters for the packet/RTP parse layer.
#[derive(Debug, Clone)]
pub struct TraceMetrics {
    /// Packets folded into flow statistics (`cgc_trace_packets_total`).
    pub packets: Arc<Counter>,
    /// UDP payloads that parsed as RTP (`cgc_trace_rtp_parsed_total`).
    pub rtp_parsed: Arc<Counter>,
    /// UDP payloads that failed RTP decode
    /// (`cgc_trace_rtp_malformed_total`).
    pub rtp_malformed: Arc<Counter>,
    /// Capture records decoded from pcap files
    /// (`cgc_trace_pcap_records_total`).
    pub pcap_records: Arc<Counter>,
    /// Capture frames skipped as non-IPv4/UDP
    /// (`cgc_trace_pcap_skipped_total`).
    pub pcap_skipped: Arc<Counter>,
}

impl TraceMetrics {
    /// Register (or look up) the trace-layer series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            packets: registry.counter(
                "cgc_trace_packets_total",
                "Packets folded into per-flow statistics",
            ),
            rtp_parsed: registry.counter(
                "cgc_trace_rtp_parsed_total",
                "UDP payloads successfully parsed as RTP",
            ),
            rtp_malformed: registry.counter(
                "cgc_trace_rtp_malformed_total",
                "UDP payloads that failed RTP header decode",
            ),
            pcap_records: registry.counter(
                "cgc_trace_pcap_records_total",
                "IPv4/UDP capture records decoded from pcap input",
            ),
            pcap_skipped: registry.counter(
                "cgc_trace_pcap_skipped_total",
                "Capture frames skipped as non-IPv4/UDP or truncated",
            ),
        }
    }

    /// The set registered against [`Registry::global`].
    pub fn global() -> &'static TraceMetrics {
        static GLOBAL: OnceLock<TraceMetrics> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceMetrics::register(Registry::global()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let r = Registry::new();
        let a = TraceMetrics::register(&r);
        let b = TraceMetrics::register(&r);
        a.packets.inc();
        b.packets.inc();
        assert_eq!(a.packets.get(), 2);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn global_handles_are_stable() {
        let a = TraceMetrics::global();
        let b = TraceMetrics::global();
        assert!(Arc::ptr_eq(&a.packets, &b.packets));
    }
}
