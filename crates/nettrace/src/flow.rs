//! Flow bookkeeping: five-tuple keyed, per-direction volumetric counters.
//!
//! An ISP-side monitor keeps a flow table keyed by normalized five-tuple.
//! [`FlowStats`] accumulates exactly the volumetric quantities the paper's
//! stage classifier consumes (packets and bytes per direction) plus the
//! metadata the cloud-gaming filter inspects (ports, mean downstream packet
//! size, packet-rate signature).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::packet::{Direction, FiveTuple, Packet};
use crate::units::{bytes_to_mbps, Micros};

/// Normalized five-tuple used as a flow-table key.
pub type FlowKey = FiveTuple;

/// Per-flow accumulated statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Downstream packet count.
    pub down_pkts: u64,
    /// Upstream packet count.
    pub up_pkts: u64,
    /// Downstream wire bytes (headers included).
    pub down_bytes: u64,
    /// Upstream wire bytes.
    pub up_bytes: u64,
    /// Timestamp of the first observed packet.
    pub first_ts: Option<Micros>,
    /// Timestamp of the most recent packet.
    pub last_ts: Option<Micros>,
    /// Largest downstream payload seen — the "full packet" size candidate.
    pub max_down_payload: u32,
}

impl FlowStats {
    /// Folds one packet into the counters.
    pub fn update(&mut self, pkt: &Packet) {
        crate::metrics::TraceMetrics::global().packets.inc();
        match pkt.dir {
            Direction::Downstream => {
                self.down_pkts += 1;
                self.down_bytes += u64::from(pkt.wire_len());
                self.max_down_payload = self.max_down_payload.max(pkt.payload_len);
            }
            Direction::Upstream => {
                self.up_pkts += 1;
                self.up_bytes += u64::from(pkt.wire_len());
            }
        }
        if self.first_ts.is_none() {
            self.first_ts = Some(pkt.ts);
        }
        self.last_ts = Some(self.last_ts.map_or(pkt.ts, |t| t.max(pkt.ts)));
    }

    /// Flow lifetime in microseconds (0 before two packets arrive).
    pub fn duration(&self) -> Micros {
        match (self.first_ts, self.last_ts) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        }
    }

    /// Average downstream throughput over the flow lifetime, in Mbps.
    pub fn down_mbps(&self) -> f64 {
        bytes_to_mbps(self.down_bytes, self.duration())
    }

    /// Average upstream throughput over the flow lifetime, in Mbps.
    pub fn up_mbps(&self) -> f64 {
        bytes_to_mbps(self.up_bytes, self.duration())
    }

    /// Average downstream packet rate over the flow lifetime, in pkts/s.
    pub fn down_pps(&self) -> f64 {
        let d = self.duration();
        if d == 0 {
            0.0
        } else {
            self.down_pkts as f64 / (d as f64 / 1e6)
        }
    }

    /// Total packets in both directions.
    pub fn total_pkts(&self) -> u64 {
        self.down_pkts + self.up_pkts
    }
}

/// A flow table mapping normalized five-tuples to accumulated statistics.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowStats>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet observed on `tuple` (any orientation).
    pub fn observe(&mut self, tuple: &FiveTuple, pkt: &Packet) {
        self.flows
            .entry(tuple.normalized())
            .or_default()
            .update(pkt);
    }

    /// Looks up a flow by tuple (any orientation).
    pub fn get(&self, tuple: &FiveTuple) -> Option<&FlowStats> {
        self.flows.get(&tuple.normalized())
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterates over `(key, stats)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &FlowStats)> {
        self.flows.iter()
    }

    /// Removes flows idle since before `cutoff` (standard monitor eviction),
    /// returning how many were evicted.
    pub fn evict_idle(&mut self, cutoff: Micros) -> usize {
        let before = self.flows.len();
        self.flows
            .retain(|_, s| s.last_ts.is_some_and(|t| t >= cutoff));
        before - self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::WIRE_OVERHEAD;

    fn tuple() -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, 1], 49003, [192, 168, 1, 5], 50123)
    }

    #[test]
    fn update_accumulates_both_directions() {
        let mut s = FlowStats::default();
        s.update(&Packet::new(0, Direction::Downstream, 1432));
        s.update(&Packet::new(1_000_000, Direction::Upstream, 60));
        assert_eq!(s.down_pkts, 1);
        assert_eq!(s.up_pkts, 1);
        assert_eq!(s.down_bytes, (1432 + WIRE_OVERHEAD) as u64);
        assert_eq!(s.max_down_payload, 1432);
        assert_eq!(s.duration(), 1_000_000);
    }

    #[test]
    fn throughput_rates() {
        let mut s = FlowStats::default();
        // 1000 packets of 946-byte payload over exactly one second:
        // 1000 * (946+54) bytes = 1 MB -> 8 Mbps.
        for i in 0..1000u64 {
            s.update(&Packet::new(i * 1001, Direction::Downstream, 946));
        }
        s.update(&Packet::new(1_000_000, Direction::Upstream, 0));
        assert!((s.down_mbps() - 8.0).abs() < 0.01);
        assert!((s.down_pps() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn single_packet_flow_has_zero_rates() {
        let mut s = FlowStats::default();
        s.update(&Packet::new(5, Direction::Downstream, 100));
        assert_eq!(s.duration(), 0);
        assert_eq!(s.down_mbps(), 0.0);
        assert_eq!(s.down_pps(), 0.0);
    }

    #[test]
    fn table_merges_directions_under_one_key() {
        let mut table = FlowTable::new();
        table.observe(&tuple(), &Packet::new(0, Direction::Downstream, 1432));
        table.observe(
            &tuple().reversed(),
            &Packet::new(10, Direction::Upstream, 60),
        );
        assert_eq!(table.len(), 1);
        let s = table.get(&tuple()).unwrap();
        assert_eq!(s.total_pkts(), 2);
    }

    #[test]
    fn eviction_drops_idle_flows() {
        let mut table = FlowTable::new();
        table.observe(&tuple(), &Packet::new(0, Direction::Downstream, 100));
        let other = FiveTuple::udp_v4([10, 0, 0, 2], 1, [192, 168, 1, 5], 2);
        table.observe(&other, &Packet::new(10_000_000, Direction::Downstream, 100));
        assert_eq!(table.evict_idle(5_000_000), 1);
        assert_eq!(table.len(), 1);
        assert!(table.get(&tuple()).is_none());
        assert!(table.get(&other).is_some());
    }

    #[test]
    fn empty_table() {
        let table = FlowTable::new();
        assert!(table.is_empty());
        assert_eq!(table.iter().count(), 0);
    }
}
