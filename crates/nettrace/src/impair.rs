//! Network impairment channel for fault injection.
//!
//! The paper's parameters (N, T, V, I, α) were tuned on clean lab traffic
//! and §4.4.1 notes that degraded networks shift them; the deployment also
//! needs genuinely bad sessions to exercise QoE labeling. This module
//! applies configurable delay, jitter, random/bursty loss and token-bucket
//! rate limiting to a packet sequence — the same fault-injection knobs the
//! smoltcp example harness exposes (`--drop-chance`, `--tx-rate-limit`, …).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;
use crate::units::{Micros, MICROS_PER_SEC};

/// Packet loss model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Independent (Bernoulli) loss with the given probability.
    Iid {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss: in the *good* state packets
    /// pass, in the *bad* state they drop with probability `p_bad`.
    Burst {
        /// Probability of moving good → bad per packet.
        p_enter: f64,
        /// Probability of moving bad → good per packet.
        p_exit: f64,
        /// Drop probability while in the bad state.
        p_bad: f64,
    },
}

/// Configuration of the impairment channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentConfig {
    /// Fixed one-way delay added to every packet, microseconds.
    pub base_delay: Micros,
    /// Maximum additional uniform jitter per packet, microseconds.
    /// Jitter may reorder packets (consumers sort by timestamp).
    pub jitter: Micros,
    /// Loss model.
    pub loss: LossModel,
    /// Optional downstream rate cap in bytes/second enforced with a token
    /// bucket of one second's depth; non-conforming packets are dropped
    /// (models a congested access link starving the stream).
    pub rate_limit_bytes_per_sec: Option<u64>,
    /// RNG seed so impaired traces are reproducible.
    pub seed: u64,
}

impl Default for ImpairmentConfig {
    fn default() -> Self {
        ImpairmentConfig {
            base_delay: 0,
            jitter: 0,
            loss: LossModel::None,
            rate_limit_bytes_per_sec: None,
            seed: 0,
        }
    }
}

impl ImpairmentConfig {
    /// A clean channel (identity transform).
    pub fn clean() -> Self {
        Self::default()
    }

    /// A "poor network" preset used by the deployment simulator: high
    /// delay/jitter, bursty loss, and a rate cap well below cloud-gaming
    /// demand — the kind of session the observability platform should flag
    /// as genuinely degraded.
    pub fn poor_network(seed: u64) -> Self {
        ImpairmentConfig {
            base_delay: 70_000, // 70 ms: the paper's "large game streaming lag" marker
            jitter: 25_000,
            loss: LossModel::Burst {
                p_enter: 0.02,
                p_exit: 0.3,
                p_bad: 0.5,
            },
            rate_limit_bytes_per_sec: Some(600_000), // ~4.8 Mbps, below the 8 Mbps bad-QoE bar
            seed,
        }
    }
}

/// Stateful impairment channel.
#[derive(Debug)]
pub struct Impairment {
    cfg: ImpairmentConfig,
    rng: StdRng,
    in_bad_state: bool,
    bucket_tokens: f64,
    bucket_last_ts: Option<Micros>,
}

impl Impairment {
    /// Builds a channel from a configuration.
    pub fn new(cfg: ImpairmentConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let depth = cfg.rate_limit_bytes_per_sec.unwrap_or(0) as f64;
        Impairment {
            cfg,
            rng,
            in_bad_state: false,
            bucket_tokens: depth,
            bucket_last_ts: None,
        }
    }

    /// Applies the channel to one packet; `None` means dropped.
    pub fn apply(&mut self, pkt: &Packet) -> Option<Packet> {
        if self.lost() {
            return None;
        }
        if let Some(rate) = self.cfg.rate_limit_bytes_per_sec {
            if !self.conforms(pkt, rate) {
                return None;
            }
        }
        let mut out = *pkt;
        let jitter = if self.cfg.jitter > 0 {
            self.rng.gen_range(0..=self.cfg.jitter)
        } else {
            0
        };
        out.ts = out.ts.saturating_add(self.cfg.base_delay + jitter);
        Some(out)
    }

    /// Applies the channel to a whole trace, preserving arrival order of
    /// survivors (timestamps may be non-monotonic under jitter).
    pub fn apply_all(&mut self, packets: &[Packet]) -> Vec<Packet> {
        packets.iter().filter_map(|p| self.apply(p)).collect()
    }

    fn lost(&mut self) -> bool {
        match self.cfg.loss {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::Burst {
                p_enter,
                p_exit,
                p_bad,
            } => {
                if self.in_bad_state {
                    if self.rng.gen_bool(p_exit.clamp(0.0, 1.0)) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.gen_bool(p_enter.clamp(0.0, 1.0)) {
                    self.in_bad_state = true;
                }
                self.in_bad_state && self.rng.gen_bool(p_bad.clamp(0.0, 1.0))
            }
        }
    }

    fn conforms(&mut self, pkt: &Packet, rate: u64) -> bool {
        let depth = rate as f64; // one second of burst
        if let Some(last) = self.bucket_last_ts {
            let elapsed = pkt.ts.saturating_sub(last) as f64 / MICROS_PER_SEC as f64;
            self.bucket_tokens = (self.bucket_tokens + elapsed * rate as f64).min(depth);
        }
        self.bucket_last_ts = Some(pkt.ts);
        let need = f64::from(pkt.wire_len());
        if self.bucket_tokens >= need {
            self.bucket_tokens -= need;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Direction;

    fn trace(n: u64, gap_us: u64, len: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i * gap_us, Direction::Downstream, len))
            .collect()
    }

    #[test]
    fn clean_channel_is_identity() {
        let pkts = trace(100, 1000, 1432);
        let mut ch = Impairment::new(ImpairmentConfig::clean());
        assert_eq!(ch.apply_all(&pkts), pkts);
    }

    #[test]
    fn base_delay_shifts_timestamps() {
        let pkts = trace(10, 1000, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            base_delay: 5_000,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        assert!(out.iter().zip(&pkts).all(|(o, p)| o.ts == p.ts + 5_000));
    }

    #[test]
    fn iid_loss_drops_roughly_p() {
        let pkts = trace(20_000, 100, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            loss: LossModel::Iid { p: 0.2 },
            seed: 7,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        let loss = 1.0 - out.len() as f64 / pkts.len() as f64;
        assert!((loss - 0.2).abs() < 0.02, "observed loss {loss}");
    }

    #[test]
    fn burst_loss_produces_runs() {
        let pkts = trace(50_000, 100, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            loss: LossModel::Burst {
                p_enter: 0.01,
                p_exit: 0.2,
                p_bad: 1.0,
            },
            seed: 3,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        assert!(out.len() < pkts.len());
        // Bursty loss should produce at least one gap of >= 3 consecutive
        // drops, which iid loss at the same average rate rarely does.
        let surviving: std::collections::HashSet<Micros> = out.iter().map(|p| p.ts).collect();
        let mut max_run = 0;
        let mut run = 0;
        for p in &pkts {
            if surviving.contains(&p.ts) {
                run = 0;
            } else {
                run += 1;
                max_run = max_run.max(run);
            }
        }
        assert!(max_run >= 3, "max drop run {max_run}");
    }

    #[test]
    fn rate_limit_caps_throughput() {
        // 100 Mbps offered, 1 MB/s (8 Mbps) cap over 10 seconds.
        let pkts = trace(100_000, 100, 1196); // 1250 B wire @ 10k pps = 100 Mbps
        let mut ch = Impairment::new(ImpairmentConfig {
            rate_limit_bytes_per_sec: Some(1_000_000),
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        let bytes: u64 = out.iter().map(|p| u64::from(p.wire_len())).sum();
        let dur_s = 10.0;
        let rate = bytes as f64 / dur_s;
        assert!(rate <= 1_100_000.0, "rate {rate} exceeds cap");
        assert!(rate >= 800_000.0, "rate {rate} far below cap");
    }

    #[test]
    fn jitter_stays_within_bound_and_is_reproducible() {
        let pkts = trace(1000, 1000, 100);
        let cfg = ImpairmentConfig {
            jitter: 2_000,
            seed: 11,
            ..Default::default()
        };
        let out1 = Impairment::new(cfg.clone()).apply_all(&pkts);
        let out2 = Impairment::new(cfg).apply_all(&pkts);
        assert_eq!(out1, out2);
        assert!(out1
            .iter()
            .zip(&pkts)
            .all(|(o, p)| o.ts >= p.ts && o.ts <= p.ts + 2_000));
    }

    #[test]
    fn poor_network_preset_degrades_badly() {
        let pkts = trace(50_000, 100, 1196); // 100 Mbps offered over 5 s
        let mut ch = Impairment::new(ImpairmentConfig::poor_network(1));
        let out = ch.apply_all(&pkts);
        // Must lose a lot of traffic and delay the rest.
        assert!(out.len() < pkts.len() / 2);
        assert!(out[0].ts >= 70_000);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::packet::Direction;
    use proptest::prelude::*;

    proptest! {
        /// The channel never invents packets, never reorders the surviving
        /// subsequence, and delays by at least the base delay.
        #[test]
        fn channel_is_a_lossy_delaying_subsequence(
            n in 1usize..400,
            gap in 100u64..5_000,
            base_delay in 0u64..50_000,
            jitter in 0u64..5_000,
            p in 0.0f64..0.9,
            seed in any::<u64>(),
        ) {
            let pkts: Vec<Packet> = (0..n as u64)
                .map(|i| Packet::new(i * gap, Direction::Downstream, 500))
                .collect();
            let mut ch = Impairment::new(ImpairmentConfig {
                base_delay,
                jitter,
                loss: LossModel::Iid { p },
                rate_limit_bytes_per_sec: None,
                seed,
            });
            let out = ch.apply_all(&pkts);
            prop_assert!(out.len() <= pkts.len());
            for o in &out {
                // Each survivor maps to an input shifted by [base, base+jitter].
                let orig = (o.ts - base_delay).saturating_sub(jitter);
                prop_assert!(pkts.iter().any(|p| p.ts >= orig && p.ts + base_delay <= o.ts));
                prop_assert!(o.ts >= base_delay);
            }
        }

        /// A rate limit is never exceeded over the whole trace (beyond the
        /// one-second bucket depth).
        #[test]
        fn rate_limit_holds_globally(
            rate in 10_000u64..1_000_000,
            n in 10usize..500,
            seed in any::<u64>(),
        ) {
            let pkts: Vec<Packet> = (0..n as u64)
                .map(|i| Packet::new(i * 1_000, Direction::Downstream, 1432))
                .collect();
            let mut ch = Impairment::new(ImpairmentConfig {
                rate_limit_bytes_per_sec: Some(rate),
                seed,
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            let bytes: u64 = out.iter().map(|p| u64::from(p.wire_len())).sum();
            let duration_s = (pkts.last().unwrap().ts as f64 / 1e6).max(1e-6);
            // Allowance: the initial bucket depth (1 s of tokens).
            prop_assert!(bytes as f64 <= rate as f64 * duration_s + rate as f64 + 1500.0);
        }
    }
}
