//! Adversarial network-condition engine for fault injection.
//!
//! The paper's parameters (N, T, V, I, α) were tuned on clean lab traffic
//! and §4.4.1 notes that degraded networks shift them; the deployment also
//! needs genuinely bad sessions to exercise QoE labeling. Real access links
//! are not uniform-noise channels: loss is bursty (Gilbert–Elliott), jitter
//! is correlated packet to packet (an AR(1) or spike process, not iid
//! uniform), congestion shows up as *queueing delay* long before it shows up
//! as drops (bufferbloat), and capacity varies over a session (cellular
//! handovers, evening congestion, flash crowds).
//!
//! This module models all four:
//!
//! * [`LossModel`] — iid and two-state Gilbert–Elliott burst loss, with the
//!   stationary closed form exposed as
//!   [`expected_loss_rate`](LossModel::expected_loss_rate).
//! * [`JitterModel`] / [`JitterProcess`] — uniform (legacy), AR(1)
//!   (autocorrelated Gaussian) and two-state calm/spike jitter.
//! * [`Bottleneck`] + [`CapacitySchedule`] — a FIFO bottleneck link with a
//!   deep buffer: rate shortfall becomes growing queueing delay first and
//!   tail drops only once the configured sojourn limit is exceeded, driven
//!   by a piecewise-constant capacity trace (ramps, mid-session drops,
//!   flash-crowd dips).
//! * [`ImpairmentProfile`] — a named, versioned catalog of end-to-end
//!   presets (`clean`, `dsl-bloated`, `lossy-wifi`, `lte-handover`,
//!   `congested-evening`) that the deployment simulator and the
//!   `fleet --impair <profile>` CLI select by name.
//!
//! The legacy knobs (uniform jitter, token-bucket rate cap) are preserved
//! unchanged for backward compatibility — the same fault-injection spirit as
//! the smoltcp example harness (`--drop-chance`, `--tx-rate-limit`, …).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;
use crate::units::{Micros, MICROS_PER_SEC};
use crate::vol::VolSeries;

/// Packet loss model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Independent (Bernoulli) loss with the given probability.
    Iid {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss: in the *good* state packets
    /// pass, in the *bad* state they drop with probability `p_bad`.
    Burst {
        /// Probability of moving good → bad per packet.
        p_enter: f64,
        /// Probability of moving bad → good per packet.
        p_exit: f64,
        /// Drop probability while in the bad state.
        p_bad: f64,
    },
}

impl LossModel {
    /// Long-run expected loss rate of the model.
    ///
    /// For [`LossModel::Burst`] this is the Gilbert–Elliott closed form:
    /// the chain's stationary bad-state probability
    /// `p_enter / (p_enter + p_exit)` times `p_bad`.
    ///
    /// ```
    /// use nettrace::impair::LossModel;
    /// let ge = LossModel::Burst { p_enter: 0.02, p_exit: 0.3, p_bad: 0.5 };
    /// let expect = 0.02 / (0.02 + 0.3) * 0.5;
    /// assert!((ge.expected_loss_rate() - expect).abs() < 1e-12);
    /// assert_eq!(LossModel::None.expected_loss_rate(), 0.0);
    /// ```
    pub fn expected_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p.clamp(0.0, 1.0),
            LossModel::Burst {
                p_enter,
                p_exit,
                p_bad,
            } => {
                let p_enter = p_enter.clamp(0.0, 1.0);
                let p_exit = p_exit.clamp(0.0, 1.0);
                if p_enter + p_exit <= 0.0 {
                    return 0.0;
                }
                p_enter / (p_enter + p_exit) * p_bad.clamp(0.0, 1.0)
            }
        }
    }
}

/// Per-packet jitter model.
///
/// Real access-network jitter is correlated: a delayed packet is usually
/// followed by another delayed packet (queue drain, radio retransmission
/// bursts). [`JitterModel::Uniform`] reproduces the legacy iid behavior;
/// the other two model correlation explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum JitterModel {
    /// No jitter.
    #[default]
    None,
    /// Legacy iid uniform jitter in `[0, max]` microseconds.
    Uniform {
        /// Maximum per-packet jitter, microseconds.
        max: Micros,
    },
    /// First-order autoregressive Gaussian jitter: the latent state evolves
    /// as `x' = rho·x + sqrt(1 − rho²)·sigma·z` with `z ~ N(0, 1)`, so the
    /// stationary distribution is `N(0, sigma²)` and the lag-1
    /// autocorrelation is `rho`. The emitted delay is `max(0, 2·sigma + x)`
    /// — centered two standard deviations above zero so ~98% of samples are
    /// positive and clamping barely distorts the process.
    Ar1 {
        /// Stationary standard deviation, microseconds.
        sigma: Micros,
        /// Lag-1 autocorrelation in `[0, 1)`.
        rho: f64,
    },
    /// Two-state Markov jitter: *calm* emits uniform `[0, calm]`, *spike*
    /// emits uniform `[spike/2, spike]` (radio handover / Wi-Fi contention
    /// bursts). State transitions happen once per packet.
    TwoState {
        /// Calm-state maximum jitter, microseconds.
        calm: Micros,
        /// Spike-state maximum jitter, microseconds.
        spike: Micros,
        /// Probability of moving calm → spike per packet.
        p_spike: f64,
        /// Probability of moving spike → calm per packet.
        p_calm: f64,
    },
}

/// Stateful sampler for a [`JitterModel`].
///
/// Kept public so tests and simulators can drive the process directly:
///
/// ```
/// use nettrace::impair::{JitterModel, JitterProcess};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut jp = JitterProcess::new(JitterModel::Ar1 { sigma: 5_000, rho: 0.9 });
/// let (a, b) = (jp.next_jitter(&mut rng), jp.next_jitter(&mut rng));
/// // Samples are non-negative delays near the 2σ = 10 ms center.
/// assert!(a < 50_000 && b < 50_000);
/// ```
#[derive(Debug, Clone)]
pub struct JitterProcess {
    model: JitterModel,
    /// AR(1) latent state, microseconds.
    ar1_state: f64,
    /// Cached second Gaussian from the polar transform.
    spare: Option<f64>,
    /// Two-state model: currently in the spike state.
    in_spike: bool,
}

impl JitterProcess {
    /// Builds a sampler in its stationary start state (AR(1) at 0, two-state
    /// in calm).
    pub fn new(model: JitterModel) -> Self {
        JitterProcess {
            model,
            ar1_state: 0.0,
            spare: None,
            in_spike: false,
        }
    }

    /// Standard Gaussian via the Marsaglia polar method (the rand shim has
    /// no normal distribution).
    fn gauss<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * m);
                return u * m;
            }
        }
    }

    /// Draws the next per-packet jitter, microseconds.
    pub fn next_jitter<R: Rng>(&mut self, rng: &mut R) -> Micros {
        match self.model {
            JitterModel::None => 0,
            JitterModel::Uniform { max } => {
                if max > 0 {
                    rng.gen_range(0..=max)
                } else {
                    0
                }
            }
            JitterModel::Ar1 { sigma, rho } => {
                let sigma = sigma as f64;
                let rho = rho.clamp(0.0, 0.999_999);
                let z = self.gauss(rng);
                self.ar1_state = rho * self.ar1_state + (1.0 - rho * rho).sqrt() * sigma * z;
                (2.0 * sigma + self.ar1_state).max(0.0) as Micros
            }
            JitterModel::TwoState {
                calm,
                spike,
                p_spike,
                p_calm,
            } => {
                if self.in_spike {
                    if rng.gen_bool(p_calm.clamp(0.0, 1.0)) {
                        self.in_spike = false;
                    }
                } else if rng.gen_bool(p_spike.clamp(0.0, 1.0)) {
                    self.in_spike = true;
                }
                if self.in_spike {
                    let lo = spike / 2;
                    if spike > lo {
                        rng.gen_range(lo..=spike)
                    } else {
                        spike
                    }
                } else if calm > 0 {
                    rng.gen_range(0..=calm)
                } else {
                    0
                }
            }
        }
    }
}

/// Piecewise-constant bottleneck capacity over session time.
///
/// Segment starts are microsecond-exact: a segment's rate applies from its
/// start timestamp (inclusive) until the next segment's start.
///
/// ```
/// use nettrace::impair::CapacitySchedule;
///
/// // 2 MB/s for the first second, then a mid-session drop to 500 kB/s.
/// let sched = CapacitySchedule::steps(vec![(0, 2_000_000), (1_000_000, 500_000)]);
/// assert_eq!(sched.rate_at(999_999), 2_000_000);
/// assert_eq!(sched.rate_at(1_000_000), 500_000);
///
/// // Builders cover the common shapes.
/// let ramp = CapacitySchedule::ramp(1_000_000, 250_000, 0, 4_000_000, 4);
/// assert_eq!(ramp.rate_at(0), 1_000_000);
/// assert!(ramp.rate_at(3_999_999) < ramp.rate_at(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitySchedule {
    /// `(start_us, bytes_per_sec)`, sorted by start, first entry at 0.
    segments: Vec<(Micros, u64)>,
}

impl CapacitySchedule {
    /// Constant capacity for the whole session.
    pub fn constant(bytes_per_sec: u64) -> Self {
        CapacitySchedule {
            segments: vec![(0, bytes_per_sec)],
        }
    }

    /// Builds from explicit `(start_us, bytes_per_sec)` steps. Steps are
    /// sorted by start; a step at 0 is prepended (repeating the first rate)
    /// if missing so `rate_at` is total.
    pub fn steps(mut steps: Vec<(Micros, u64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one segment");
        steps.sort_by_key(|&(t, _)| t);
        if steps[0].0 != 0 {
            let first_rate = steps[0].1;
            steps.insert(0, (0, first_rate));
        }
        CapacitySchedule { segments: steps }
    }

    /// Cellular-like linear ramp from `from` to `to` bytes/sec over
    /// `[start, start + duration)`, quantized into `steps` equal segments.
    pub fn ramp(from: u64, to: u64, start: Micros, duration: Micros, steps: u32) -> Self {
        let steps = steps.max(1);
        let mut segs = Vec::with_capacity(steps as usize + 1);
        if start > 0 {
            segs.push((0, from));
        }
        for i in 0..steps {
            let t = start + duration * u64::from(i) / u64::from(steps);
            let frac = if steps > 1 {
                f64::from(i) / f64::from(steps - 1)
            } else {
                1.0
            };
            let rate = from as f64 + (to as f64 - from as f64) * frac;
            segs.push((t, rate.max(0.0) as u64));
        }
        Self::steps(segs)
    }

    /// Mid-session degradation: `before` bytes/sec until `onset`, `after`
    /// from then on (a handover to a congested cell, say).
    pub fn degrade_at(before: u64, after: u64, onset: Micros) -> Self {
        Self::steps(vec![(0, before), (onset, after)])
    }

    /// Flash-crowd dip: `base` capacity with a dip to `floor` over
    /// `[onset, onset + dip_len)`.
    pub fn dip(base: u64, floor: u64, onset: Micros, dip_len: Micros) -> Self {
        Self::steps(vec![(0, base), (onset, floor), (onset + dip_len, base)])
    }

    /// Diurnal-style schedule from 24 hourly weights (higher weight = more
    /// competing traffic = less residual capacity). Hour `h`'s capacity is
    /// `base · min_weight / weight[h]`, with `hour_len` microseconds per
    /// hour — compressible so a simulated day fits in a short session.
    pub fn from_hourly_weights(base: u64, weights: &[f64; 24], hour_len: Micros) -> Self {
        let min_w = weights
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        let segs = weights
            .iter()
            .enumerate()
            .map(|(h, &w)| {
                let rate = base as f64 * (min_w / w.max(1e-9));
                (h as u64 * hour_len, rate as u64)
            })
            .collect();
        Self::steps(segs)
    }

    /// Capacity in effect at `ts` (microseconds from session start).
    pub fn rate_at(&self, ts: Micros) -> u64 {
        match self.segments.binary_search_by_key(&ts, |&(t, _)| t) {
            Ok(i) => self.segments[i].1,
            Err(0) => self.segments[0].1,
            Err(i) => self.segments[i - 1].1,
        }
    }

    /// Returns a copy with every segment's rate scaled by `factor`
    /// (clamped non-negative). Used to compose a profile with an external
    /// schedule window, e.g. the fleet's diurnal arrival model.
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.max(0.0);
        CapacitySchedule {
            segments: self
                .segments
                .iter()
                .map(|&(t, r)| (t, (r as f64 * f) as u64))
                .collect(),
        }
    }

    /// The underlying `(start_us, bytes_per_sec)` segments.
    pub fn segments(&self) -> &[(Micros, u64)] {
        &self.segments
    }
}

/// A FIFO bottleneck link with a deep buffer (bufferbloat).
///
/// Packets are served in order at the scheduled capacity; when the offered
/// load exceeds capacity the queue grows and each packet's departure is
/// pushed out by the backlog ahead of it — *queueing delay*, not loss. Only
/// when a packet's would-be sojourn time exceeds `queue_limit` is it
/// tail-dropped, which is how real CPE buffers behave.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Link capacity over time.
    pub capacity: CapacitySchedule,
    /// Maximum queueing delay before tail drop, microseconds.
    pub queue_limit: Micros,
}

/// Configuration of the impairment channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentConfig {
    /// Fixed one-way delay added to every packet, microseconds.
    pub base_delay: Micros,
    /// Maximum additional uniform jitter per packet, microseconds (legacy
    /// knob; ignored when [`jitter_model`](Self::jitter_model) is set).
    /// Jitter may reorder packets (consumers sort by timestamp).
    pub jitter: Micros,
    /// Correlated jitter model. [`JitterModel::None`] falls back to the
    /// legacy uniform `jitter` field.
    pub jitter_model: JitterModel,
    /// Loss model.
    pub loss: LossModel,
    /// Optional downstream rate cap in bytes/second enforced with a token
    /// bucket of one second's depth; non-conforming packets are dropped
    /// (models a policer that starves the stream without buffering).
    pub rate_limit_bytes_per_sec: Option<u64>,
    /// Optional bufferbloat-style bottleneck: rate shortfall becomes
    /// queueing delay first, tail drops only past
    /// [`Bottleneck::queue_limit`].
    pub bottleneck: Option<Bottleneck>,
    /// RNG seed so impaired traces are reproducible.
    pub seed: u64,
}

impl Default for ImpairmentConfig {
    fn default() -> Self {
        ImpairmentConfig {
            base_delay: 0,
            jitter: 0,
            jitter_model: JitterModel::None,
            loss: LossModel::None,
            rate_limit_bytes_per_sec: None,
            bottleneck: None,
            seed: 0,
        }
    }
}

impl ImpairmentConfig {
    /// A clean channel (identity transform).
    pub fn clean() -> Self {
        Self::default()
    }

    /// A "poor network" preset used by the deployment simulator: high
    /// delay/jitter, bursty loss, and a rate cap well below cloud-gaming
    /// demand — the kind of session the observability platform should flag
    /// as genuinely degraded.
    pub fn poor_network(seed: u64) -> Self {
        ImpairmentConfig {
            base_delay: 70_000, // 70 ms: the paper's "large game streaming lag" marker
            jitter: 25_000,
            loss: LossModel::Burst {
                p_enter: 0.02,
                p_exit: 0.3,
                p_bad: 0.5,
            },
            rate_limit_bytes_per_sec: Some(600_000), // ~4.8 Mbps, below the 8 Mbps bad-QoE bar
            seed,
            ..Default::default()
        }
    }

    /// The jitter model actually in effect: `jitter_model` if set, else the
    /// legacy uniform `jitter` field.
    pub fn effective_jitter_model(&self) -> JitterModel {
        match self.jitter_model {
            JitterModel::None if self.jitter > 0 => JitterModel::Uniform { max: self.jitter },
            m => m,
        }
    }
}

/// Stateful impairment channel.
#[derive(Debug)]
pub struct Impairment {
    cfg: ImpairmentConfig,
    rng: StdRng,
    in_bad_state: bool,
    bucket_tokens: f64,
    bucket_last_ts: Option<Micros>,
    jitter: JitterProcess,
    /// Bottleneck FIFO: timestamp at which the link finishes serving
    /// everything currently queued.
    busy_until: Micros,
}

impl Impairment {
    /// Builds a channel from a configuration.
    pub fn new(cfg: ImpairmentConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let depth = cfg.rate_limit_bytes_per_sec.unwrap_or(0) as f64;
        let jitter = JitterProcess::new(cfg.effective_jitter_model());
        Impairment {
            cfg,
            rng,
            in_bad_state: false,
            bucket_tokens: depth,
            bucket_last_ts: None,
            jitter,
            busy_until: 0,
        }
    }

    /// Applies the channel to one packet; `None` means dropped.
    ///
    /// Order of effects: random loss → token-bucket policer → bottleneck
    /// FIFO (queueing delay or tail drop) → propagation delay + jitter.
    pub fn apply(&mut self, pkt: &Packet) -> Option<Packet> {
        if self.lost() {
            return None;
        }
        if let Some(rate) = self.cfg.rate_limit_bytes_per_sec {
            if !self.conforms(pkt, rate) {
                return None;
            }
        }
        let mut ts = pkt.ts;
        if let Some(b) = &self.cfg.bottleneck {
            let serv_start = ts.max(self.busy_until);
            let qdelay = serv_start - ts;
            if qdelay > b.queue_limit {
                return None; // tail drop: buffer is full
            }
            let rate = b.capacity.rate_at(serv_start);
            if rate == 0 {
                return None; // zero-capacity window (outage)
            }
            let serv_us = (u64::from(pkt.wire_len()) * MICROS_PER_SEC).div_ceil(rate);
            self.busy_until = serv_start + serv_us;
            ts = self.busy_until;
        }
        let jitter = self.jitter.next_jitter(&mut self.rng);
        let mut out = *pkt;
        out.ts = ts.saturating_add(self.cfg.base_delay + jitter);
        Some(out)
    }

    /// Applies the channel to a whole trace, preserving arrival order of
    /// survivors (timestamps may be non-monotonic under jitter).
    pub fn apply_all(&mut self, packets: &[Packet]) -> Vec<Packet> {
        packets.iter().filter_map(|p| self.apply(p)).collect()
    }

    /// Degrades a volumetric series in place, starting at `from` (relative
    /// to the series origin; pass 0 to degrade the whole session).
    ///
    /// Slot throughput is capped to the bottleneck capacity (or the policer
    /// rate) in effect at the slot's start, and packet/byte counts are
    /// thinned by the loss model's expected rate. This is the coarse-grained
    /// twin of [`apply_all`](Self::apply_all) for pipelines that observe the
    /// 100 ms volumetric series rather than individual packets.
    pub fn degrade_vol(&mut self, vol: &mut VolSeries, from: Micros) {
        let width = vol.width.max(1);
        let loss = self.cfg.loss.expected_loss_rate().clamp(0.0, 1.0);
        for (i, s) in vol.samples.iter_mut().enumerate() {
            let t = i as u64 * width;
            if t + width <= from {
                continue;
            }
            let cap_rate = match (&self.cfg.bottleneck, self.cfg.rate_limit_bytes_per_sec) {
                (Some(b), Some(r)) => Some(b.capacity.rate_at(t).min(r)),
                (Some(b), None) => Some(b.capacity.rate_at(t)),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            };
            let keep = 1.0 - loss;
            let mut bytes = s.down_bytes as f64 * keep;
            let mut pkts = s.down_pkts as f64 * keep;
            if let Some(rate) = cap_rate {
                let cap_bytes = rate as f64 * width as f64 / MICROS_PER_SEC as f64;
                if bytes > cap_bytes && bytes > 0.0 {
                    pkts *= cap_bytes / bytes;
                    bytes = cap_bytes;
                }
            }
            s.down_bytes = bytes.round() as u64;
            s.down_pkts = (pkts.round() as u64).max(u64::from(s.down_bytes > 0));
        }
    }
}

impl Impairment {
    fn lost(&mut self) -> bool {
        match self.cfg.loss {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::Burst {
                p_enter,
                p_exit,
                p_bad,
            } => {
                if self.in_bad_state {
                    if self.rng.gen_bool(p_exit.clamp(0.0, 1.0)) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.gen_bool(p_enter.clamp(0.0, 1.0)) {
                    self.in_bad_state = true;
                }
                self.in_bad_state && self.rng.gen_bool(p_bad.clamp(0.0, 1.0))
            }
        }
    }

    fn conforms(&mut self, pkt: &Packet, rate: u64) -> bool {
        let depth = rate as f64; // one second of burst
        if let Some(last) = self.bucket_last_ts {
            let elapsed = pkt.ts.saturating_sub(last) as f64 / MICROS_PER_SEC as f64;
            self.bucket_tokens = (self.bucket_tokens + elapsed * rate as f64).min(depth);
        }
        self.bucket_last_ts = Some(pkt.ts);
        let need = f64::from(pkt.wire_len());
        if self.bucket_tokens >= need {
            self.bucket_tokens -= need;
            true
        } else {
            false
        }
    }
}

/// How an [`ImpairmentProfile`] builds its capacity trace for a session of
/// known duration.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CapacityShape {
    /// No bottleneck.
    Unlimited,
    /// Constant capacity (bytes/sec) for the whole session.
    Flat(u64),
    /// `before` until the degradation onset, `after` from then on.
    DegradeAt {
        /// Capacity before onset, bytes/sec.
        before: u64,
        /// Capacity after onset, bytes/sec.
        after: u64,
    },
    /// Linear ramp from `from` down to `to` starting at the onset and
    /// finishing at session end.
    RampDown {
        /// Capacity at the onset, bytes/sec.
        from: u64,
        /// Capacity at session end, bytes/sec.
        to: u64,
    },
}

/// A named, versioned end-to-end impairment preset.
///
/// Profiles bundle channel knobs (delay, jitter, loss, capacity shape) with
/// the gray-box QoE symptoms a measurement platform would observe on such a
/// link (latency band, delivered-frame-rate ratio), so the deployment
/// simulator can synthesize consistent sessions. Select one by name:
///
/// ```
/// use nettrace::impair::ImpairmentProfile;
///
/// let p = ImpairmentProfile::by_name("lte-handover").unwrap();
/// assert_eq!(p.version, 1);
/// let plan = p.instantiate(42, 60_000_000); // 60 s session
/// assert!(plan.onset.is_some(), "handover degrades mid-session");
/// assert!(ImpairmentProfile::by_name("carrier-pigeon").is_none());
/// assert!(ImpairmentProfile::ALL.len() >= 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentProfile {
    /// Stable selector used by `fleet --impair <name>` and metric labels.
    pub name: &'static str,
    /// Catalog version; bump when a profile's knobs change so committed
    /// regime matrices stay attributable.
    pub version: u32,
    /// One-line description of the network this models.
    pub summary: &'static str,
    /// Nominal severity rank (0 = clean). Documentation only — the measured
    /// regime matrix is the ground truth for ordering.
    pub severity: u8,
    /// Fixed one-way delay, microseconds.
    pub base_delay: Micros,
    /// Correlated jitter model.
    pub jitter: JitterModel,
    /// Loss model.
    pub loss: LossModel,
    /// Bottleneck queue sojourn limit, microseconds (used when the shape
    /// has a bottleneck).
    pub queue_limit: Micros,
    /// Capacity trace shape.
    shape: CapacityShape,
    /// Degradation onset as a fraction range of session duration; `None`
    /// means the profile applies from the first packet.
    pub onset_frac: Option<(f64, f64)>,
    /// Measured-latency band under this profile, milliseconds (gray-box QoE
    /// input for the deployment simulator).
    pub latency_ms: (f64, f64),
    /// Delivered/expected frame-rate ratio band under this profile.
    pub delivered_fps_ratio: (f64, f64),
    /// Scale the capacity trace by the fleet's diurnal congestion factor
    /// (evening arrivals see the least residual capacity).
    pub diurnal: bool,
}

/// A profile instantiated for one concrete session: the channel config plus
/// the degradation onset (microseconds from session start, if mid-session).
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairmentPlan {
    /// Channel configuration for [`Impairment::new`].
    pub config: ImpairmentConfig,
    /// Degradation onset relative to session start, if not from the start.
    pub onset: Option<Micros>,
}

impl ImpairmentProfile {
    /// The profile catalog, mildest first.
    pub const ALL: [ImpairmentProfile; 5] = [
        ImpairmentProfile {
            name: "clean",
            version: 1,
            summary: "well-provisioned fiber access link; identity channel",
            severity: 0,
            base_delay: 0,
            jitter: JitterModel::None,
            loss: LossModel::None,
            queue_limit: 0,
            shape: CapacityShape::Unlimited,
            onset_frac: None,
            latency_ms: (10.0, 25.0),
            // A well-provisioned link delivers every frame: anything below
            // 1.0 would nudge 30/45-fps sessions across the objective
            // frame-rate bars and make `clean` measurably different from
            // the unimpaired baseline.
            delivered_fps_ratio: (1.0, 1.0),
            diurnal: false,
        },
        ImpairmentProfile {
            name: "dsl-bloated",
            version: 1,
            summary: "DSL with a deep CPE buffer: queueing delay, little loss",
            severity: 1,
            base_delay: 15_000,
            jitter: JitterModel::Ar1 {
                sigma: 4_000,
                rho: 0.95,
            },
            loss: LossModel::Iid { p: 0.002 },
            queue_limit: 250_000, // 250 ms of bloat before tail drop
            shape: CapacityShape::Flat(1_200_000), // ~9.6 Mbps
            onset_frac: None,
            latency_ms: (55.0, 110.0),
            delivered_fps_ratio: (0.72, 0.9),
            diurnal: false,
        },
        ImpairmentProfile {
            name: "lossy-wifi",
            version: 1,
            summary: "contended 2.4 GHz Wi-Fi: burst loss and spike jitter, no cap",
            severity: 2,
            base_delay: 10_000,
            jitter: JitterModel::TwoState {
                calm: 3_000,
                spike: 30_000,
                p_spike: 0.05,
                p_calm: 0.3,
            },
            loss: LossModel::Burst {
                p_enter: 0.04,
                p_exit: 0.25,
                p_bad: 0.7,
            },
            queue_limit: 0,
            shape: CapacityShape::Unlimited,
            onset_frac: None,
            latency_ms: (40.0, 90.0),
            delivered_fps_ratio: (0.55, 0.78),
            diurnal: false,
        },
        ImpairmentProfile {
            name: "lte-handover",
            version: 1,
            summary: "cellular link that hands over to a congested cell mid-session",
            severity: 3,
            base_delay: 35_000,
            jitter: JitterModel::TwoState {
                calm: 8_000,
                spike: 60_000,
                p_spike: 0.08,
                p_calm: 0.2,
            },
            loss: LossModel::Burst {
                p_enter: 0.03,
                p_exit: 0.2,
                p_bad: 0.6,
            },
            queue_limit: 150_000,
            shape: CapacityShape::DegradeAt {
                before: 2_000_000,
                after: 350_000, // ~2.8 Mbps after handover
            },
            onset_frac: Some((0.3, 0.6)),
            latency_ms: (70.0, 140.0),
            delivered_fps_ratio: (0.38, 0.6),
            diurnal: false,
        },
        ImpairmentProfile {
            name: "congested-evening",
            version: 1,
            summary: "shared access segment under evening peak: capacity ramps down, heavy bloat",
            severity: 4,
            base_delay: 45_000,
            jitter: JitterModel::Ar1 {
                sigma: 10_000,
                rho: 0.9,
            },
            loss: LossModel::Iid { p: 0.01 },
            queue_limit: 400_000, // deeply bloated shared CMTS buffer
            shape: CapacityShape::RampDown {
                from: 1_500_000,
                to: 280_000,
            },
            onset_frac: Some((0.1, 0.3)),
            latency_ms: (90.0, 180.0),
            delivered_fps_ratio: (0.28, 0.5),
            diurnal: true,
        },
    ];

    /// Looks a profile up by its stable name.
    pub fn by_name(name: &str) -> Option<ImpairmentProfile> {
        Self::ALL.into_iter().find(|p| p.name == name)
    }

    /// Whether the profile degrades traffic at all (`clean` does not).
    pub fn is_degrading(&self) -> bool {
        self.severity > 0
    }

    /// Long-run expected packet loss rate of the profile's loss model.
    pub fn expected_loss_rate(&self) -> f64 {
        self.loss.expected_loss_rate()
    }

    /// Instantiates the profile for a session of `duration` microseconds,
    /// producing the channel config and the sampled degradation onset.
    /// Deterministic in `(seed, duration)`.
    pub fn instantiate(&self, seed: u64, duration: Micros) -> ImpairmentPlan {
        // Separate RNG stream: the onset draw must not perturb the packet
        // channel's draw sequence.
        let mut rng = StdRng::seed_from_u64(seed ^ ONSET_SALT);
        let onset = self.onset_frac.map(|(lo, hi)| {
            let frac = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            (duration as f64 * frac) as Micros
        });
        let capacity = match self.shape {
            CapacityShape::Unlimited => None,
            CapacityShape::Flat(rate) => Some(CapacitySchedule::constant(rate)),
            CapacityShape::DegradeAt { before, after } => Some(CapacitySchedule::degrade_at(
                before,
                after,
                onset.unwrap_or(duration / 2),
            )),
            CapacityShape::RampDown { from, to } => {
                let start = onset.unwrap_or(0);
                Some(CapacitySchedule::ramp(
                    from,
                    to,
                    start,
                    duration.saturating_sub(start).max(1),
                    6,
                ))
            }
        };
        let config = ImpairmentConfig {
            base_delay: self.base_delay,
            jitter: 0,
            jitter_model: self.jitter,
            loss: self.loss,
            rate_limit_bytes_per_sec: None,
            bottleneck: capacity.map(|c| Bottleneck {
                capacity: c,
                queue_limit: self.queue_limit,
            }),
            seed,
        };
        ImpairmentPlan { config, onset }
    }
}

/// Salt for the onset RNG stream (kept out of the packet-channel stream).
const ONSET_SALT: u64 = 0x6f6e_7365_745f_7573; // "onset_us"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Direction;

    fn trace(n: u64, gap_us: u64, len: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i * gap_us, Direction::Downstream, len))
            .collect()
    }

    #[test]
    fn clean_channel_is_identity() {
        let pkts = trace(100, 1000, 1432);
        let mut ch = Impairment::new(ImpairmentConfig::clean());
        assert_eq!(ch.apply_all(&pkts), pkts);
    }

    #[test]
    fn base_delay_shifts_timestamps() {
        let pkts = trace(10, 1000, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            base_delay: 5_000,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        assert!(out.iter().zip(&pkts).all(|(o, p)| o.ts == p.ts + 5_000));
    }

    #[test]
    fn iid_loss_drops_roughly_p() {
        let pkts = trace(20_000, 100, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            loss: LossModel::Iid { p: 0.2 },
            seed: 7,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        let loss = 1.0 - out.len() as f64 / pkts.len() as f64;
        assert!((loss - 0.2).abs() < 0.02, "observed loss {loss}");
    }

    #[test]
    fn burst_loss_produces_runs() {
        let pkts = trace(50_000, 100, 100);
        let mut ch = Impairment::new(ImpairmentConfig {
            loss: LossModel::Burst {
                p_enter: 0.01,
                p_exit: 0.2,
                p_bad: 1.0,
            },
            seed: 3,
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        assert!(out.len() < pkts.len());
        // Bursty loss should produce at least one gap of >= 3 consecutive
        // drops, which iid loss at the same average rate rarely does.
        let surviving: std::collections::HashSet<Micros> = out.iter().map(|p| p.ts).collect();
        let mut max_run = 0;
        let mut run = 0;
        for p in &pkts {
            if surviving.contains(&p.ts) {
                run = 0;
            } else {
                run += 1;
                max_run = max_run.max(run);
            }
        }
        assert!(max_run >= 3, "max drop run {max_run}");
    }

    #[test]
    fn gilbert_elliott_matches_stationary_closed_form() {
        // Long-run loss must track p_enter/(p_enter+p_exit) · p_bad.
        for (p_enter, p_exit, p_bad, seed) in [
            (0.02, 0.3, 0.5, 1u64),
            (0.04, 0.25, 0.7, 2),
            (0.1, 0.1, 1.0, 3),
        ] {
            let model = LossModel::Burst {
                p_enter,
                p_exit,
                p_bad,
            };
            let pkts = trace(200_000, 100, 100);
            let mut ch = Impairment::new(ImpairmentConfig {
                loss: model,
                seed,
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            let observed = 1.0 - out.len() as f64 / pkts.len() as f64;
            let expected = model.expected_loss_rate();
            assert!(
                (observed - expected).abs() < expected * 0.1 + 0.002,
                "GE({p_enter},{p_exit},{p_bad}): observed {observed:.4} vs closed form {expected:.4}"
            );
        }
    }

    #[test]
    fn rate_limit_caps_throughput() {
        // 100 Mbps offered, 1 MB/s (8 Mbps) cap over 10 seconds.
        let pkts = trace(100_000, 100, 1196); // 1250 B wire @ 10k pps = 100 Mbps
        let mut ch = Impairment::new(ImpairmentConfig {
            rate_limit_bytes_per_sec: Some(1_000_000),
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        let bytes: u64 = out.iter().map(|p| u64::from(p.wire_len())).sum();
        let dur_s = 10.0;
        let rate = bytes as f64 / dur_s;
        assert!(rate <= 1_100_000.0, "rate {rate} exceeds cap");
        assert!(rate >= 800_000.0, "rate {rate} far below cap");
    }

    #[test]
    fn jitter_stays_within_bound_and_is_reproducible() {
        let pkts = trace(1000, 1000, 100);
        let cfg = ImpairmentConfig {
            jitter: 2_000,
            seed: 11,
            ..Default::default()
        };
        let out1 = Impairment::new(cfg.clone()).apply_all(&pkts);
        let out2 = Impairment::new(cfg).apply_all(&pkts);
        assert_eq!(out1, out2);
        assert!(out1
            .iter()
            .zip(&pkts)
            .all(|(o, p)| o.ts >= p.ts && o.ts <= p.ts + 2_000));
    }

    /// Lag-1 autocorrelation of a series.
    fn autocorr(xs: &[f64]) -> f64 {
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        if var == 0.0 {
            return 0.0;
        }
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        cov / var
    }

    #[test]
    fn ar1_jitter_is_autocorrelated_iid_is_not() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ar1 = JitterProcess::new(JitterModel::Ar1 {
            sigma: 5_000,
            rho: 0.9,
        });
        let xs: Vec<f64> = (0..20_000)
            .map(|_| ar1.next_jitter(&mut rng) as f64)
            .collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut iid = JitterProcess::new(JitterModel::Uniform { max: 10_000 });
        let ys: Vec<f64> = (0..20_000)
            .map(|_| iid.next_jitter(&mut rng2) as f64)
            .collect();
        let (ar1_r, iid_r) = (autocorr(&xs), autocorr(&ys));
        assert!(ar1_r > 0.6, "AR(1) lag-1 autocorr {ar1_r}, want > 0.6");
        assert!(iid_r.abs() < 0.1, "iid lag-1 autocorr {iid_r}, want ≈ 0");
        assert!(ar1_r > iid_r + 0.5, "AR(1) must beat iid baseline");
    }

    #[test]
    fn two_state_jitter_produces_spike_episodes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut jp = JitterProcess::new(JitterModel::TwoState {
            calm: 2_000,
            spike: 50_000,
            p_spike: 0.05,
            p_calm: 0.3,
        });
        let xs: Vec<Micros> = (0..20_000).map(|_| jp.next_jitter(&mut rng)).collect();
        let spikes = xs.iter().filter(|&&x| x >= 25_000).count();
        // Stationary spike share ≈ 0.05/(0.05+0.3) ≈ 14%.
        let share = spikes as f64 / xs.len() as f64;
        assert!((0.08..0.22).contains(&share), "spike share {share}");
        // Spikes cluster: at least one run of 3+ consecutive spike samples.
        let mut run = 0;
        let mut max_run = 0;
        for &x in &xs {
            if x >= 25_000 {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 3, "max spike run {max_run}");
    }

    #[test]
    fn bufferbloat_queue_delay_is_monotone_in_offered_load() {
        // Offered load 1 MB/s; caps from 2× down to ¼×. Queue delay must
        // grow as the shortfall grows (and be ~0 when capacity exceeds load).
        let pkts = trace(5_000, 1_000, 972); // 1000 B wire @ 1000 pps = 1 MB/s
        let mut last_mean = -1.0;
        for cap in [2_000_000u64, 1_000_000, 500_000, 250_000] {
            let mut ch = Impairment::new(ImpairmentConfig {
                bottleneck: Some(Bottleneck {
                    capacity: CapacitySchedule::constant(cap),
                    queue_limit: u64::MAX, // no tail drop: pure bloat
                }),
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            assert_eq!(out.len(), pkts.len(), "no drops with unlimited queue");
            let mean_delay = out
                .iter()
                .zip(&pkts)
                .map(|(o, p)| (o.ts - p.ts) as f64)
                .sum::<f64>()
                / out.len() as f64;
            assert!(
                mean_delay >= last_mean,
                "cap {cap}: mean queue delay {mean_delay} not monotone (prev {last_mean})"
            );
            last_mean = mean_delay;
        }
        // At ¼ capacity the queue must have built seconds of delay.
        assert!(
            last_mean > 500_000.0,
            "expected heavy bloat, got {last_mean}"
        );
    }

    #[test]
    fn bufferbloat_tail_drops_once_sojourn_limit_exceeded() {
        let pkts = trace(5_000, 1_000, 972); // 1 MB/s offered
        let mut ch = Impairment::new(ImpairmentConfig {
            bottleneck: Some(Bottleneck {
                capacity: CapacitySchedule::constant(250_000), // 4× shortfall
                queue_limit: 100_000,                          // 100 ms buffer
            }),
            ..Default::default()
        });
        let out = ch.apply_all(&pkts);
        assert!(out.len() < pkts.len(), "overload must tail-drop");
        // Survivors never exceed queue_limit + one service time of delay.
        let max_delay = out
            .iter()
            .filter_map(|o| {
                pkts.iter()
                    .rev()
                    .find(|p| p.ts <= o.ts)
                    .map(|p| o.ts - p.ts)
            })
            .max()
            .unwrap_or(0);
        // Sojourn cap (100 ms) + one packet's service time (4 ms) + slack.
        assert!(max_delay <= 110_000, "max survivor delay {max_delay}");
    }

    #[test]
    fn capacity_schedule_boundaries_are_microsecond_exact() {
        let sched = CapacitySchedule::steps(vec![(0, 1_000_000), (2_500_000, 300_000)]);
        assert_eq!(sched.rate_at(0), 1_000_000);
        assert_eq!(sched.rate_at(2_499_999), 1_000_000);
        assert_eq!(sched.rate_at(2_500_000), 300_000);
        assert_eq!(sched.rate_at(u64::MAX), 300_000);

        let dip = CapacitySchedule::dip(800_000, 100_000, 1_000_000, 500_000);
        assert_eq!(dip.rate_at(999_999), 800_000);
        assert_eq!(dip.rate_at(1_000_000), 100_000);
        assert_eq!(dip.rate_at(1_499_999), 100_000);
        assert_eq!(dip.rate_at(1_500_000), 800_000);

        let hourly = CapacitySchedule::from_hourly_weights(1_000_000, &[1.0; 24], MICROS_PER_SEC);
        assert_eq!(hourly.segments().len(), 24);
        assert_eq!(hourly.rate_at(0), 1_000_000);

        let scaled = sched.scaled(0.5);
        assert_eq!(scaled.rate_at(0), 500_000);
        assert_eq!(scaled.rate_at(2_500_000), 150_000);
    }

    #[test]
    fn degrade_vol_caps_slots_and_respects_onset() {
        use crate::vol::VolSample;
        let width = 100_000; // 100 ms slots
        let samples: Vec<VolSample> = (0..50)
            .map(|_| VolSample {
                down_bytes: 200_000, // 2 MB/s offered
                down_pkts: 160,
                up_bytes: 2_000,
                up_pkts: 20,
            })
            .collect();
        let mut vol = VolSeries {
            width,
            origin: 0,
            samples,
        };
        let mut ch = Impairment::new(ImpairmentConfig {
            loss: LossModel::Iid { p: 0.1 },
            bottleneck: Some(Bottleneck {
                capacity: CapacitySchedule::constant(500_000),
                queue_limit: 200_000,
            }),
            ..Default::default()
        });
        let onset = 2_000_000; // slots 0..20 untouched
        ch.degrade_vol(&mut vol, onset);
        for (i, s) in vol.samples.iter().enumerate() {
            if (i as u64 + 1) * width <= onset {
                assert_eq!(s.down_bytes, 200_000, "slot {i} before onset modified");
            } else {
                // 500 kB/s cap over 100 ms = 50 kB per slot.
                assert!(
                    s.down_bytes <= 50_000,
                    "slot {i} exceeds cap: {}",
                    s.down_bytes
                );
                assert!(s.down_pkts < 160, "slot {i} packets not thinned");
                assert_eq!(s.up_bytes, 2_000, "upstream must be untouched");
            }
        }
    }

    #[test]
    fn profiles_resolve_by_name_and_instantiate_deterministically() {
        assert!(ImpairmentProfile::ALL.len() >= 5);
        for p in ImpairmentProfile::ALL {
            assert_eq!(ImpairmentProfile::by_name(p.name), Some(p));
            assert!(p.version >= 1);
            let a = p.instantiate(1234, 90_000_000);
            let b = p.instantiate(1234, 90_000_000);
            assert_eq!(a, b, "{}: instantiate must be deterministic", p.name);
            if let Some(onset) = a.onset {
                assert!(onset < 90_000_000, "{}: onset inside session", p.name);
                let (lo, hi) = p.onset_frac.unwrap();
                let frac = onset as f64 / 90_000_000.0;
                assert!(
                    frac >= lo - 1e-9 && frac <= hi + 1e-9,
                    "{}: onset frac {frac}",
                    p.name
                );
            }
        }
        assert!(ImpairmentProfile::by_name("nope").is_none());
        let clean = ImpairmentProfile::by_name("clean").unwrap();
        assert!(!clean.is_degrading());
        assert_eq!(
            clean.instantiate(7, 1_000_000).config,
            ImpairmentConfig {
                seed: 7,
                ..ImpairmentConfig::clean()
            }
        );
    }

    #[test]
    fn degrading_profiles_visibly_degrade_a_stream() {
        // 1.6 MB/s offered for 10 s — a typical high-bitrate session.
        let pkts = trace(20_000, 500, 772);
        for p in ImpairmentProfile::ALL.iter().filter(|p| p.is_degrading()) {
            let plan = p.instantiate(3, 10_000_000);
            let mut ch = Impairment::new(plan.config.clone());
            let out = ch.apply_all(&pkts);
            let in_bytes: u64 = pkts.iter().map(|x| u64::from(x.wire_len())).sum();
            let out_bytes: u64 = out.iter().map(|x| u64::from(x.wire_len())).sum();
            let mean_delay = out
                .iter()
                .filter_map(|o| {
                    pkts.iter()
                        .rev()
                        .find(|x| x.ts <= o.ts)
                        .map(|x| o.ts - x.ts)
                })
                .sum::<u64>() as f64
                / out.len().max(1) as f64;
            let degraded = out_bytes < in_bytes * 95 / 100 || mean_delay > 20_000.0;
            assert!(
                degraded,
                "{}: neither lossy ({out_bytes}/{in_bytes} B) nor delayed ({mean_delay} µs)",
                p.name
            );
        }
    }

    #[test]
    fn poor_network_preset_degrades_badly() {
        let pkts = trace(50_000, 100, 1196); // 100 Mbps offered over 5 s
        let mut ch = Impairment::new(ImpairmentConfig::poor_network(1));
        let out = ch.apply_all(&pkts);
        // Must lose a lot of traffic and delay the rest.
        assert!(out.len() < pkts.len() / 2);
        assert!(out[0].ts >= 70_000);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::packet::Direction;
    use proptest::prelude::*;

    proptest! {
        /// The channel never invents packets, never reorders the surviving
        /// subsequence, and delays by at least the base delay.
        #[test]
        fn channel_is_a_lossy_delaying_subsequence(
            n in 1usize..400,
            gap in 100u64..5_000,
            base_delay in 0u64..50_000,
            jitter in 0u64..5_000,
            p in 0.0f64..0.9,
            seed in any::<u64>(),
        ) {
            let pkts: Vec<Packet> = (0..n as u64)
                .map(|i| Packet::new(i * gap, Direction::Downstream, 500))
                .collect();
            let mut ch = Impairment::new(ImpairmentConfig {
                base_delay,
                jitter,
                loss: LossModel::Iid { p },
                seed,
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            prop_assert!(out.len() <= pkts.len());
            for o in &out {
                // Each survivor maps to an input shifted by [base, base+jitter].
                let orig = (o.ts - base_delay).saturating_sub(jitter);
                prop_assert!(pkts.iter().any(|p| p.ts >= orig && p.ts + base_delay <= o.ts));
                prop_assert!(o.ts >= base_delay);
            }
        }

        /// A rate limit is never exceeded over the whole trace (beyond the
        /// one-second bucket depth).
        #[test]
        fn rate_limit_holds_globally(
            rate in 10_000u64..1_000_000,
            n in 10usize..500,
            seed in any::<u64>(),
        ) {
            let pkts: Vec<Packet> = (0..n as u64)
                .map(|i| Packet::new(i * 1_000, Direction::Downstream, 1432))
                .collect();
            let mut ch = Impairment::new(ImpairmentConfig {
                rate_limit_bytes_per_sec: Some(rate),
                seed,
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            let bytes: u64 = out.iter().map(|p| u64::from(p.wire_len())).sum();
            let duration_s = (pkts.last().unwrap().ts as f64 / 1e6).max(1e-6);
            // Allowance: the initial bucket depth (1 s of tokens).
            prop_assert!(bytes as f64 <= rate as f64 * duration_s + rate as f64 + 1500.0);
        }

        /// A bottleneck link never forwards more bytes than capacity × time
        /// (plus one packet of slack), no matter the queue limit.
        #[test]
        fn bottleneck_respects_capacity_globally(
            cap in 50_000u64..2_000_000,
            queue_limit in 1_000u64..500_000,
            n in 10usize..500,
            seed in any::<u64>(),
        ) {
            let pkts: Vec<Packet> = (0..n as u64)
                .map(|i| Packet::new(i * 1_000, Direction::Downstream, 1432))
                .collect();
            let mut ch = Impairment::new(ImpairmentConfig {
                bottleneck: Some(Bottleneck {
                    capacity: CapacitySchedule::constant(cap),
                    queue_limit,
                }),
                seed,
                ..Default::default()
            });
            let out = ch.apply_all(&pkts);
            let bytes: u64 = out.iter().map(|p| u64::from(p.wire_len())).sum();
            let last_out = out.iter().map(|p| p.ts).max().unwrap_or(0);
            let horizon_s = (last_out as f64 / 1e6).max(1e-6);
            prop_assert!(
                bytes as f64 <= cap as f64 * horizon_s + 1500.0,
                "{bytes} B over {horizon_s} s exceeds cap {cap}"
            );
        }
    }
}
