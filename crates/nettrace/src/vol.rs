//! Bidirectional volumetric time series.
//!
//! The stage classifier (§4.3.1) consumes four "standard volumetric
//! attributes" per `I`-second slot: throughput and packet rate in each
//! direction. [`VolSeries`] is that aggregation. It can be computed from a
//! packet trace (lab path) or synthesized directly by the fleet simulator,
//! which lets deployment-scale experiments skip per-packet generation
//! without changing anything downstream.

use serde::{Deserialize, Serialize};

use crate::packet::{Direction, Packet};
use crate::units::{bytes_to_mbps, Micros};

/// Volumetric counters of one slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VolSample {
    /// Downstream wire bytes in the slot.
    pub down_bytes: u64,
    /// Downstream packets in the slot.
    pub down_pkts: u64,
    /// Upstream wire bytes in the slot.
    pub up_bytes: u64,
    /// Upstream packets in the slot.
    pub up_pkts: u64,
}

impl VolSample {
    /// Adds one packet to the counters.
    pub fn add(&mut self, pkt: &Packet) {
        match pkt.dir {
            Direction::Downstream => {
                self.down_bytes += u64::from(pkt.wire_len());
                self.down_pkts += 1;
            }
            Direction::Upstream => {
                self.up_bytes += u64::from(pkt.wire_len());
                self.up_pkts += 1;
            }
        }
    }

    /// Element-wise sum of two samples.
    pub fn merge(&self, other: &VolSample) -> VolSample {
        VolSample {
            down_bytes: self.down_bytes + other.down_bytes,
            down_pkts: self.down_pkts + other.down_pkts,
            up_bytes: self.up_bytes + other.up_bytes,
            up_pkts: self.up_pkts + other.up_pkts,
        }
    }
}

/// Equal-width volumetric slot series for one flow.
///
/// ```
/// use nettrace::packet::{Direction, Packet};
/// use nettrace::vol::VolSeries;
///
/// let packets = vec![
///     Packet::new(0, Direction::Downstream, 946),        // slot 0
///     Packet::new(1_500_000, Direction::Upstream, 46),   // slot 1
/// ];
/// let vol = VolSeries::from_packets(&packets, 0, 1_000_000);
/// assert_eq!(vol.len(), 2);
/// assert_eq!(vol.samples[0].down_pkts, 1);
/// assert_eq!(vol.samples[1].up_pkts, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolSeries {
    /// Slot width in microseconds.
    pub width: Micros,
    /// Series origin (timestamp of slot 0's start).
    pub origin: Micros,
    /// Per-slot counters.
    pub samples: Vec<VolSample>,
}

impl VolSeries {
    /// Builds the series from a packet trace. Packets before `origin` are
    /// ignored.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn from_packets(packets: &[Packet], origin: Micros, width: Micros) -> Self {
        assert!(width > 0, "slot width must be positive");
        let n_slots = packets
            .iter()
            .filter(|p| p.ts >= origin)
            .map(|p| ((p.ts - origin) / width) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut samples = vec![VolSample::default(); n_slots];
        for p in packets {
            if p.ts < origin {
                continue;
            }
            samples[((p.ts - origin) / width) as usize].add(p);
        }
        VolSeries {
            width,
            origin,
            samples,
        }
    }

    /// Wraps pre-aggregated samples (the fleet simulator's path).
    pub fn from_samples(samples: Vec<VolSample>, origin: Micros, width: Micros) -> Self {
        assert!(width > 0, "slot width must be positive");
        VolSeries {
            width,
            origin,
            samples,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no slots.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Re-bins the series into slots `factor` times wider (e.g. 0.1 s
    /// samples → 1 s samples with `factor = 10`). The trailing partial
    /// group, if any, becomes a final (shorter-coverage) slot.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn rebin(&self, factor: usize) -> VolSeries {
        assert!(factor > 0, "rebin factor must be positive");
        let samples = self
            .samples
            .chunks(factor)
            .map(|chunk| chunk.iter().fold(VolSample::default(), |a, b| a.merge(b)))
            .collect();
        VolSeries {
            width: self.width * factor as u64,
            origin: self.origin,
            samples,
        }
    }

    /// Downstream throughput of slot `i` in Mbps.
    pub fn down_mbps(&self, i: usize) -> f64 {
        bytes_to_mbps(self.samples[i].down_bytes, self.width)
    }

    /// Upstream throughput of slot `i` in Mbps.
    pub fn up_mbps(&self, i: usize) -> f64 {
        bytes_to_mbps(self.samples[i].up_bytes, self.width)
    }

    /// Downstream packet rate of slot `i` in packets/second.
    pub fn down_pps(&self, i: usize) -> f64 {
        self.samples[i].down_pkts as f64 * 1e6 / self.width as f64
    }

    /// Upstream packet rate of slot `i` in packets/second.
    pub fn up_pps(&self, i: usize) -> f64 {
        self.samples[i].up_pkts as f64 * 1e6 / self.width as f64
    }

    /// Mean downstream throughput across all slots, in Mbps.
    pub fn mean_down_mbps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u64 = self.samples.iter().map(|s| s.down_bytes).sum();
        bytes_to_mbps(total, self.width * self.samples.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MICROS_PER_SEC;

    fn pkt(ts: Micros, dir: Direction, len: u32) -> Packet {
        Packet::new(ts, dir, len)
    }

    #[test]
    fn from_packets_bins_correctly() {
        let v = VolSeries::from_packets(
            &[
                pkt(0, Direction::Downstream, 946),    // 1000 wire bytes
                pkt(500_000, Direction::Upstream, 46), // 100 wire bytes
                pkt(1_200_000, Direction::Downstream, 946),
            ],
            0,
            MICROS_PER_SEC,
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v.samples[0].down_bytes, 1000);
        assert_eq!(v.samples[0].up_bytes, 100);
        assert_eq!(v.samples[0].down_pkts, 1);
        assert_eq!(v.samples[1].down_pkts, 1);
        assert!((v.down_mbps(0) - 0.008).abs() < 1e-9);
        assert!((v.down_pps(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_gives_empty_series() {
        let v = VolSeries::from_packets(&[], 0, MICROS_PER_SEC);
        assert!(v.is_empty());
        assert_eq!(v.mean_down_mbps(), 0.0);
    }

    #[test]
    fn rebin_merges_slots() {
        let fine = VolSeries::from_samples(
            vec![
                VolSample {
                    down_bytes: 10,
                    down_pkts: 1,
                    up_bytes: 0,
                    up_pkts: 0,
                },
                VolSample {
                    down_bytes: 20,
                    down_pkts: 2,
                    up_bytes: 5,
                    up_pkts: 1,
                },
                VolSample {
                    down_bytes: 40,
                    down_pkts: 4,
                    up_bytes: 0,
                    up_pkts: 0,
                },
            ],
            0,
            100_000,
        );
        let coarse = fine.rebin(2);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse.width, 200_000);
        assert_eq!(coarse.samples[0].down_bytes, 30);
        assert_eq!(coarse.samples[0].up_pkts, 1);
        assert_eq!(coarse.samples[1].down_pkts, 4);
    }

    #[test]
    fn rebin_by_one_is_identity() {
        let v = VolSeries::from_samples(vec![VolSample::default(); 5], 0, 1000);
        assert_eq!(v.rebin(1), v);
    }

    #[test]
    fn mean_down_mbps_averages_over_duration() {
        // 1 MB in slot 0, nothing in slot 1 -> 8 Mbps over 1 s, 4 Mbps over 2 s.
        let v = VolSeries::from_samples(
            vec![
                VolSample {
                    down_bytes: 1_000_000,
                    down_pkts: 1,
                    up_bytes: 0,
                    up_pkts: 0,
                },
                VolSample::default(),
            ],
            0,
            MICROS_PER_SEC,
        );
        assert!((v.mean_down_mbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn packets_before_origin_ignored() {
        let v = VolSeries::from_packets(
            &[
                pkt(10, Direction::Downstream, 100),
                pkt(2_000_000, Direction::Downstream, 100),
            ],
            1_000_000,
            MICROS_PER_SEC,
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v.samples[0].down_pkts, 0);
        assert_eq!(v.samples[1].down_pkts, 1);
    }
}
