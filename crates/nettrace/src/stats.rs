//! Small numeric helpers used by the feature extractors.
//!
//! These are intentionally plain functions over `&[f64]` — every per-slot
//! attribute in the paper (count/size/inter-arrival mean, std, min, max,
//! sum) reduces to one of these.

/// Sum of the samples (0 for empty input).
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Arithmetic mean, or 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        sum(xs) / xs.len() as f64
    }
}

/// Population standard deviation, or 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Minimum, or 0 for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min_or_zero()
}

/// Maximum, or 0 for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max_or_zero()
}

trait OrZero {
    fn min_or_zero(self) -> f64;
    fn max_or_zero(self) -> f64;
}

impl OrZero for f64 {
    fn min_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Linearly interpolated percentile (`q` in `[0, 1]`), or 0 for empty input.
/// Sorts a copy; callers with hot paths should pre-sort and use
/// [`percentile_sorted`].
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, q)
}

/// Percentile over already-sorted input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Consecutive differences (`xs[i+1] - xs[i]`); the inter-arrival-time
/// series of a slot's packet timestamps.
pub fn diffs(xs: &[f64]) -> Vec<f64> {
    xs.windows(2).map(|w| w[1] - w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 9.0);
        assert_eq!(sum(&xs), 40.0);
    }

    #[test]
    fn single_sample_std_is_zero() {
        assert_eq!(std_dev(&[42.0]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -0.5), 1.0);
        assert_eq!(percentile(&xs, 2.0), 2.0);
    }

    #[test]
    fn diffs_give_inter_arrivals() {
        assert_eq!(diffs(&[1.0, 3.0, 6.0]), vec![2.0, 3.0]);
        assert!(diffs(&[5.0]).is_empty());
        assert!(diffs(&[]).is_empty());
    }
}
