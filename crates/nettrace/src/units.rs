//! Time and rate units shared across the workspace.
//!
//! All packet timestamps are microseconds (`u64`) since an arbitrary epoch
//! (usually session start). Microsecond resolution matches the classic
//! libpcap record header and is fine-grained enough for the sub-millisecond
//! inter-arrival statistics the launch-stage attributes need.

/// Microseconds since an arbitrary epoch (normally session start).
pub type Micros = u64;

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Bits per byte, named to keep throughput conversions legible.
pub const BITS_PER_BYTE: u64 = 8;

/// Converts seconds (possibly fractional) to microseconds, saturating at
/// `u64::MAX`. Negative inputs clamp to zero.
pub fn secs_to_micros(secs: f64) -> Micros {
    if secs <= 0.0 {
        return 0;
    }
    let v = secs * MICROS_PER_SEC as f64;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

/// Converts microseconds to fractional seconds.
pub fn micros_to_secs(us: Micros) -> f64 {
    us as f64 / MICROS_PER_SEC as f64
}

/// Converts a byte count observed over `window_us` microseconds into
/// megabits per second. Returns 0 for an empty window.
pub fn bytes_to_mbps(bytes: u64, window_us: Micros) -> f64 {
    if window_us == 0 {
        return 0.0;
    }
    (bytes * BITS_PER_BYTE) as f64 / micros_to_secs(window_us) / 1e6
}

/// Converts a target bitrate in megabits per second to the number of bytes
/// carried in `window_us` microseconds.
pub fn mbps_to_bytes(mbps: f64, window_us: Micros) -> u64 {
    let bits = mbps * 1e6 * micros_to_secs(window_us);
    (bits / BITS_PER_BYTE as f64).max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_micros_roundtrip() {
        assert_eq!(secs_to_micros(1.0), MICROS_PER_SEC);
        assert_eq!(secs_to_micros(0.5), 500_000);
        assert_eq!(secs_to_micros(0.0), 0);
        assert_eq!(secs_to_micros(-3.0), 0);
        assert!((micros_to_secs(secs_to_micros(12.25)) - 12.25).abs() < 1e-9);
    }

    #[test]
    fn secs_to_micros_saturates() {
        assert_eq!(secs_to_micros(f64::MAX), u64::MAX);
    }

    #[test]
    fn throughput_conversions() {
        // 1 MB over 1 s = 8 Mbps.
        assert!((bytes_to_mbps(1_000_000, MICROS_PER_SEC) - 8.0).abs() < 1e-9);
        // Empty window yields zero instead of dividing by zero.
        assert_eq!(bytes_to_mbps(1234, 0), 0.0);
        // Inverse direction.
        assert_eq!(mbps_to_bytes(8.0, MICROS_PER_SEC), 1_000_000);
        assert_eq!(mbps_to_bytes(-1.0, MICROS_PER_SEC), 0);
    }
}
