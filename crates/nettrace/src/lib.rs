//! # nettrace — packet-level trace substrate
//!
//! Foundation crate for the `gamescope` workspace. It models everything the
//! cloud-gaming context classifier needs to observe about network traffic:
//!
//! * [`packet::Packet`] — a timestamped, directional datagram observation,
//!   the unit every other crate consumes.
//! * [`rtp`] — a Real-time Transport Protocol header codec; cloud gaming
//!   platforms stream game video and carry user input over RTP/UDP.
//! * [`flow`] — five-tuple keyed flow bookkeeping with per-direction
//!   volumetric counters, as an in-network monitor would maintain.
//! * [`pcap`] — classic libpcap file reader/writer so synthetic sessions can
//!   round-trip through the same file format as lab Wireshark captures.
//! * [`slots`] — fixed-width time-slot aggregation (the paper computes every
//!   attribute per `T`- or `I`-second slot).
//! * [`impair`] — an adversarial network-condition engine: correlated
//!   (AR(1)/two-state) jitter, Gilbert–Elliott burst loss, bufferbloat-style
//!   bottleneck queueing over piecewise capacity traces, and a named,
//!   versioned impairment-profile catalog for fault-injection testing.
//! * [`stats`] — small numeric helpers (mean/std/percentile) shared by the
//!   feature extractors.
//! * [`metrics`] — trace-layer telemetry counters (packets seen, RTP parse
//!   outcomes, pcap decode results) registered with `cgc-obs`.
//!
//! The crate is deliberately synchronous and allocation-light: traces are
//! `Vec<Packet>` and all processing is streaming-friendly (single pass, slot
//! by slot), matching how the paper's pipeline runs inside an ISP tap.

#![warn(missing_docs)]

pub mod clock;
pub mod flow;
pub mod impair;
pub mod metrics;
pub mod packet;
pub mod pcap;
pub mod rtp;
pub mod slots;
pub mod stats;
pub mod units;
pub mod vol;

pub use clock::{
    shift_micros, Clock, OffsetClock, RealClock, SharedClock, SkewMicros, VirtualClock,
};
pub use flow::{FlowKey, FlowStats, FlowTable};
pub use impair::{
    Bottleneck, CapacitySchedule, Impairment, ImpairmentConfig, ImpairmentPlan, ImpairmentProfile,
    JitterModel, JitterProcess, LossModel,
};
pub use packet::{Direction, FiveTuple, Packet, Protocol};
pub use slots::{SlotSeries, SlotView};
pub use units::{Micros, BITS_PER_BYTE, MICROS_PER_SEC};
pub use vol::{VolSample, VolSeries};
