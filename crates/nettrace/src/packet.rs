//! Packet observations and addressing.
//!
//! A [`Packet`] is the minimal record an in-network monitor keeps per
//! datagram: arrival time, direction relative to the subscriber, transport
//! five-tuple and payload length. The paper's classifiers never look at
//! payload *content* (the streams are encrypted); everything is derived from
//! sizes and timings, which is exactly what this type captures.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

use crate::units::Micros;

/// Transport protocol of a flow. Cloud game streaming is RTP-over-UDP; the
/// enum exists so the flow filter can reject TCP control/administrative
/// traffic that shares the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// User Datagram Protocol (all game streaming flows).
    Udp,
    /// Transmission Control Protocol (platform administration, storefront).
    Tcp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Tcp => write!(f, "TCP"),
        }
    }
}

/// Direction of a packet relative to the subscriber (client device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Cloud server → client: rendered game video and audio.
    Downstream,
    /// Client → cloud server: user inputs (mouse, keys, touch, voice).
    Upstream,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Downstream => Direction::Upstream,
            Direction::Upstream => Direction::Downstream,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Downstream => write!(f, "down"),
            Direction::Upstream => write!(f, "up"),
        }
    }
}

/// Classic transport five-tuple identifying a flow.
///
/// By convention in this workspace the `src` side is the cloud server and
/// the `dst` side the client, i.e. the tuple is written in the *downstream*
/// orientation; [`FiveTuple::normalized`] maps both directions of a
/// bidirectional conversation onto one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Server-side address.
    pub src_ip: IpAddr,
    /// Client-side address.
    pub dst_ip: IpAddr,
    /// Server-side port.
    pub src_port: u16,
    /// Client-side port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// Convenience constructor for an IPv4 UDP tuple.
    pub fn udp_v4(src: [u8; 4], src_port: u16, dst: [u8; 4], dst_port: u16) -> Self {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::from(src)),
            dst_ip: IpAddr::V4(Ipv4Addr::from(dst)),
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// Returns the tuple for the reverse direction of the conversation.
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Canonical orientation so both directions of a conversation share a
    /// flow-table key: the lexicographically smaller `(ip, port)` endpoint
    /// becomes `src`.
    pub fn normalized(&self) -> Self {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// One observed datagram.
///
/// `payload_len` is the RTP payload length in bytes (what Fig. 3 of the
/// paper scatter-plots); header overhead is accounted separately via
/// [`Packet::wire_len`] when computing throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival time in microseconds since session start.
    pub ts: Micros,
    /// Direction relative to the subscriber.
    pub dir: Direction,
    /// RTP payload length in bytes.
    pub payload_len: u32,
    /// RTP sequence number (per-direction, wrapping).
    pub seq: u16,
    /// RTP timestamp field (media clock).
    pub rtp_ts: u32,
    /// RTP marker bit: set on the last packet of a video frame.
    pub marker: bool,
}

/// Ethernet (14) + IPv4 (20) + UDP (8) + RTP fixed header (12) overhead in
/// bytes added to the payload when a packet is serialized onto the wire.
pub const WIRE_OVERHEAD: u32 = 14 + 20 + 8 + 12;

impl Packet {
    /// Creates a downstream packet with zeroed RTP metadata; generators fill
    /// the sequence/timestamp fields as they emit streams.
    pub fn new(ts: Micros, dir: Direction, payload_len: u32) -> Self {
        Packet {
            ts,
            dir,
            payload_len,
            seq: 0,
            rtp_ts: 0,
            marker: false,
        }
    }

    /// Total on-wire length (headers + payload) used for throughput math.
    pub fn wire_len(&self) -> u32 {
        self.payload_len + WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip_is_involutive() {
        assert_eq!(Direction::Downstream.flip(), Direction::Upstream);
        assert_eq!(Direction::Upstream.flip().flip(), Direction::Upstream);
    }

    #[test]
    fn five_tuple_reverse_and_normalize() {
        let t = FiveTuple::udp_v4([10, 0, 0, 1], 49003, [192, 168, 1, 5], 50123);
        let r = t.reversed();
        assert_eq!(r.src_port, 50123);
        assert_eq!(r.reversed(), t);
        // Both orientations normalize to the same key.
        assert_eq!(t.normalized(), r.normalized());
    }

    #[test]
    fn normalized_is_idempotent() {
        let t = FiveTuple::udp_v4([192, 168, 1, 5], 50123, [10, 0, 0, 1], 49003);
        assert_eq!(t.normalized(), t.normalized().normalized());
    }

    #[test]
    fn wire_len_adds_header_overhead() {
        let p = Packet::new(0, Direction::Downstream, 1432);
        assert_eq!(p.wire_len(), 1432 + 54);
    }

    #[test]
    fn display_formats() {
        let t = FiveTuple::udp_v4([10, 0, 0, 1], 443, [1, 2, 3, 4], 999);
        assert_eq!(format!("{t}"), "UDP 10.0.0.1:443 -> 1.2.3.4:999");
        assert_eq!(format!("{}", Direction::Downstream), "down");
        assert_eq!(format!("{}", Protocol::Tcp), "TCP");
    }
}
