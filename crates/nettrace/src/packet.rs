//! Packet observations and addressing.
//!
//! A [`Packet`] is the minimal record an in-network monitor keeps per
//! datagram: arrival time, direction relative to the subscriber, transport
//! five-tuple and payload length. The paper's classifiers never look at
//! payload *content* (the streams are encrypted); everything is derived from
//! sizes and timings, which is exactly what this type captures.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

use crate::units::Micros;

/// Transport protocol of a flow. Cloud game streaming is RTP-over-UDP; the
/// enum exists so the flow filter can reject TCP control/administrative
/// traffic that shares the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// User Datagram Protocol (all game streaming flows).
    Udp,
    /// Transmission Control Protocol (platform administration, storefront).
    Tcp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Tcp => write!(f, "TCP"),
        }
    }
}

/// Direction of a packet relative to the subscriber (client device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Cloud server → client: rendered game video and audio.
    Downstream,
    /// Client → cloud server: user inputs (mouse, keys, touch, voice).
    Upstream,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Downstream => Direction::Upstream,
            Direction::Upstream => Direction::Downstream,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Downstream => write!(f, "down"),
            Direction::Upstream => write!(f, "up"),
        }
    }
}

/// Classic transport five-tuple identifying a flow.
///
/// By convention in this workspace the `src` side is the cloud server and
/// the `dst` side the client, i.e. the tuple is written in the *downstream*
/// orientation; [`FiveTuple::normalized`] maps both directions of a
/// bidirectional conversation onto one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Server-side address.
    pub src_ip: IpAddr,
    /// Client-side address.
    pub dst_ip: IpAddr,
    /// Server-side port.
    pub src_port: u16,
    /// Client-side port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// Convenience constructor for an IPv4 UDP tuple.
    pub fn udp_v4(src: [u8; 4], src_port: u16, dst: [u8; 4], dst_port: u16) -> Self {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::from(src)),
            dst_ip: IpAddr::V4(Ipv4Addr::from(dst)),
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// Returns the tuple for the reverse direction of the conversation.
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Canonical orientation so both directions of a conversation share a
    /// flow-table key: the lexicographically smaller `(ip, port)` endpoint
    /// becomes `src`.
    pub fn normalized(&self) -> Self {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// Stable 64-bit hash of the *normalized* tuple (FNV-1a over the
    /// endpoint bytes). Both directions of a conversation hash identically,
    /// and the value is independent of the process's `HashMap` seed, so it
    /// can be used to partition flows across worker shards
    /// deterministically.
    pub fn shard_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
        fn ip_bytes(ip: &IpAddr) -> [u8; 16] {
            match ip {
                IpAddr::V4(v4) => v4.to_ipv6_mapped().octets(),
                IpAddr::V6(v6) => v6.octets(),
            }
        }
        let n = self.normalized();
        let mut h = FNV_OFFSET;
        h = mix(h, &ip_bytes(&n.src_ip));
        h = mix(h, &ip_bytes(&n.dst_ip));
        h = mix(h, &n.src_port.to_be_bytes());
        h = mix(h, &n.dst_port.to_be_bytes());
        mix(h, &[n.proto as u8])
    }

    /// Shard index for a pool of `n` workers (`n = 0` is treated as 1).
    pub fn shard(&self, n: usize) -> usize {
        (self.shard_hash() % n.max(1) as u64) as usize
    }

    /// The flow's journal/flight-recorder id: the direction-invariant
    /// [`FiveTuple::shard_hash`], stable across processes and restarts.
    pub fn flow_id(&self) -> u64 {
        self.shard_hash()
    }

    /// The flow's endpoints as a journal `FlowAddr` (this tuple is taken
    /// to already be in downstream orientation, `src` = server).
    pub fn flow_addr(&self) -> cgc_obs::event::FlowAddr {
        cgc_obs::event::FlowAddr {
            server_ip: self.src_ip,
            server_port: self.src_port,
            client_ip: self.dst_ip,
            client_port: self.dst_port,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// One observed datagram.
///
/// `payload_len` is the RTP payload length in bytes (what Fig. 3 of the
/// paper scatter-plots); header overhead is accounted separately via
/// [`Packet::wire_len`] when computing throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival time in microseconds since session start.
    pub ts: Micros,
    /// Direction relative to the subscriber.
    pub dir: Direction,
    /// RTP payload length in bytes.
    pub payload_len: u32,
    /// RTP sequence number (per-direction, wrapping).
    pub seq: u16,
    /// RTP timestamp field (media clock).
    pub rtp_ts: u32,
    /// RTP marker bit: set on the last packet of a video frame.
    pub marker: bool,
}

/// Ethernet (14) + IPv4 (20) + UDP (8) + RTP fixed header (12) overhead in
/// bytes added to the payload when a packet is serialized onto the wire.
pub const WIRE_OVERHEAD: u32 = 14 + 20 + 8 + 12;

impl Packet {
    /// Creates a downstream packet with zeroed RTP metadata; generators fill
    /// the sequence/timestamp fields as they emit streams.
    pub fn new(ts: Micros, dir: Direction, payload_len: u32) -> Self {
        Packet {
            ts,
            dir,
            payload_len,
            seq: 0,
            rtp_ts: 0,
            marker: false,
        }
    }

    /// Total on-wire length (headers + payload) used for throughput math.
    pub fn wire_len(&self) -> u32 {
        self.payload_len + WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip_is_involutive() {
        assert_eq!(Direction::Downstream.flip(), Direction::Upstream);
        assert_eq!(Direction::Upstream.flip().flip(), Direction::Upstream);
    }

    #[test]
    fn five_tuple_reverse_and_normalize() {
        let t = FiveTuple::udp_v4([10, 0, 0, 1], 49003, [192, 168, 1, 5], 50123);
        let r = t.reversed();
        assert_eq!(r.src_port, 50123);
        assert_eq!(r.reversed(), t);
        // Both orientations normalize to the same key.
        assert_eq!(t.normalized(), r.normalized());
    }

    #[test]
    fn normalized_is_idempotent() {
        let t = FiveTuple::udp_v4([192, 168, 1, 5], 50123, [10, 0, 0, 1], 49003);
        assert_eq!(t.normalized(), t.normalized().normalized());
    }

    #[test]
    fn wire_len_adds_header_overhead() {
        let p = Packet::new(0, Direction::Downstream, 1432);
        assert_eq!(p.wire_len(), 1432 + 54);
    }

    #[test]
    fn display_formats() {
        let t = FiveTuple::udp_v4([10, 0, 0, 1], 443, [1, 2, 3, 4], 999);
        assert_eq!(format!("{t}"), "UDP 10.0.0.1:443 -> 1.2.3.4:999");
        assert_eq!(format!("{}", Direction::Downstream), "down");
        assert_eq!(format!("{}", Protocol::Tcp), "TCP");
    }

    #[test]
    fn shard_hash_matches_both_directions() {
        let t = FiveTuple::udp_v4([10, 0, 0, 1], 49003, [192, 168, 1, 5], 50123);
        assert_eq!(t.shard_hash(), t.reversed().shard_hash());
        assert_eq!(t.shard(8), t.reversed().shard(8));
        // Zero workers degrade to a single shard instead of dividing by 0.
        assert_eq!(t.shard(0), 0);
    }

    #[test]
    fn shard_hash_spreads_flows() {
        // 4096 distinct client endpoints should not collapse onto a few
        // shards: every shard of 8 gets a meaningful share.
        let mut counts = [0usize; 8];
        for a in 0..16u8 {
            for b in 0..=255u8 {
                let t = FiveTuple::udp_v4([10, 0, a, 1], 49003, [100, 64, a, b], 50_000);
                counts[t.shard(8)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 16 * 256);
        assert!(
            counts.iter().all(|&c| c > total / 16),
            "unbalanced shards: {counts:?}"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary UDP/TCP five-tuple over small IPv4 space (collisions in
    /// the endpoint space exercise the normalization tie-breaks).
    fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<bool>(),
        )
            .prop_map(|(src, dst, sp, dp, udp)| {
                let mut t = FiveTuple::udp_v4(src.to_be_bytes(), sp, dst.to_be_bytes(), dp);
                if !udp {
                    t.proto = Protocol::Tcp;
                }
                t
            })
    }

    proptest! {
        /// Normalization is idempotent: applying it twice is the same as
        /// once.
        #[test]
        fn normalized_is_idempotent(t in arb_tuple()) {
            let n = t.normalized();
            prop_assert_eq!(n.normalized(), n);
        }

        /// Normalization is direction-invariant: both orientations of a
        /// conversation share the canonical key.
        #[test]
        fn normalized_is_direction_invariant(t in arb_tuple()) {
            prop_assert_eq!(t.normalized(), t.reversed().normalized());
        }

        /// Shard assignment is stable under tuple reversal, for any worker
        /// pool size: upstream and downstream packets of one conversation
        /// always land on the same worker.
        #[test]
        fn shard_is_stable_under_reversal(t in arb_tuple(), n in 1usize..64) {
            prop_assert_eq!(t.shard_hash(), t.reversed().shard_hash());
            prop_assert_eq!(t.shard(n), t.reversed().shard(n));
            prop_assert!(t.shard(n) < n);
        }
    }
}
