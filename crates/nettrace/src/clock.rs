//! Real vs. virtual time for long-lived deployments and deterministic
//! tests.
//!
//! Everything time-driven in the live path — paced replay, idle expiry,
//! periodic telemetry — asks a [`Clock`] instead of the OS, so the same
//! code runs against wall time at an ISP tap and against an instantly
//! advancing [`VirtualClock`] in tests. Clocks speak the tap timebase
//! ([`Micros`]): a [`RealClock`] can be anchored at an arbitrary origin
//! (e.g. the first capture timestamp of a replayed pcap) so wall elapsed
//! time and capture timestamps share one axis.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::units::Micros;

/// A monotonic microsecond clock the live path can sleep against.
///
/// Implementations must be cheap to read and safe to share across
/// threads; `sleep_until` with a past deadline returns immediately.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Current time on this clock's axis, microseconds.
    fn now(&self) -> Micros;

    /// Blocks (or, for virtual clocks, advances) until `deadline`.
    fn sleep_until(&self, deadline: Micros);
}

/// Shared handle to a clock implementation.
pub type SharedClock = Arc<dyn Clock>;

/// Signed microsecond clock-skew offset between two timebases.
///
/// Multi-vantage captures (several NICs, several pcaps, several taps)
/// each carry their own clock; fusing them requires shifting every
/// per-source timestamp onto one shared axis. Offsets are signed — a
/// vantage point whose clock runs ahead needs a negative correction.
pub type SkewMicros = i64;

/// Shifts `ts` by a signed skew `offset`, saturating at the axis edges
/// (a correction can never wrap a timestamp around zero or `u64::MAX`).
pub fn shift_micros(ts: Micros, offset: SkewMicros) -> Micros {
    if offset >= 0 {
        ts.saturating_add(offset as u64)
    } else {
        ts.saturating_sub(offset.unsigned_abs())
    }
}

/// A [`Clock`] adapter that reads another clock through a constant skew
/// offset — the per-source view of a shared merge timeline.
///
/// `now()` reports `inner.now() + offset` (saturating), and
/// `sleep_until(d)` sleeps the inner clock until `d - offset`, so a
/// source whose capture clock ran `offset` µs ahead of the fused axis
/// still paces correctly against the shared clock.
#[derive(Debug, Clone)]
pub struct OffsetClock {
    inner: SharedClock,
    offset: SkewMicros,
}

impl OffsetClock {
    /// Wraps `inner`, skewing every reading by `offset` µs.
    pub fn new(inner: SharedClock, offset: SkewMicros) -> Self {
        OffsetClock { inner, offset }
    }

    /// The skew this adapter applies, µs.
    pub fn offset(&self) -> SkewMicros {
        self.offset
    }

    /// A shared handle to this adapter.
    pub fn shared(self) -> SharedClock {
        Arc::new(self)
    }
}

impl Clock for OffsetClock {
    fn now(&self) -> Micros {
        shift_micros(self.inner.now(), self.offset)
    }

    fn sleep_until(&self, deadline: Micros) {
        self.inner.sleep_until(shift_micros(deadline, -self.offset));
    }
}

/// Wall-clock time, anchored so `now()` reads `origin + elapsed`.
#[derive(Debug)]
pub struct RealClock {
    started: Instant,
    origin: Micros,
}

impl RealClock {
    /// A wall clock starting at 0 µs.
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// A wall clock whose `now()` starts at `origin` — anchor it at the
    /// first capture timestamp to replay a pcap on its own timebase.
    pub fn starting_at(origin: Micros) -> Self {
        RealClock {
            started: Instant::now(),
            origin,
        }
    }

    /// A fresh shared wall clock starting at 0 µs.
    pub fn shared() -> SharedClock {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Micros {
        self.origin + self.started.elapsed().as_micros() as u64
    }

    fn sleep_until(&self, deadline: Micros) {
        loop {
            let now = self.now();
            if now >= deadline {
                return;
            }
            // One sleep usually suffices; the loop covers early wakeups.
            std::thread::sleep(Duration::from_micros(deadline - now));
        }
    }
}

/// Manually advanced time: `sleep_until` completes instantly by jumping
/// the clock forward, which makes paced replay and idle expiry
/// deterministic and instant in tests.
///
/// Clones share the same underlying instant, so a producer advancing the
/// clock is immediately visible to every consumer.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at `origin` µs.
    pub fn starting_at(origin: Micros) -> Self {
        VirtualClock {
            now: Arc::new(AtomicU64::new(origin)),
        }
    }

    /// A virtual clock starting at 0 µs.
    pub fn new() -> Self {
        Self::starting_at(0)
    }

    /// Jumps the clock forward to `t` (never backwards).
    pub fn advance_to(&self, t: Micros) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }

    /// Advances the clock by `delta` µs.
    pub fn advance_by(&self, delta: Micros) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// A shared handle to this clock (clones stay in sync with it).
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Micros {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_until(&self, deadline: Micros) {
        self.advance_to(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_anchored() {
        let c = RealClock::starting_at(5_000_000);
        let a = c.now();
        assert!(a >= 5_000_000);
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn real_clock_sleep_until_past_deadline_returns_immediately() {
        let c = RealClock::new();
        let before = Instant::now();
        c.sleep_until(0);
        assert!(before.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn real_clock_sleep_until_waits() {
        let c = RealClock::new();
        let target = c.now() + 2_000; // 2 ms
        c.sleep_until(target);
        assert!(c.now() >= target);
    }

    #[test]
    fn virtual_clock_jumps_instantly_and_never_rewinds() {
        let c = VirtualClock::starting_at(100);
        assert_eq!(c.now(), 100);
        c.sleep_until(1_000_000);
        assert_eq!(c.now(), 1_000_000);
        c.advance_to(500); // backwards: ignored
        assert_eq!(c.now(), 1_000_000);
        c.advance_by(10);
        assert_eq!(c.now(), 1_000_010);
    }

    #[test]
    fn shift_micros_is_signed_and_saturating() {
        assert_eq!(shift_micros(100, 25), 125);
        assert_eq!(shift_micros(100, -25), 75);
        assert_eq!(shift_micros(10, -25), 0, "saturates at the origin");
        assert_eq!(shift_micros(u64::MAX - 1, 25), u64::MAX);
    }

    #[test]
    fn offset_clock_skews_readings_and_unskews_sleeps() {
        let base = VirtualClock::starting_at(1_000);
        let ahead = OffsetClock::new(base.shared(), 250);
        assert_eq!(ahead.now(), 1_250);
        // Sleeping to 2_000 on the skewed axis is 1_750 on the base axis.
        ahead.sleep_until(2_000);
        assert_eq!(base.now(), 1_750);
        assert_eq!(ahead.now(), 2_000);

        let behind = OffsetClock::new(base.shared(), -500);
        assert_eq!(behind.now(), 1_250);
        assert_eq!(behind.offset(), -500);
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let c = VirtualClock::new();
        let shared: SharedClock = c.shared();
        c.advance_to(42);
        assert_eq!(shared.now(), 42);
        shared.sleep_until(99);
        assert_eq!(c.now(), 99);
    }
}
