//! Classic libpcap file I/O.
//!
//! The lab half of the paper works from Wireshark/tcpdump PCAP captures.
//! This module writes synthetic sessions as standard little-endian classic
//! pcap files (magic `0xa1b2c3d4`, microsecond resolution, LINKTYPE_ETHERNET)
//! with real Ethernet/IPv4/UDP/RTP framing, and reads them back into
//! [`Packet`] sequences — so the full capture-file path a downstream user
//! would run on real traces exists and is exercised in tests.
//!
//! Payload bytes are zeros: the classifiers are payload-agnostic (the real
//! streams are encrypted) and only sizes/timings matter.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::IpAddr;
use std::path::Path;

use crate::packet::{Direction, FiveTuple, Packet, Protocol};
use crate::rtp::{RtpHeader, RTP_HEADER_LEN};
use crate::units::{Micros, MICROS_PER_SEC};

/// Classic pcap magic, microsecond timestamps, little-endian.
const PCAP_MAGIC_LE: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

const ETH_LEN: usize = 14;
const IPV4_LEN: usize = 20;
const UDP_LEN: usize = 8;

/// One decoded capture record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in microseconds.
    pub ts: Micros,
    /// Five-tuple exactly as observed on the wire (src = sender).
    pub tuple: FiveTuple,
    /// Parsed RTP header, when the UDP payload carried one.
    pub rtp: Option<RtpHeader>,
    /// RTP payload length (UDP payload minus RTP header), bytes.
    pub payload_len: u32,
}

/// Errors from pcap decoding.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// File does not start with a supported magic number.
    BadMagic(u32),
    /// A record or header was malformed.
    Malformed(&'static str),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "unsupported pcap magic {m:#x}"),
            PcapError::Malformed(what) => write!(f, "malformed pcap: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl PcapWriter<BufWriter<File>> {
    /// Creates a pcap file at `path` and writes the global header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> PcapWriter<W> {
    /// Wraps a writer and emits the pcap global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&PCAP_MAGIC_LE.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Writes one session packet framed as Ethernet/IPv4/UDP/RTP.
    ///
    /// `down_tuple` is the session five-tuple in downstream orientation; the
    /// packet's [`Direction`] selects which orientation goes on the wire.
    /// Only IPv4 tuples are supported (an ISP tap normalizes v6 separately).
    pub fn write_packet(&mut self, down_tuple: &FiveTuple, pkt: &Packet) -> io::Result<()> {
        let tuple = match pkt.dir {
            Direction::Downstream => *down_tuple,
            Direction::Upstream => down_tuple.reversed(),
        };
        let (src, dst) = match (tuple.src_ip, tuple.dst_ip) {
            (IpAddr::V4(s), IpAddr::V4(d)) => (s.octets(), d.octets()),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "pcap writer supports IPv4 tuples only",
                ))
            }
        };

        let rtp = match pkt.dir {
            Direction::Downstream => RtpHeader::video(pkt.seq, pkt.rtp_ts, 0x47464e01, pkt.marker),
            Direction::Upstream => RtpHeader::input(pkt.seq, pkt.rtp_ts, 0x47464e02),
        };
        let udp_payload_len = RTP_HEADER_LEN + pkt.payload_len as usize;
        let frame_len = ETH_LEN + IPV4_LEN + UDP_LEN + udp_payload_len;

        // Record header.
        self.out
            .write_all(&((pkt.ts / MICROS_PER_SEC) as u32).to_le_bytes())?;
        self.out
            .write_all(&((pkt.ts % MICROS_PER_SEC) as u32).to_le_bytes())?;
        self.out.write_all(&(frame_len as u32).to_le_bytes())?;
        self.out.write_all(&(frame_len as u32).to_le_bytes())?;

        // Ethernet II: synthetic locally-administered MACs, EtherType IPv4.
        self.out.write_all(&[0x02, 0, 0, 0, 0, 0x01])?;
        self.out.write_all(&[0x02, 0, 0, 0, 0, 0x02])?;
        self.out.write_all(&[0x08, 0x00])?;

        // IPv4 header.
        let total_len = (IPV4_LEN + UDP_LEN + udp_payload_len) as u16;
        let mut ip = [0u8; IPV4_LEN];
        ip[0] = 0x45;
        ip[2..4].copy_from_slice(&total_len.to_be_bytes());
        ip[8] = 64; // TTL
        ip[9] = 17; // UDP
        ip[12..16].copy_from_slice(&src);
        ip[16..20].copy_from_slice(&dst);
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        self.out.write_all(&ip)?;

        // UDP header (checksum 0 = unset, legal for IPv4).
        self.out.write_all(&tuple.src_port.to_be_bytes())?;
        self.out.write_all(&tuple.dst_port.to_be_bytes())?;
        self.out
            .write_all(&((UDP_LEN + udp_payload_len) as u16).to_be_bytes())?;
        self.out.write_all(&0u16.to_be_bytes())?;

        // RTP header + zero payload.
        let mut rtp_buf = Vec::with_capacity(RTP_HEADER_LEN);
        rtp.encode(&mut rtp_buf);
        self.out.write_all(&rtp_buf)?;
        io::copy(
            &mut io::repeat(0).take(pkt.payload_len as u64),
            &mut self.out,
        )?;
        Ok(())
    }

    /// Writes an entire session and flushes.
    pub fn write_session(&mut self, down_tuple: &FiveTuple, packets: &[Packet]) -> io::Result<()> {
        for p in packets {
            self.write_packet(down_tuple, p)?;
        }
        self.out.flush()
    }
}

/// Writes `packets` of a session to a fresh pcap file at `path`.
pub fn write_session_pcap(
    path: impl AsRef<Path>,
    down_tuple: &FiveTuple,
    packets: &[Packet],
) -> io::Result<()> {
    PcapWriter::create(path)?.write_session(down_tuple, packets)
}

fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += u32::from(word);
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Reads all records from a classic little-endian pcap file.
///
/// Non-IPv4/UDP frames are skipped (a gateway capture contains ARP, TCP
/// control traffic, etc.); UDP payloads that do not parse as RTP yield a
/// record with `rtp: None` and the full UDP payload length.
pub fn read_records(path: impl AsRef<Path>) -> Result<Vec<PcapRecord>, PcapError> {
    let mut rd = BufReader::new(File::open(path)?);
    let mut hdr = [0u8; 24];
    rd.read_exact(&mut hdr)?;
    let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
    if magic != PCAP_MAGIC_LE {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32::from_le_bytes(hdr[20..24].try_into().unwrap());
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::Malformed("unsupported linktype"));
    }

    let metrics = crate::metrics::TraceMetrics::global();
    let mut records = Vec::new();
    loop {
        let mut rec_hdr = [0u8; 16];
        match rd.read_exact(&mut rec_hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u32::from_le_bytes(rec_hdr[0..4].try_into().unwrap()) as u64;
        let ts_usec = u32::from_le_bytes(rec_hdr[4..8].try_into().unwrap()) as u64;
        let incl_len = u32::from_le_bytes(rec_hdr[8..12].try_into().unwrap()) as usize;
        let mut frame = vec![0u8; incl_len];
        rd.read_exact(&mut frame)?;

        let ts: Micros = ts_sec * MICROS_PER_SEC + ts_usec;
        match decode_frame(ts, &frame) {
            Some(rec) => {
                metrics.pcap_records.inc();
                records.push(rec);
            }
            None => metrics.pcap_skipped.inc(),
        }
    }
    Ok(records)
}

fn decode_frame(ts: Micros, frame: &[u8]) -> Option<PcapRecord> {
    if frame.len() < ETH_LEN + IPV4_LEN + UDP_LEN {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None; // not IPv4
    }
    let ip = &frame[ETH_LEN..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = (ip[0] & 0x0f) as usize * 4;
    if ip.len() < ihl + UDP_LEN || ip[9] != 17 {
        return None; // short or not UDP
    }
    let src: [u8; 4] = ip[12..16].try_into().unwrap();
    let dst: [u8; 4] = ip[16..20].try_into().unwrap();
    let udp = &ip[ihl..];
    let src_port = u16::from_be_bytes([udp[0], udp[1]]);
    let dst_port = u16::from_be_bytes([udp[2], udp[3]]);
    let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
    if udp_len < UDP_LEN || udp.len() < udp_len {
        return None;
    }
    let udp_payload = &udp[UDP_LEN..udp_len];

    let tuple = FiveTuple {
        src_ip: IpAddr::V4(src.into()),
        dst_ip: IpAddr::V4(dst.into()),
        src_port,
        dst_port,
        proto: Protocol::Udp,
    };
    let metrics = crate::metrics::TraceMetrics::global();
    match RtpHeader::decode(udp_payload) {
        Ok((rtp, consumed)) => {
            metrics.rtp_parsed.inc();
            Some(PcapRecord {
                ts,
                tuple,
                rtp: Some(rtp),
                payload_len: (udp_payload.len() - consumed) as u32,
            })
        }
        Err(_) => {
            metrics.rtp_malformed.inc();
            // Flight-record the malformed payload against the flow so an
            // operator can see codec trouble on a session's own timeline
            // (free until a global journal is installed).
            cgc_obs::journal::global_sink().emit(
                tuple.flow_id(),
                ts,
                cgc_obs::event::EventKind::RtpInvalid {
                    payload_len: udp_payload.len() as u32,
                },
            );
            Some(PcapRecord {
                ts,
                tuple,
                rtp: None,
                payload_len: udp_payload.len() as u32,
            })
        }
    }
}

/// Converts capture records back into session [`Packet`]s, assigning
/// direction by matching each record's source against `down_tuple` (the
/// session tuple in downstream orientation). Records of other flows are
/// dropped.
pub fn records_to_packets(records: &[PcapRecord], down_tuple: &FiveTuple) -> Vec<Packet> {
    let up = down_tuple.reversed();
    records
        .iter()
        .filter_map(|r| {
            let dir = if r.tuple == *down_tuple {
                Direction::Downstream
            } else if r.tuple == up {
                Direction::Upstream
            } else {
                return None;
            };
            let mut p = Packet::new(r.ts, dir, r.payload_len);
            if let Some(rtp) = r.rtp {
                p.seq = rtp.sequence;
                p.rtp_ts = rtp.timestamp;
                p.marker = rtp.marker;
            }
            Some(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::udp_v4([10, 0, 0, 1], 49003, [192, 168, 1, 5], 50123)
    }

    fn session() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..50u64 {
            let mut p = Packet::new(i * 10_000, Direction::Downstream, 1432);
            p.seq = i as u16;
            p.rtp_ts = (i * 1500) as u32;
            p.marker = i % 5 == 4;
            pkts.push(p);
            if i % 3 == 0 {
                let mut u = Packet::new(i * 10_000 + 500, Direction::Upstream, 60);
                u.seq = (i / 3) as u16;
                pkts.push(u);
            }
        }
        pkts
    }

    #[test]
    fn roundtrip_preserves_packets() {
        let dir = std::env::temp_dir().join("nettrace_pcap_roundtrip.pcap");
        let pkts = session();
        write_session_pcap(&dir, &tuple(), &pkts).unwrap();
        let records = read_records(&dir).unwrap();
        assert_eq!(records.len(), pkts.len());
        let back = records_to_packets(&records, &tuple());
        assert_eq!(back, pkts);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn rtp_headers_survive_the_wire() {
        let dir = std::env::temp_dir().join("nettrace_pcap_rtp.pcap");
        write_session_pcap(&dir, &tuple(), &session()).unwrap();
        let records = read_records(&dir).unwrap();
        assert!(records.iter().all(|r| r.rtp.is_some()));
        let down_pts: Vec<u8> = records
            .iter()
            .filter(|r| r.tuple == tuple())
            .map(|r| r.rtp.unwrap().payload_type)
            .collect();
        assert!(down_pts.iter().all(|&pt| pt == crate::rtp::PT_GAME_VIDEO));
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn foreign_flows_are_filtered_out() {
        let dir = std::env::temp_dir().join("nettrace_pcap_foreign.pcap");
        write_session_pcap(&dir, &tuple(), &session()).unwrap();
        let records = read_records(&dir).unwrap();
        let other = FiveTuple::udp_v4([9, 9, 9, 9], 1, [8, 8, 8, 8], 2);
        assert!(records_to_packets(&records, &other).is_empty());
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("nettrace_pcap_badmagic.pcap");
        std::fs::write(&dir, [0u8; 24]).unwrap();
        match read_records(&dir) {
            Err(PcapError::BadMagic(0)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn checksum_matches_reference_vector() {
        // Reference header from RFC 1071 style example.
        let mut ip = [0u8; 20];
        ip[0] = 0x45;
        ip[2..4].copy_from_slice(&(40u16).to_be_bytes());
        ip[8] = 64;
        ip[9] = 17;
        ip[12..16].copy_from_slice(&[10, 0, 0, 1]);
        ip[16..20].copy_from_slice(&[192, 168, 1, 5]);
        let c = ipv4_checksum(&ip);
        // Verify the invariant instead of a magic constant: a header with
        // its checksum filled in sums to 0xffff before final complement.
        ip[10..12].copy_from_slice(&c.to_be_bytes());
        let mut sum = 0u32;
        for chunk in ip.chunks(2) {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum, 0xffff);
    }
}
