//! Streaming stage-feature extraction (§4.3.1).
//!
//! Per `I`-second slot the extractor turns the four standard volumetric
//! attributes — downstream throughput, downstream packet rate, upstream
//! throughput, upstream packet rate — into EMA-smoothed peak-relative
//! values, the exact inputs of the player-activity-stage classifier.
//!
//! Peaks are seeded from the launch window (§4.3.1's "threshold dynamically
//! decided during the game launch"): the launch animation streams at a
//! known fraction of the gameplay peak, so the seed is the launch maximum
//! scaled up by a calibration factor, and the tracker keeps raising the
//! peak as gameplay exceeds it.

use nettrace::units::Micros;
use nettrace::vol::{VolSample, VolSeries};
use serde::{Deserialize, Serialize};

use crate::relative::{Ema, PeakNormalizer};

/// Number of volumetric attributes per slot.
pub const N_STAGE_FEATURES: usize = 4;

/// Configuration of the stage-feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFeatureConfig {
    /// EMA weight of the current slot (the paper deploys `α = 0.5`).
    pub alpha: f64,
    /// Factor applied to the launch-window maxima to seed gameplay peaks
    /// (launch streams below gameplay peak; 1.5 works across titles).
    pub launch_peak_factor: f64,
}

impl Default for StageFeatureConfig {
    fn default() -> Self {
        StageFeatureConfig {
            alpha: 0.5,
            launch_peak_factor: 1.5,
        }
    }
}

/// Streaming extractor: seed with the launch volumetrics, then push one
/// gameplay [`VolSample`] per slot and receive the 4-value feature vector.
#[derive(Debug, Clone)]
pub struct StageFeatureExtractor {
    norms: [PeakNormalizer; N_STAGE_FEATURES],
    emas: [Ema; N_STAGE_FEATURES],
    width_secs: f64,
}

impl StageFeatureExtractor {
    /// Creates an extractor for slots of `width` microseconds, seeding the
    /// four peaks from the launch-stage samples.
    pub fn new(cfg: &StageFeatureConfig, width: Micros, launch: &[VolSample]) -> Self {
        let width_secs = width as f64 / 1e6;
        let mut maxima = [0.0f64; N_STAGE_FEATURES];
        for s in launch {
            let raw = raw_features(s, width_secs);
            for (m, v) in maxima.iter_mut().zip(raw) {
                *m = m.max(v);
            }
        }
        // Floors keep early ratios sane even for an empty/quiet launch:
        // 1 Mbps down, 100 pps down, 0.05 Mbps up, 5 pps up.
        let floors = [1.0, 100.0, 0.05, 5.0];
        let norms = std::array::from_fn(|i| {
            PeakNormalizer::new(maxima[i] * cfg.launch_peak_factor, floors[i])
        });
        let emas = std::array::from_fn(|_| Ema::new(cfg.alpha));
        StageFeatureExtractor {
            norms,
            emas,
            width_secs,
        }
    }

    /// Pushes one gameplay slot and returns `[down Mbps, down pps, up Mbps,
    /// up pps]` as EMA-smoothed fractions of the running peaks.
    pub fn push(&mut self, sample: &VolSample) -> [f64; N_STAGE_FEATURES] {
        let raw = raw_features(sample, self.width_secs);
        std::array::from_fn(|i| self.emas[i].push(self.norms[i].push(raw[i])))
    }

    /// Convenience: extract features for every slot of a gameplay series.
    pub fn extract_series(&mut self, series: &VolSeries) -> Vec<[f64; N_STAGE_FEATURES]> {
        series.samples.iter().map(|s| self.push(s)).collect()
    }
}

/// Raw absolute features of one slot: `[down Mbps, down pps, up Mbps, up pps]`.
pub fn raw_features(s: &VolSample, width_secs: f64) -> [f64; N_STAGE_FEATURES] {
    [
        s.down_bytes as f64 * 8.0 / width_secs / 1e6,
        s.down_pkts as f64 / width_secs,
        s.up_bytes as f64 * 8.0 / width_secs / 1e6,
        s.up_pkts as f64 / width_secs,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::units::MICROS_PER_SEC;

    fn sample(down_bytes: u64, down_pkts: u64, up_bytes: u64, up_pkts: u64) -> VolSample {
        VolSample {
            down_bytes,
            down_pkts,
            up_bytes,
            up_pkts,
        }
    }

    #[test]
    fn raw_features_convert_units() {
        // 1.25 MB in 1 s = 10 Mbps; 1000 pkts = 1000 pps.
        let f = raw_features(&sample(1_250_000, 1000, 125_000, 100), 1.0);
        assert!((f[0] - 10.0).abs() < 1e-9);
        assert!((f[1] - 1000.0).abs() < 1e-9);
        assert!((f[2] - 1.0).abs() < 1e-9);
        assert!((f[3] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn launch_seeds_the_peak() {
        let cfg = StageFeatureConfig {
            alpha: 1.0,
            launch_peak_factor: 1.5,
        };
        // Launch at 8 Mbps (1 MB/s); peak seeded to 12 Mbps.
        let launch = vec![sample(1_000_000, 900, 10_000, 5); 10];
        let mut ex = StageFeatureExtractor::new(&cfg, MICROS_PER_SEC, &launch);
        // Gameplay slot at 6 Mbps → 0.5 of the seeded peak.
        let f = ex.push(&sample(750_000, 700, 10_000, 50));
        assert!((f[0] - 0.5).abs() < 0.01, "down rel {}", f[0]);
    }

    #[test]
    fn peak_rises_with_gameplay() {
        let cfg = StageFeatureConfig {
            alpha: 1.0,
            launch_peak_factor: 1.5,
        };
        let launch = vec![sample(500_000, 400, 5_000, 5); 5];
        let mut ex = StageFeatureExtractor::new(&cfg, MICROS_PER_SEC, &launch);
        let first = ex.push(&sample(3_000_000, 2500, 20_000, 120));
        assert!(first[0] <= 1.0);
        // After the peak rose, a half-rate slot reads ~0.5.
        let second = ex.push(&sample(1_500_000, 1250, 10_000, 60));
        assert!((second[0] - 0.5).abs() < 0.05, "rel {}", second[0]);
    }

    #[test]
    fn ema_smooths_between_slots() {
        let cfg = StageFeatureConfig {
            alpha: 0.5,
            launch_peak_factor: 1.0,
        };
        let launch = vec![sample(1_000_000, 1000, 100_000, 100)];
        let mut ex = StageFeatureExtractor::new(&cfg, MICROS_PER_SEC, &launch);
        let a = ex.push(&sample(1_000_000, 1000, 100_000, 100));
        assert!((a[0] - 1.0).abs() < 1e-9);
        // Drop to zero: EMA holds half the previous value.
        let b = ex.push(&sample(0, 0, 0, 0));
        assert!((b[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_launch_uses_floors() {
        let cfg = StageFeatureConfig::default();
        let mut ex = StageFeatureExtractor::new(&cfg, MICROS_PER_SEC, &[]);
        let f = ex.push(&sample(125_000, 100, 1_000, 2));
        // 1 Mbps against the 1 Mbps floor → reaches (or raises) the peak.
        assert!(f[0] > 0.9, "down rel {}", f[0]);
    }

    #[test]
    fn extract_series_maps_all_slots() {
        let cfg = StageFeatureConfig::default();
        let mut ex = StageFeatureExtractor::new(&cfg, MICROS_PER_SEC, &[]);
        let series = VolSeries::from_samples(vec![sample(1, 1, 1, 1); 7], 0, MICROS_PER_SEC);
        assert_eq!(ex.extract_series(&series).len(), 7);
    }
}
