//! Packet-group labeling: full / steady / sparse (§4.2.1).
//!
//! Within each `T`-second time slot of the launch stage:
//!
//! * packets carrying the stream's maximum payload size are **full**;
//! * a remaining packet whose payload is within `±V` (relative) of the
//!   majority of its neighbouring non-full packets in the slot is
//!   **steady**;
//! * otherwise it is **sparse**.
//!
//! The neighbourhood is the adjacent packets by arrival order (up to two on
//! each side), which is what "compared to its adjacent packets" means
//! operationally: steady bands are *runs* of similar sizes, while sparse
//! packets disagree with whatever surrounds them.

use nettrace::packet::{Direction, Packet};
use nettrace::slots::SlotSeries;
use nettrace::units::Micros;
use serde::{Deserialize, Serialize};

/// The packet group of one downstream launch packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupLabel {
    /// Maximum-payload packets, constantly streamed.
    Full,
    /// Packets in a narrow payload band shared with their neighbours.
    Steady,
    /// Packets whose payloads vary freely against their neighbours.
    Sparse,
}

impl GroupLabel {
    /// All three groups in display order.
    pub const ALL: [GroupLabel; 3] = [GroupLabel::Full, GroupLabel::Steady, GroupLabel::Sparse];

    /// Short lowercase name used in attribute identifiers.
    pub fn short(&self) -> &'static str {
        match self {
            GroupLabel::Full => "full",
            GroupLabel::Steady => "steady",
            GroupLabel::Sparse => "sparse",
        }
    }
}

/// A packet together with its group label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledPacket {
    /// The packet (downstream).
    pub packet: Packet,
    /// Assigned group.
    pub label: GroupLabel,
}

/// How many neighbours on each side vote on steadiness.
const NEIGHBORHOOD: usize = 2;

/// Labels the downstream packets of the first `window` microseconds into
/// full/steady/sparse groups, slot by slot.
///
/// * `slot` — time-slot width `T` in microseconds;
/// * `v` — relative payload tolerance (the paper deploys `V = 10 %`).
///
/// The full-payload size is detected as the maximum downstream payload in
/// the window (with a 1-byte tolerance for encoder padding variation).
/// Upstream packets are ignored; output is sorted by arrival time.
pub fn label_groups(
    packets: &[Packet],
    window: Micros,
    slot: Micros,
    v: f64,
) -> Vec<LabeledPacket> {
    let down: Vec<Packet> = packets
        .iter()
        .copied()
        .filter(|p| p.dir == Direction::Downstream && p.ts < window)
        .collect();
    if down.is_empty() {
        return Vec::new();
    }
    let full_size = down.iter().map(|p| p.payload_len).max().expect("non-empty");

    let series = SlotSeries::new(down, 0, slot);
    let mut out = Vec::new();
    for view in series.iter() {
        // Partition the slot: full packets are labeled immediately, the
        // rest vote among themselves.
        let rest: Vec<Packet> = view
            .packets
            .iter()
            .copied()
            .filter(|p| !is_full(p, full_size))
            .collect();
        for p in view.packets {
            if is_full(p, full_size) {
                out.push(LabeledPacket {
                    packet: *p,
                    label: GroupLabel::Full,
                });
            }
        }
        for (i, p) in rest.iter().enumerate() {
            let label = if is_steady(&rest, i, v) {
                GroupLabel::Steady
            } else {
                GroupLabel::Sparse
            };
            out.push(LabeledPacket { packet: *p, label });
        }
    }
    out.sort_by_key(|lp| lp.packet.ts);
    out
}

fn is_full(p: &Packet, full_size: u32) -> bool {
    p.payload_len + 1 >= full_size
}

/// Majority vote among up to [`NEIGHBORHOOD`] adjacent packets per side:
/// steady iff more than half of the existing neighbours are within `±v`
/// (relative to this packet's size).
fn is_steady(rest: &[Packet], i: usize, v: f64) -> bool {
    let size = f64::from(rest[i].payload_len);
    let lo = i.saturating_sub(NEIGHBORHOOD);
    let hi = (i + NEIGHBORHOOD + 1).min(rest.len());
    let mut votes = 0usize;
    let mut neighbours = 0usize;
    for (j, q) in rest.iter().enumerate().take(hi).skip(lo) {
        if j == i {
            continue;
        }
        neighbours += 1;
        if (f64::from(q.payload_len) - size).abs() <= v * size {
            votes += 1;
        }
    }
    neighbours > 0 && 2 * votes > neighbours
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::units::MICROS_PER_SEC;

    const SLOT: Micros = MICROS_PER_SEC;
    const WINDOW: Micros = 5 * MICROS_PER_SEC;

    fn pkt(ts: Micros, len: u32) -> Packet {
        Packet::new(ts, Direction::Downstream, len)
    }

    #[test]
    fn full_packets_are_labeled_by_max_size() {
        let pkts = vec![pkt(0, 1432), pkt(10, 1432), pkt(20, 700)];
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        assert_eq!(labeled.len(), 3);
        assert_eq!(labeled[0].label, GroupLabel::Full);
        assert_eq!(labeled[1].label, GroupLabel::Full);
        assert_ne!(labeled[2].label, GroupLabel::Full);
    }

    #[test]
    fn steady_band_is_detected() {
        // A run of similar sizes (~500 ± 2 %) is steady.
        let pkts: Vec<Packet> = (0..20)
            .map(|i| pkt(i * 1000, 500 + (i % 3) as u32 * 8))
            .chain(std::iter::once(pkt(30_000, 1432)))
            .collect();
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        let steady = labeled
            .iter()
            .filter(|l| l.label == GroupLabel::Steady)
            .count();
        assert_eq!(steady, 20);
    }

    #[test]
    fn random_sizes_are_sparse() {
        // Wildly varying sizes among neighbours.
        let sizes = [100u32, 900, 250, 1200, 60, 700, 350, 1100];
        let pkts: Vec<Packet> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| pkt(i as u64 * 1000, s))
            .chain(std::iter::once(pkt(90_000, 1432)))
            .collect();
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        let sparse = labeled
            .iter()
            .filter(|l| l.label == GroupLabel::Sparse)
            .count();
        assert!(sparse >= 6, "sparse {sparse}");
    }

    #[test]
    fn tolerance_controls_the_boundary() {
        // Sizes drift by 12 % between neighbours: steady at V=20 %, sparse
        // at V=5 % (mirrors the paper's V tuning observations).
        let pkts: Vec<Packet> = (0..10)
            .map(|i| pkt(i * 1000, (400.0 * 1.12f64.powi((i % 2) as i32)) as u32))
            .chain(std::iter::once(pkt(20_000, 1432)))
            .collect();
        let loose = label_groups(&pkts, WINDOW, SLOT, 0.20);
        let tight = label_groups(&pkts, WINDOW, SLOT, 0.05);
        let steady =
            |ls: &[LabeledPacket]| ls.iter().filter(|l| l.label == GroupLabel::Steady).count();
        assert!(steady(&loose) >= 9, "loose {}", steady(&loose));
        assert_eq!(steady(&tight), 0);
    }

    #[test]
    fn voting_is_per_slot() {
        // Band in slot 0, random in slot 1 — the slot boundary isolates them.
        let mut pkts: Vec<Packet> = (0..10).map(|i| pkt(i * 1000, 600)).collect();
        let randoms = [100u32, 1200, 300, 900, 80, 1000];
        pkts.extend(
            randoms
                .iter()
                .enumerate()
                .map(|(i, &s)| pkt(SLOT + i as u64 * 1000, s)),
        );
        pkts.push(pkt(500, 1432));
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        for l in &labeled {
            if l.packet.ts < SLOT && l.packet.payload_len == 600 {
                assert_eq!(l.label, GroupLabel::Steady);
            }
            if l.packet.ts >= SLOT && l.packet.payload_len != 1432 {
                assert_eq!(l.label, GroupLabel::Sparse, "size {}", l.packet.payload_len);
            }
        }
    }

    #[test]
    fn upstream_and_out_of_window_are_ignored() {
        let pkts = vec![
            pkt(0, 1432),
            Packet::new(10, Direction::Upstream, 1432),
            pkt(WINDOW + 1, 1432),
        ];
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        assert_eq!(labeled.len(), 1);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(label_groups(&[], WINDOW, SLOT, 0.1).is_empty());
    }

    #[test]
    fn output_is_time_sorted() {
        let pkts = vec![pkt(5000, 1432), pkt(0, 300), pkt(2500, 1432)];
        let labeled = label_groups(&pkts, WINDOW, SLOT, 0.1);
        assert!(labeled.windows(2).all(|w| w[0].packet.ts <= w[1].packet.ts));
    }
}
