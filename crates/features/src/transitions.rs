//! Stage-transition accumulation (§4.3.2, Table 5).
//!
//! The gameplay-activity-pattern inferrer consumes a 3×3 matrix whose cell
//! `(from, to)` counts per-slot transitions between classified player
//! activity stages (including self-retention), normalized to probabilities
//! over the monitored duration. The nine normalized cells are the pattern
//! attributes; Table 5 reports their permutation importance.

use cgc_domain::Stage;
use serde::{Deserialize, Serialize};

/// Number of pattern attributes (3 × 3 transition cells).
pub const N_TRANSITION_FEATURES: usize = 9;

/// Streaming accumulator of per-slot stage transitions.
///
/// ```
/// use cgc_domain::Stage;
/// use cgc_features::transitions::TransitionAccumulator;
///
/// let acc = TransitionAccumulator::from_sequence(&[
///     Stage::Idle, Stage::Idle, Stage::Active,
/// ]);
/// let f = acc.features(); // [i→i, i→p, i→a, ...] normalized
/// assert_eq!(f[0], 0.5);  // idle→idle
/// assert_eq!(f[2], 0.5);  // idle→active
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionAccumulator {
    counts: [[u64; 3]; 3],
    last: Option<Stage>,
}

impl TransitionAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the stage classified for the next slot. Launch observations
    /// reset the chain (transitions across a launch are meaningless).
    pub fn push(&mut self, stage: Stage) {
        if stage == Stage::Launch {
            self.last = None;
            return;
        }
        if let (Some(prev), Some(a), Some(b)) = (
            self.last,
            self.last.and_then(Stage::class_id),
            stage.class_id(),
        ) {
            let _ = prev;
            self.counts[a][b] += 1;
        }
        self.last = Some(stage);
    }

    /// Raw transition counts (rows = from, cols = to, idle/passive/active).
    pub fn counts(&self) -> &[[u64; 3]; 3] {
        &self.counts
    }

    /// Total recorded transitions.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The nine transition probabilities (cells normalized by the total),
    /// in row-major order `[i→i, i→p, i→a, p→i, p→p, p→a, a→i, a→p, a→a]`.
    /// All zeros before any transition is recorded.
    pub fn features(&self) -> [f64; N_TRANSITION_FEATURES] {
        let total = self.total();
        let mut out = [0.0; N_TRANSITION_FEATURES];
        if total == 0 {
            return out;
        }
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                out[i * 3 + j] = c as f64 / total as f64;
            }
        }
        out
    }

    /// Row-conditional transition probabilities (each row sums to 1 when
    /// visited), the Fig. 5 presentation.
    pub fn row_probabilities(&self) -> [[f64; 3]; 3] {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in self.counts.iter().enumerate() {
            let sum: u64 = row.iter().sum();
            if sum > 0 {
                for (j, &c) in row.iter().enumerate() {
                    out[i][j] = c as f64 / sum as f64;
                }
            }
        }
        out
    }

    /// Builds an accumulator from a complete stage sequence.
    pub fn from_sequence(stages: &[Stage]) -> Self {
        let mut acc = Self::new();
        for &s in stages {
            acc.push(s);
        }
        acc
    }

    /// Human-readable names of the nine features, matching
    /// [`TransitionAccumulator::features`] order.
    pub fn feature_names() -> [&'static str; N_TRANSITION_FEATURES] {
        [
            "idle->idle",
            "idle->passive",
            "idle->active",
            "passive->idle",
            "passive->passive",
            "passive->active",
            "active->idle",
            "active->passive",
            "active->active",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_transitions_including_retention() {
        let acc = TransitionAccumulator::from_sequence(&[
            Stage::Idle,
            Stage::Idle,
            Stage::Active,
            Stage::Active,
            Stage::Passive,
        ]);
        assert_eq!(acc.total(), 4);
        assert_eq!(acc.counts()[0][0], 1); // idle->idle
        assert_eq!(acc.counts()[0][2], 1); // idle->active
        assert_eq!(acc.counts()[2][2], 1); // active->active
        assert_eq!(acc.counts()[2][1], 1); // active->passive
    }

    #[test]
    fn features_normalize_to_one() {
        let acc = TransitionAccumulator::from_sequence(&[
            Stage::Idle,
            Stage::Active,
            Stage::Idle,
            Stage::Active,
            Stage::Active,
        ]);
        let f = acc.features();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // idle->active occurred twice out of four transitions.
        assert!((f[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_all_zero() {
        let acc = TransitionAccumulator::new();
        assert_eq!(acc.total(), 0);
        assert_eq!(acc.features(), [0.0; 9]);
        assert_eq!(acc.row_probabilities(), [[0.0; 3]; 3]);
    }

    #[test]
    fn launch_resets_the_chain() {
        let mut acc = TransitionAccumulator::new();
        acc.push(Stage::Active);
        acc.push(Stage::Launch);
        acc.push(Stage::Idle);
        // No active->idle transition was recorded across the launch.
        assert_eq!(acc.total(), 0);
        acc.push(Stage::Idle);
        assert_eq!(acc.total(), 1);
        assert_eq!(acc.counts()[0][0], 1);
    }

    #[test]
    fn row_probabilities_condition_per_row() {
        let acc = TransitionAccumulator::from_sequence(&[
            Stage::Active,
            Stage::Active,
            Stage::Active,
            Stage::Passive,
        ]);
        let rp = acc.row_probabilities();
        // From active: 2/3 retention, 1/3 to passive.
        assert!((rp[2][2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rp[2][1] - 1.0 / 3.0).abs() < 1e-12);
        // Unvisited rows stay zero.
        assert_eq!(rp[0], [0.0; 3]);
    }

    #[test]
    fn single_observation_records_nothing() {
        let acc = TransitionAccumulator::from_sequence(&[Stage::Passive]);
        assert_eq!(acc.total(), 0);
    }

    #[test]
    fn feature_names_align_with_features() {
        let names = TransitionAccumulator::feature_names();
        assert_eq!(names.len(), 9);
        assert_eq!(names[6], "active->idle");
        let acc = TransitionAccumulator::from_sequence(&[Stage::Active, Stage::Idle]);
        let f = acc.features();
        assert_eq!(f[6], 1.0);
    }
}
