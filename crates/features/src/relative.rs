//! Peak-relative normalization and EMA smoothing (§4.3.1).
//!
//! Absolute volumetric levels differ per title and settings, but the
//! *relative* levels per player activity stage are consistent. Each
//! attribute is therefore expressed as a fraction of the peak value
//! observed so far, with the peak seeded during the game launch (above a
//! dynamically decided threshold) so the first gameplay slots already have
//! a meaningful denominator. Noisy short behaviours are damped with the
//! exponential moving average of Eq. 1:
//!
//! ```text
//! attr_t = α · attr_t + (1 − α) · attr_{t−1}
//! ```

use serde::{Deserialize, Serialize};

/// Streaming peak tracker producing peak-relative values.
///
/// ```
/// use cgc_features::relative::PeakNormalizer;
/// let mut norm = PeakNormalizer::new(20.0, 1.0); // seeded from the launch
/// assert_eq!(norm.push(10.0), 0.5);
/// assert_eq!(norm.push(40.0), 1.0);  // raises the peak
/// assert_eq!(norm.push(10.0), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeakNormalizer {
    peak: f64,
    floor: f64,
}

impl PeakNormalizer {
    /// Creates a normalizer seeded with a launch-derived peak estimate.
    /// `seed_peak` is clamped below by `floor` (the dynamic threshold that
    /// stops near-zero launch observations from exploding early ratios).
    pub fn new(seed_peak: f64, floor: f64) -> PeakNormalizer {
        PeakNormalizer {
            peak: seed_peak.max(floor),
            floor: floor.max(f64::MIN_POSITIVE),
        }
    }

    /// Feeds one observation and returns it as a fraction of the running
    /// peak, capped at 1 (the observation that raises the peak reads as 1).
    pub fn push(&mut self, value: f64) -> f64 {
        let v = value.max(0.0);
        if v > self.peak {
            self.peak = v;
        }
        (v / self.peak).min(1.0)
    }

    /// Current peak.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

/// Exponential moving average with current-observation weight `α` (Eq. 1).
///
/// ```
/// use cgc_features::relative::Ema;
/// let mut ema = Ema::new(0.4);
/// assert_eq!(ema.push(10.0), 10.0);       // first value initializes
/// assert_eq!(ema.push(0.0), 6.0);         // 0.4·0 + 0.6·10
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ema {
    alpha: f64,
    state: Option<f64>,
}

impl Ema {
    /// Creates an EMA with weight `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ema {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ema { alpha, state: None }
    }

    /// Feeds one observation, returning the smoothed value. The first
    /// observation initializes the state.
    pub fn push(&mut self, value: f64) -> f64 {
        let next = match self.state {
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        };
        self.state = Some(next);
        next
    }

    /// Current smoothed value, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// The α weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_tracks_peak() {
        let mut n = PeakNormalizer::new(10.0, 1.0);
        assert_eq!(n.push(5.0), 0.5);
        assert_eq!(n.push(20.0), 1.0); // raises the peak
        assert_eq!(n.peak(), 20.0);
        assert_eq!(n.push(5.0), 0.25);
    }

    #[test]
    fn floor_prevents_tiny_seeds() {
        let mut n = PeakNormalizer::new(0.0001, 1.0);
        assert_eq!(n.peak(), 1.0);
        assert_eq!(n.push(0.5), 0.5);
    }

    #[test]
    fn negative_observations_clamp_to_zero() {
        let mut n = PeakNormalizer::new(10.0, 1.0);
        assert_eq!(n.push(-3.0), 0.0);
        assert_eq!(n.peak(), 10.0);
    }

    #[test]
    fn ema_follows_eq1() {
        let mut e = Ema::new(0.4);
        assert_eq!(e.push(10.0), 10.0); // init
        let v = e.push(0.0);
        assert!((v - 6.0).abs() < 1e-12); // 0.4·0 + 0.6·10
        let v2 = e.push(0.0);
        assert!((v2 - 3.6).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_identity() {
        let mut e = Ema::new(1.0);
        e.push(5.0);
        assert_eq!(e.push(7.0), 7.0);
    }

    #[test]
    fn small_alpha_damps_spikes() {
        let mut slow = Ema::new(0.2);
        let mut fast = Ema::new(0.9);
        for _ in 0..20 {
            slow.push(1.0);
            fast.push(1.0);
        }
        // One-slot spike to 10.
        let s = slow.push(10.0);
        let f = fast.push(10.0);
        assert!(s < 3.0, "slow EMA spiked to {s}");
        assert!(f > 8.0, "fast EMA only reached {f}");
    }

    #[test]
    fn value_reports_state() {
        let mut e = Ema::new(0.5);
        assert_eq!(e.value(), None);
        e.push(2.0);
        assert_eq!(e.value(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_panics() {
        let _ = Ema::new(0.0);
    }
}
