//! # cgc-features — feature extraction for cloud gaming context classification
//!
//! Turns raw traffic observations into the attribute vectors the paper's
//! two classification processes consume:
//!
//! * [`groups`] — labels downstream launch-stage packets as **full**,
//!   **steady** or **sparse** per `T`-second time slot using the
//!   majority-voting rule with payload-variation tolerance `V` (§4.2.1).
//! * [`launch_attrs`] — the per-time-slot statistical attributes of the
//!   three packet groups (§4.2.2, Fig. 7): with the deployed `N = 5 s`,
//!   `T = 1 s` configuration this is the 51-attribute vector of Fig. 9.
//!   Also provides the plain flow-volumetric alternative the paper
//!   compares against in Table 3.
//! * [`relative`] — peak-relative normalization with a dynamically seeded
//!   peak and the EMA smoother of Eq. 1 (§4.3.1).
//! * [`vol_attrs`] — the streaming stage-feature extractor: per `I`-second
//!   slot, EMA-smoothed peak-relative `[down Mbps, down pps, up Mbps,
//!   up pps]`.
//! * [`transitions`] — the 3×3 stage-transition accumulator whose nine
//!   normalized cells are the gameplay-activity-pattern attributes
//!   (§4.3.2, Table 5).

#![warn(missing_docs)]

pub mod groups;
pub mod launch_attrs;
pub mod relative;
pub mod transitions;
pub mod vol_attrs;

pub use groups::{label_groups, GroupLabel, LabeledPacket};
pub use launch_attrs::{flow_volumetric_attributes, launch_attributes, LaunchAttrConfig};
pub use relative::{Ema, PeakNormalizer};
pub use transitions::TransitionAccumulator;
pub use vol_attrs::{StageFeatureConfig, StageFeatureExtractor};
