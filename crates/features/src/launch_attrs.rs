//! Launch-stage attribute vectors (§4.2.2, Fig. 7).
//!
//! For a window of `N` seconds sliced into `T`-second slots, the attribute
//! vector holds, per packet group *g* ∈ {full, steady, sparse}:
//!
//! * per slot *s*: `g_ct_sum[s]` (packet count), `g_sz_mean[s]` and
//!   `g_sz_std[s]` (payload-size statistics);
//! * over the whole window: `g_iat_mean`, `g_iat_std` (inter-arrival time
//!   statistics within the group, in milliseconds).
//!
//! With the deployed `N = 5 s`, `T = 1 s` this yields `3·5·3 + 3·2 = 51`
//! attributes — the vector whose permutation importance the paper plots in
//! Fig. 9. The flow-volumetric alternative of Table 3 (packet rate and
//! throughput per slot, no grouping) is provided for comparison.

use nettrace::packet::{Direction, Packet};
use nettrace::stats;
use nettrace::units::{secs_to_micros, Micros};
use serde::{Deserialize, Serialize};

use crate::groups::{label_groups, GroupLabel, LabeledPacket};

/// Configuration of the launch attribute extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchAttrConfig {
    /// Analysis window `N` in seconds from the first packet.
    pub window_secs: f64,
    /// Time-slot width `T` in seconds.
    pub slot_secs: f64,
    /// Payload variation tolerance `V` for group labeling (relative).
    pub v: f64,
}

impl Default for LaunchAttrConfig {
    /// The deployed configuration: `N = 5 s`, `T = 1 s`, `V = 10 %`.
    fn default() -> Self {
        LaunchAttrConfig {
            window_secs: 5.0,
            slot_secs: 1.0,
            v: 0.10,
        }
    }
}

impl LaunchAttrConfig {
    /// Number of slots in the window.
    pub fn n_slots(&self) -> usize {
        (self.window_secs / self.slot_secs).ceil() as usize
    }

    /// Total attribute count: `3 groups × (3 per-slot stats × slots + 2
    /// window IAT stats)`.
    pub fn n_attributes(&self) -> usize {
        3 * (3 * self.n_slots() + 2)
    }

    /// Window length in microseconds.
    pub fn window(&self) -> Micros {
        secs_to_micros(self.window_secs)
    }

    /// Slot width in microseconds.
    pub fn slot(&self) -> Micros {
        secs_to_micros(self.slot_secs)
    }

    /// Attribute names in vector order (e.g. `full_ct_sum[0]`,
    /// `steady_sz_mean[3]`, `sparse_iat_std`).
    pub fn attribute_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_attributes());
        for g in GroupLabel::ALL {
            for s in 0..self.n_slots() {
                names.push(format!("{}_ct_sum[{s}]", g.short()));
                names.push(format!("{}_sz_mean[{s}]", g.short()));
                names.push(format!("{}_sz_std[{s}]", g.short()));
            }
            names.push(format!("{}_iat_mean", g.short()));
            names.push(format!("{}_iat_std", g.short()));
        }
        names
    }
}

/// Extracts the packet-group attribute vector from the first `N` seconds of
/// a session's packets (timestamps relative to session start).
pub fn launch_attributes(packets: &[Packet], cfg: &LaunchAttrConfig) -> Vec<f64> {
    let labeled = label_groups(packets, cfg.window(), cfg.slot(), cfg.v);
    let n_slots = cfg.n_slots();
    let slot = cfg.slot();

    let mut out = Vec::with_capacity(cfg.n_attributes());
    for g in GroupLabel::ALL {
        let of_group: Vec<&LabeledPacket> = labeled.iter().filter(|l| l.label == g).collect();
        // Per-slot count/size stats.
        for s in 0..n_slots {
            let lo = s as u64 * slot;
            let hi = lo + slot;
            let sizes: Vec<f64> = of_group
                .iter()
                .filter(|l| l.packet.ts >= lo && l.packet.ts < hi)
                .map(|l| f64::from(l.packet.payload_len))
                .collect();
            out.push(sizes.len() as f64);
            out.push(stats::mean(&sizes));
            out.push(stats::std_dev(&sizes));
        }
        // Window-wide inter-arrival stats, milliseconds.
        let times: Vec<f64> = of_group.iter().map(|l| l.packet.ts as f64 / 1e3).collect();
        let iats = stats::diffs(&times);
        out.push(stats::mean(&iats));
        out.push(stats::std_dev(&iats));
    }
    out
}

/// The Table 3 baseline: plain flow-volumetric attributes over the same
/// window — per slot, downstream packet count and downstream kilobytes
/// (packet rate and throughput, no packet grouping). `2 × slots` values.
pub fn flow_volumetric_attributes(packets: &[Packet], cfg: &LaunchAttrConfig) -> Vec<f64> {
    let n_slots = cfg.n_slots();
    let slot = cfg.slot();
    let window = cfg.window();
    let mut counts = vec![0.0f64; n_slots];
    let mut bytes = vec![0.0f64; n_slots];
    for p in packets {
        if p.dir != Direction::Downstream || p.ts >= window {
            continue;
        }
        let s = (p.ts / slot) as usize;
        if s < n_slots {
            counts[s] += 1.0;
            bytes[s] += f64::from(p.wire_len()) / 1e3;
        }
    }
    let mut out = Vec::with_capacity(2 * n_slots);
    for s in 0..n_slots {
        out.push(counts[s]);
        out.push(bytes[s]);
    }
    out
}

/// Names for the flow-volumetric attributes.
pub fn flow_volumetric_names(cfg: &LaunchAttrConfig) -> Vec<String> {
    (0..cfg.n_slots())
        .flat_map(|s| [format!("pkt_rate[{s}]"), format!("kbytes[{s}]")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::units::MICROS_PER_SEC;

    fn pkt(ts: Micros, len: u32) -> Packet {
        Packet::new(ts, Direction::Downstream, len)
    }

    #[test]
    fn default_config_gives_51_attributes() {
        let cfg = LaunchAttrConfig::default();
        assert_eq!(cfg.n_slots(), 5);
        assert_eq!(cfg.n_attributes(), 51);
        let names = cfg.attribute_names();
        assert_eq!(names.len(), 51);
        assert_eq!(names[0], "full_ct_sum[0]");
        assert_eq!(names[16], "full_iat_std");
        assert!(names.contains(&"sparse_iat_mean".to_string()));
        // Names are unique.
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 51);
    }

    #[test]
    fn vector_length_matches_config() {
        for (n, t) in [(5.0, 1.0), (3.0, 0.5), (10.0, 2.0), (2.0, 0.1)] {
            let cfg = LaunchAttrConfig {
                window_secs: n,
                slot_secs: t,
                v: 0.1,
            };
            let pkts: Vec<Packet> = (0..100).map(|i| pkt(i * 20_000, 1432)).collect();
            let attrs = launch_attributes(&pkts, &cfg);
            assert_eq!(attrs.len(), cfg.n_attributes());
            assert_eq!(cfg.attribute_names().len(), attrs.len());
        }
    }

    #[test]
    fn full_counts_land_in_right_slots() {
        let cfg = LaunchAttrConfig::default();
        // 10 full packets in slot 0, 5 in slot 2.
        let mut pkts: Vec<Packet> = (0..10).map(|i| pkt(i * 1000, 1432)).collect();
        pkts.extend((0..5).map(|i| pkt(2 * MICROS_PER_SEC + i * 1000, 1432)));
        let attrs = launch_attributes(&pkts, &cfg);
        let names = cfg.attribute_names();
        let at = |n: &str| attrs[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(at("full_ct_sum[0]"), 10.0);
        assert_eq!(at("full_ct_sum[1]"), 0.0);
        assert_eq!(at("full_ct_sum[2]"), 5.0);
        assert_eq!(at("full_sz_mean[0]"), 1432.0);
        assert_eq!(at("full_sz_std[0]"), 0.0);
    }

    #[test]
    fn steady_band_statistics() {
        let cfg = LaunchAttrConfig::default();
        // Full anchor + a 600-byte band in slot 1.
        let mut pkts = vec![pkt(0, 1432)];
        pkts.extend((0..8).map(|i| pkt(MICROS_PER_SEC + i * 10_000, 600)));
        let attrs = launch_attributes(&pkts, &cfg);
        let names = cfg.attribute_names();
        let at = |n: &str| attrs[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(at("steady_ct_sum[1]"), 8.0);
        assert_eq!(at("steady_sz_mean[1]"), 600.0);
        // Band IAT: 10 ms gaps.
        assert!((at("steady_iat_mean") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_yields_zero_vector() {
        let cfg = LaunchAttrConfig::default();
        let attrs = launch_attributes(&[], &cfg);
        assert_eq!(attrs.len(), 51);
        assert!(attrs.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn flow_volumetric_shape_and_values() {
        let cfg = LaunchAttrConfig::default();
        let pkts = vec![pkt(0, 946), pkt(100, 946), pkt(MICROS_PER_SEC, 446)];
        let attrs = flow_volumetric_attributes(&pkts, &cfg);
        assert_eq!(attrs.len(), 10);
        assert_eq!(attrs[0], 2.0); // slot 0 count
        assert!((attrs[1] - 2.0).abs() < 1e-9); // slot 0 KB (2 × 1000 B wire)
        assert_eq!(attrs[2], 1.0); // slot 1 count
        assert_eq!(flow_volumetric_names(&cfg).len(), 10);
    }

    #[test]
    fn attributes_are_settings_stable_for_sizes() {
        // Same structure at different densities: size means stay, counts
        // scale — mirroring what makes the grouping robust across settings.
        let cfg = LaunchAttrConfig::default();
        let mk = |density: u64| -> Vec<f64> {
            let mut pkts = Vec::new();
            for i in 0..(50 * density) {
                pkts.push(pkt(i * (20_000 / density), 1432));
            }
            for i in 0..20 {
                pkts.push(pkt(i * 25_000, 500));
            }
            launch_attributes(&pkts, &cfg)
        };
        let a = mk(1);
        let b = mk(2);
        let names = cfg.attribute_names();
        let idx = |n: &str| names.iter().position(|x| x == n).unwrap();
        assert!(b[idx("full_ct_sum[0]")] > 1.5 * a[idx("full_ct_sum[0]")]);
        assert_eq!(a[idx("steady_sz_mean[0]")], b[idx("steady_sz_mean[0]")]);
    }
}
