//! Table 2 — the lab traffic capture matrix: eight device/OS/software
//! configurations, 531 sessions, 67 hours. Prints the target matrix and
//! verifies a generated lab dataset realizes it.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_table2
//! ```

use cgc_deploy::report::{f, table, write_json};
use cgc_domain::settings::LAB_CONFIGS;
use gamesim::{lab_dataset, LabDatasetConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    os: String,
    software: String,
    resolutions: String,
    sessions: usize,
    playtime_hours: f64,
    generated_sessions: usize,
}

fn main() {
    println!("== Table 2: lab capture matrix ==\n");

    // Generate a (time-scaled) lab dataset and count sessions per row.
    let ds = lab_dataset(&LabDatasetConfig {
        sessions: 531,
        gameplay_secs: 60.0, // time-scaled: statistics, not wall-clock
        ..Default::default()
    });

    let rows: Vec<Row> = LAB_CONFIGS
        .iter()
        .map(|c| {
            let generated = ds
                .iter()
                .filter(|s| {
                    s.settings.device == c.device
                        && s.settings.os == c.os
                        && s.settings.software == c.software
                })
                .count();
            Row {
                device: format!("{:?}", c.device),
                os: format!("{:?}", c.os),
                software: format!("{:?}", c.software),
                resolutions: format!("{}-{}", c.res_max, c.res_min),
                sessions: c.sessions,
                playtime_hours: c.playtime_hours,
                generated_sessions: generated,
            }
        })
        .collect();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.os.clone(),
                r.software.clone(),
                r.resolutions.clone(),
                r.sessions.to_string(),
                f(r.playtime_hours, 1),
                r.generated_sessions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Device",
                "OS",
                "Software",
                "Streaming settings",
                "#Sessions",
                "Playtime (h)",
                "#Generated"
            ],
            &printable
        )
    );
    let total: usize = rows.iter().map(|r| r.sessions).sum();
    let hours: f64 = rows.iter().map(|r| r.playtime_hours).sum();
    let generated: usize = rows.iter().map(|r| r.generated_sessions).sum();
    println!("Totals: {total} target sessions, {hours:.1} h (paper: 531 / 67 h); generated {generated} sessions");

    if let Ok(p) = write_json("table2", &rows) {
        println!("\nwrote {}", p.display());
    }
}
