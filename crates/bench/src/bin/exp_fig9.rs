//! Figure 9 — permutation importance of the 51 launch attributes in the
//! best-performing Random Forest title classifier, grouped by packet group
//! (full/steady/sparse) and metric (count/size/inter-arrival time).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig9
//! ```

use cgc_bench::{default_forest, deployed_attr_config, eval_title, AttrKind, LaunchCorpus};
use cgc_deploy::report::{f, table, write_json};
use mlcore::importance::permutation_importance_grouped;
use mlcore::permutation_importance;
use serde::Serialize;

#[derive(Serialize)]
struct Attr {
    name: String,
    group: String,
    metric: String,
    importance: f64,
}

fn main() {
    println!("== Figure 9: permutation importance of the 51 launch attributes ==\n");
    let corpus = LaunchCorpus::generate(25, 40, 5.5, 9);
    let cfg = deployed_attr_config();
    let eval = eval_title(&corpus, &cfg, AttrKind::PacketGroup, &default_forest(), 2);
    let imp = permutation_importance(&eval.forest, &eval.test, 12, 17);

    let names = cfg.attribute_names();
    let mut attrs: Vec<Attr> = names
        .iter()
        .zip(&imp)
        .map(|(n, &v)| {
            let group = n.split('_').next().unwrap_or("?").to_string();
            let metric = if n.contains("_ct_") {
                "count"
            } else if n.contains("_sz_") {
                "size"
            } else {
                "iat"
            };
            Attr {
                name: n.clone(),
                group,
                metric: metric.to_string(),
                importance: v,
            }
        })
        .collect();

    let mut sorted: Vec<&Attr> = attrs.iter().collect();
    sorted.sort_by(|a, b| b.importance.partial_cmp(&a.importance).unwrap());
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .take(15)
        .map(|a| {
            vec![
                a.name.clone(),
                a.group.clone(),
                a.metric.clone(),
                f(a.importance, 4),
            ]
        })
        .collect();
    println!("Top 15 attributes:");
    println!(
        "{}",
        table(&["attribute", "group", "metric", "importance"], &rows)
    );

    let near_zero: Vec<&Attr> = attrs.iter().filter(|a| a.importance < 2e-4).collect();
    let nz_full = near_zero.iter().filter(|a| a.group == "full").count();
    let nz_steady = near_zero.iter().filter(|a| a.group == "steady").count();
    let nz_sparse = near_zero.iter().filter(|a| a.group == "sparse").count();
    println!(
        "Attributes with ~zero importance: {} total ({} full, {} steady, {} sparse)",
        near_zero.len(),
        nz_full,
        nz_steady,
        nz_sparse
    );
    let full_size_zero = attrs
        .iter()
        .filter(|a| a.group == "full" && a.metric == "size")
        .all(|a| a.importance < 2e-4);
    println!(
        "Shape check vs paper: the paper finds 8 zero-importance attributes,\nseven of them full-group; in our run every full-group *size* attribute is\nstructurally zero (mean = max payload, std = 0): {full_size_zero}."
    );
    // Individual importances under-report because the 51 attributes are
    // highly redundant (shuffling one leaves fifty carrying the signal),
    // so also measure *joint* group importance: all attributes of a packet
    // group permuted together.
    let groups: Vec<Vec<usize>> = ["full", "steady", "sparse"]
        .iter()
        .map(|g| {
            names
                .iter()
                .enumerate()
                .filter(|(_, n)| n.starts_with(g))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let joint = permutation_importance_grouped(&eval.forest, &eval.test, &groups, 8, 23);
    println!(
        "
Joint (group-wise) permutation importance:"
    );
    for (g, v) in ["full", "steady", "sparse"].iter().zip(&joint) {
        println!("  {g:<8} {}", f(*v, 3));
    }

    attrs.sort_by(|a, b| a.name.cmp(&b.name));
    if let Ok(p) = write_json("fig9", &attrs) {
        println!("\nwrote {}", p.display());
    }
}
