//! Merge + adaptive-batching performance snapshot — the regenerator for
//! `BENCH_ingest_merge.json`.
//!
//! Three measurements:
//!
//! 1. **K-way merge throughput** — records/s through
//!    [`cgc_ingest::merge_sources`] for a 256 Ki-record feed split 1, 2,
//!    4 and 8 ways (1-way is the pass-through baseline).
//! 2. **Hand-off tail latency under a bursty schedule** — a burst lands
//!    in the ingest queues all at once and the router drains it into the
//!    partitioned per-shard dispatch that `MonitorSink` performs
//!    (`ShardedTapMonitor::ingest_batch`): every record's latency is the
//!    time from burst arrival to the completion of the dispatch that
//!    delivered it. Reported as p50/p90/p99/max per batch policy.
//! 3. **Steady-schedule throughput** — the same drain path fed in
//!    shallow matched-rate chunks, where the adaptive policy sits at its
//!    small-batch end; adaptive must not regress against any fixed size.
//!
//! The drain harness replicates the engine's router sweep (depth-sampled
//! batch sizing, depth gauge, batch-size histogram, partition + one
//! queue push per shard) **single-threaded**: it measures the CPU path a
//! dedicated-core router executes, deterministically. The threaded
//! engine is exercised by `benches/ingest.rs` and the e2e tests; on a
//! small CI box a threaded latency distribution measures the scheduler,
//! not the policy.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin bench_ingest_merge
//! ```
//!
//! Writes `BENCH_ingest_merge.json` at the repository root (override the
//! output path with the first CLI argument).

use std::time::Instant;

use cgc_core::shard::TapRecord;
use cgc_ingest::{
    merge_sources, split_round_robin, BackpressurePolicy, BatchPolicy, BoundedQueue, MergeConfig,
    MergeSource,
};
use cgc_obs::Registry;
use nettrace::packet::FiveTuple;
use serde::Serialize;

/// Synthetic tap feed: `n` records spread over 16 flows, 10 µs apart.
fn records(n: usize) -> Vec<TapRecord> {
    (0..n)
        .map(|i| {
            let tuple = FiveTuple::udp_v4(
                [10, 0, 0, 1],
                49003,
                [100, 64, 0, (i % 16) as u8],
                50_000 + (i % 16) as u16,
            );
            (i as u64 * 10, tuple, 1_200u32)
        })
        .collect()
}

#[derive(Serialize)]
struct MergeThroughput {
    ways: usize,
    records: usize,
    records_per_sec: f64,
}

fn merge_throughput(feed: &[TapRecord], ways: usize, repeats: usize) -> MergeThroughput {
    let mut best = f64::MIN;
    for _ in 0..repeats {
        let sources: Vec<MergeSource> = split_round_robin(feed, ways)
            .into_iter()
            .enumerate()
            .map(|(i, part)| MergeSource::new(format!("s{i}"), part))
            .collect();
        let start = Instant::now();
        let (out, stats) = merge_sources(sources, &MergeConfig::default(), None);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), feed.len());
        assert_eq!(stats.late_total(), 0);
        best = best.max(feed.len() as f64 / secs);
    }
    MergeThroughput {
        ways,
        records: feed.len(),
        records_per_sec: best,
    }
}

fn policy_name(policy: BatchPolicy) -> String {
    match policy {
        BatchPolicy::Fixed(n) => format!("fixed_{n}"),
        BatchPolicy::Adaptive { min, max } => format!("adaptive_{min}_{max}"),
    }
}

/// The policies under comparison. `fixed_32` is the matched baseline:
/// the adaptive default's `min` is 32, so a fixed policy must use 32 to
/// deliver the same trickle-rate hand-off latency — the bursty schedule
/// then shows what depth-tracking buys on top. `fixed_1024` is the old
/// router default, `fixed_8192` the throughput-tuned end.
fn policies() -> [BatchPolicy; 4] {
    [
        BatchPolicy::Fixed(32),
        BatchPolicy::Fixed(1_024),
        BatchPolicy::Fixed(8_192),
        BatchPolicy::default(),
    ]
}

/// Single-threaded replica of one router drain: sweeps `queues` with the
/// engine's depth-sampled batch sizing and hands each batch to the
/// partitioned per-shard dispatch (`ingest_batch`'s cost profile: flush
/// check, partition by shard hash, one lock-free queue push per
/// non-empty shard). Returns `(dispatch_instant_ns, record_count)` per
/// dispatch, timed from `start`.
struct DrainHarness {
    queues: Vec<BoundedQueue<TapRecord>>,
    dispatch: Vec<BoundedQueue<Vec<TapRecord>>>,
    shards: usize,
    buf: Vec<TapRecord>,
    depth_gauges: Vec<std::sync::Arc<cgc_obs::Gauge>>,
    shard_gauges: Vec<std::sync::Arc<cgc_obs::Gauge>>,
    batch_hist: std::sync::Arc<cgc_obs::Histogram>,
}

impl DrainHarness {
    fn new(queues: usize, shards: usize, registry: &Registry) -> Self {
        DrainHarness {
            queues: (0..queues)
                .map(|_| BoundedQueue::with_capacity(1 << 17))
                .collect(),
            dispatch: (0..shards)
                .map(|_| BoundedQueue::with_capacity(1 << 13))
                .collect(),
            shards,
            buf: Vec::with_capacity(1 << 13),
            depth_gauges: (0..queues)
                .map(|i| {
                    registry.gauge_with("bench_queue_depth", "probe", &[("q", &i.to_string())])
                })
                .collect(),
            shard_gauges: (0..shards)
                .map(|i| {
                    registry.gauge_with("bench_shard_depth", "probe", &[("s", &i.to_string())])
                })
                .collect(),
            batch_hist: registry.histogram("bench_batch_size", "probe"),
        }
    }

    fn push(&self, record: TapRecord) {
        let q = record.1.shard(self.queues.len());
        self.queues[q].push(record, BackpressurePolicy::Block);
    }

    /// One router sweep; returns records dispatched.
    fn sweep(&mut self, policy: BatchPolicy, start: Instant, log: &mut Vec<(u64, usize)>) -> usize {
        let mut handed = 0;
        for qi in 0..self.queues.len() {
            let target = policy.size_for(self.queues[qi].len());
            self.buf.clear();
            while self.buf.len() < target {
                match self.queues[qi].try_pop() {
                    Some(r) => self.buf.push(r),
                    None => break,
                }
            }
            self.depth_gauges[qi].set(self.queues[qi].len() as i64);
            if self.buf.is_empty() {
                continue;
            }
            self.batch_hist.record(self.buf.len() as u64);
            // MonitorSink's partitioned dispatch, cost for cost:
            // partition by shard hash, then one push per shard.
            let mut parts: Vec<Vec<TapRecord>> = (0..self.shards)
                .map(|_| Vec::with_capacity(self.buf.len() / self.shards + 16))
                .collect();
            for &(ts, tuple, len) in &self.buf {
                parts[tuple.shard(self.shards)].push((ts, tuple, len));
            }
            for (shard, part) in parts.into_iter().enumerate() {
                if !part.is_empty() {
                    // Matches `ingest_batch`: depth gauge bump, then the
                    // per-shard send.
                    self.shard_gauges[shard].inc();
                    self.dispatch[shard].push(part, BackpressurePolicy::Block);
                }
            }
            handed += self.buf.len();
            log.push((start.elapsed().as_nanos() as u64, self.buf.len()));
        }
        handed
    }

    /// Empties the dispatch queues between runs (the "workers").
    fn drain_dispatch(&self) -> usize {
        let mut n = 0;
        for q in &self.dispatch {
            while let Some(part) = q.try_pop() {
                n += part.len();
            }
        }
        n
    }
}

#[derive(Serialize, Clone)]
struct LatencyProfile {
    policy: String,
    records: usize,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Bursty schedule: `burst` records land in the queues at once; the
/// router drains them dry. Each record's hand-off latency is the elapsed
/// time from burst arrival to the completion of the dispatch that
/// delivered it. Best-of-`reps` (lowest p99) to shed scheduler noise.
fn bursty_latency(policy: BatchPolicy, burst: usize, reps: usize) -> LatencyProfile {
    let feed = records(burst);
    let registry = Registry::new();
    let mut harness = DrainHarness::new(2, 4, &registry);
    let mut best: Option<Vec<u64>> = None;
    for _ in 0..reps {
        for r in &feed {
            harness.push(*r);
        }
        let start = Instant::now();
        let mut log: Vec<(u64, usize)> = Vec::with_capacity(burst / 16);
        let mut total = 0;
        while total < burst {
            total += harness.sweep(policy, start, &mut log);
        }
        assert_eq!(harness.drain_dispatch(), burst, "no record lost");
        let mut lat: Vec<u64> = Vec::with_capacity(burst);
        for (t, n) in log {
            lat.extend(std::iter::repeat_n(t, n));
        }
        lat.sort_unstable();
        let better = match &best {
            None => true,
            Some(b) => percentile(&lat, 0.99) < percentile(b, 0.99),
        };
        if better {
            best = Some(lat);
        }
    }
    let lat = best.expect("at least one rep");
    LatencyProfile {
        policy: policy_name(policy),
        records: lat.len(),
        p50_us: percentile(&lat, 0.50),
        p90_us: percentile(&lat, 0.90),
        p99_us: percentile(&lat, 0.99),
        max_us: percentile(&lat, 1.0),
    }
}

#[derive(Serialize)]
struct SteadyThroughput {
    policy: String,
    records: usize,
    records_per_sec: f64,
}

/// Steady schedule: records arrive in shallow matched-rate chunks (the
/// queue never builds a deep backlog), so the adaptive policy operates
/// at its small-batch end. Throughput must not regress vs any fixed size.
fn steady_throughput(policy: BatchPolicy, n: usize, reps: usize) -> SteadyThroughput {
    const CHUNK: usize = 512;
    let feed = records(n);
    let registry = Registry::new();
    let mut harness = DrainHarness::new(2, 4, &registry);
    let mut best = f64::MIN;
    for _ in 0..reps {
        let start = Instant::now();
        let mut log: Vec<(u64, usize)> = Vec::new();
        let mut pushed = 0;
        let mut handed = 0;
        let mut delivered = 0;
        while handed < n {
            if pushed < n {
                let next = (pushed + CHUNK).min(n);
                for r in &feed[pushed..next] {
                    harness.push(*r);
                }
                pushed = next;
            }
            // Matched rate: the router catches up to each chunk before
            // the next one arrives, so the queue stays shallow and the
            // adaptive policy operates at its small-batch end.
            loop {
                let got = harness.sweep(policy, start, &mut log);
                handed += got;
                log.clear();
                if got == 0 {
                    break;
                }
            }
            // The shard workers keep pace on the steady schedule.
            delivered += harness.drain_dispatch();
        }
        let secs = start.elapsed().as_secs_f64();
        delivered += harness.drain_dispatch();
        assert_eq!(delivered, n);
        best = best.max(n as f64 / secs);
    }
    SteadyThroughput {
        policy: policy_name(policy),
        records: n,
        records_per_sec: best,
    }
}

#[derive(Serialize)]
struct Snapshot {
    merge_throughput: Vec<MergeThroughput>,
    bursty_schedule: BurstySchedule,
    bursty_latency: Vec<LatencyProfile>,
    adaptive_p99_improvement_pct_vs_fixed: f64,
    steady_throughput: Vec<SteadyThroughput>,
}

#[derive(Serialize)]
struct BurstySchedule {
    burst_size: usize,
    queues: usize,
    shards: usize,
    backpressure: String,
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest_merge.json".into());

    // 1. K-way merge throughput.
    let feed = records(262_144);
    let mut merge_tp = Vec::new();
    for ways in [1usize, 2, 4, 8] {
        let m = merge_throughput(&feed, ways, 5);
        eprintln!(
            "merge {}-way: {:.1}M records/s",
            m.ways,
            m.records_per_sec / 1e6
        );
        merge_tp.push(m);
    }

    // 2. Bursty hand-off tail latency, adaptive vs fixed drain_batch.
    const BURST: usize = 65_536;
    let mut bursty = Vec::new();
    for policy in policies() {
        let profile = bursty_latency(policy, BURST, 7);
        eprintln!(
            "bursty {:>18}: p50 {:>8.1} µs  p90 {:>8.1} µs  p99 {:>8.1} µs  max {:>9.1} µs",
            profile.policy, profile.p50_us, profile.p90_us, profile.p99_us, profile.max_us
        );
        bursty.push(profile);
    }
    let fixed_p99 = bursty[0].p99_us;
    let adaptive_p99 = bursty.last().unwrap().p99_us;
    let improvement = (1.0 - adaptive_p99 / fixed_p99) * 100.0;
    eprintln!(
        "adaptive p99 improvement vs {}: {improvement:.1}%",
        bursty[0].policy
    );

    // 3. Steady throughput: adaptive must not regress.
    let mut steady = Vec::new();
    for policy in policies() {
        let s = steady_throughput(policy, 1 << 20, 5);
        eprintln!(
            "steady {:>18}: {:.1}M records/s",
            s.policy,
            s.records_per_sec / 1e6
        );
        steady.push(s);
    }

    let snapshot = Snapshot {
        merge_throughput: merge_tp,
        bursty_schedule: BurstySchedule {
            burst_size: BURST,
            queues: 2,
            shards: 4,
            backpressure: "block".into(),
        },
        bursty_latency: bursty,
        adaptive_p99_improvement_pct_vs_fixed: improvement,
        steady_throughput: steady,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out, json + "\n").expect("write snapshot");
    eprintln!("wrote {out}");
}
