//! Figure 12 — average downstream throughput per game streaming session,
//! (a) per classified title and (b) per inferred pattern for unknown
//! titles. Sessions under 1 Mbps are excluded (network-starved), as in the
//! paper.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig12
//! ```

use cgc_bench::cached_fleet;
use cgc_deploy::aggregate::{bandwidth_by_pattern, bandwidth_by_title};
use cgc_deploy::report::{f, table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    by_title: Vec<cgc_deploy::aggregate::BandwidthProfile>,
    by_pattern: Vec<cgc_deploy::aggregate::BandwidthProfile>,
}

fn main() {
    println!("== Figure 12: session throughput distributions ==\n");
    let records = cached_fleet();
    let by_title = bandwidth_by_title(&records);
    let by_pattern = bandwidth_by_pattern(&records);

    let render = |profiles: &[cgc_deploy::aggregate::BandwidthProfile]| {
        let rows: Vec<Vec<String>> = profiles
            .iter()
            .filter(|p| p.sessions > 0)
            .map(|p| {
                vec![
                    p.context.clone(),
                    p.sessions.to_string(),
                    f(p.min_mbps, 1),
                    f(p.p25_mbps, 1),
                    f(p.median_mbps, 1),
                    f(p.p75_mbps, 1),
                    f(p.max_mbps, 1),
                ]
            })
            .collect();
        table(
            &[
                "Context",
                "#Sess",
                "min",
                "p25",
                "median",
                "p75",
                "max (Mbps)",
            ],
            &rows,
        )
    };

    println!("(a) per classified title:");
    println!("{}", render(&by_title));
    println!("(b) per inferred pattern (unknown titles):");
    println!("{}", render(&by_pattern));

    let get = |name: &str| {
        by_title
            .iter()
            .find(|p| p.context == name && p.sessions > 0)
    };
    if let (Some(hearth), Some(bg)) = (get("Hearthstone"), get("Baldur's Gate 3")) {
        println!(
            "Shape check vs paper: Hearthstone maxes out around {} Mbps (paper ~20)\nwhile Baldur's Gate reaches {} Mbps (paper ~68).",
            f(hearth.max_mbps, 0),
            f(bg.max_mbps, 0)
        );
    }
    if let Some(d2) = get("Destiny 2") {
        println!(
            "Destiny 2 spans {}-{} Mbps across its settings clusters (paper: 8-47).",
            f(d2.min_mbps, 0),
            f(d2.max_mbps, 0)
        );
    }

    let out = Output {
        by_title,
        by_pattern,
    };
    if let Ok(p) = write_json("fig12", &out) {
        println!("\nwrote {}", p.display());
    }
}
