//! Figure 15 (Appendix C.2) — hyperparameter grids for the gameplay
//! activity pattern classifiers over the nine transition attributes.
//! Paper's best: RF 96.5 % (100 trees, depth 10-30), SVM 95.9 %,
//! KNN 93.7 % — closer together than Fig. 14 because the attribute space
//! is only 9-dimensional.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig15
//! ```

use cgc_deploy::report::{f, table, write_json};
use cgc_deploy::train::{pattern_dataset, TrainConfig};
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::knn::{DistanceMetric, Knn};
use mlcore::metrics::accuracy;
use mlcore::scale::StandardScaler;
use mlcore::svm::{Kernel, SvmConfig, SvmOvr};
use mlcore::{Classifier, Dataset};
use serde::Serialize;

#[derive(Serialize)]
struct GridCell {
    model: String,
    param_a: String,
    param_b: String,
    accuracy: f64,
}

fn eval<C: Classifier>(clf: &C, test: &Dataset) -> f64 {
    accuracy(&test.y, &clf.predict_batch(&test.x))
}

fn main() {
    println!("== Figure 15: hyperparameter grids for pattern classification ==\n");
    let data = pattern_dataset(&TrainConfig {
        pattern_sessions: 60,
        ..Default::default()
    });
    let (train, test) = data.stratified_split(0.3, 15);
    let scaler = StandardScaler::fit(&train);
    let train_s = scaler.transform_dataset(&train);
    let test_s = scaler.transform_dataset(&test);

    let mut cells = Vec::new();

    println!("Random Forest (rows: trees, cols: max depth):");
    let trees = [10usize, 50, 100, 200, 500];
    let depths = [3usize, 5, 10, 30];
    let mut rows = Vec::new();
    for &n in &trees {
        let mut row = vec![n.to_string()];
        for &d in &depths {
            let m = RandomForest::fit(
                &train,
                &RandomForestConfig {
                    n_trees: n,
                    max_depth: d,
                    seed: 5,
                    ..Default::default()
                },
            );
            let acc = eval(&m, &test);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "RF".into(),
                param_a: format!("trees={n}"),
                param_b: format!("depth={d}"),
                accuracy: acc,
            });
        }
        rows.push(row);
    }
    println!("{}", table(&["trees\\depth", "3", "5", "10", "30"], &rows));

    println!("SVM (rows: C, cols: kernel):");
    let cs = [0.1, 1.0, 10.0];
    let kernels = [
        ("linear", Kernel::Linear),
        ("rbf g=0.2", Kernel::Rbf { gamma: 0.2 }),
        ("rbf g=1", Kernel::Rbf { gamma: 1.0 }),
        ("rbf g=5", Kernel::Rbf { gamma: 5.0 }),
    ];
    let mut rows = Vec::new();
    for &c in &cs {
        let mut row = vec![format!("{c}")];
        for (name, k) in &kernels {
            let m = SvmOvr::fit(
                &train_s,
                &SvmConfig {
                    c,
                    kernel: *k,
                    ..Default::default()
                },
            );
            let acc = eval(&m, &test_s);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "SVM".into(),
                param_a: format!("C={c}"),
                param_b: name.to_string(),
                accuracy: acc,
            });
        }
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &["C\\kernel", "linear", "rbf g=0.2", "rbf g=1", "rbf g=5"],
            &rows
        )
    );

    println!("KNN (rows: k, cols: metric):");
    let ks = [1usize, 3, 5, 9, 15];
    let metrics = [
        ("euclidean", DistanceMetric::Euclidean),
        ("manhattan", DistanceMetric::Manhattan),
    ];
    let mut rows = Vec::new();
    for &k in &ks {
        let mut row = vec![k.to_string()];
        for (name, m) in &metrics {
            let clf = Knn::fit(&train_s, k, *m);
            let acc = eval(&clf, &test_s);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "KNN".into(),
                param_a: format!("k={k}"),
                param_b: name.to_string(),
                accuracy: acc,
            });
        }
        rows.push(row);
    }
    println!("{}", table(&["k\\metric", "euclidean", "manhattan"], &rows));

    let best = |model: &str| {
        cells
            .iter()
            .filter(|c| c.model == model)
            .map(|c| c.accuracy)
            .fold(0.0f64, f64::max)
    };
    println!(
        "Best: RF {}  SVM {}  KNN {}",
        f(best("RF") * 100.0, 1),
        f(best("SVM") * 100.0, 1),
        f(best("KNN") * 100.0, 1)
    );
    println!("(paper: RF 96.5% >= SVM 95.9% >= KNN 93.7% — a tight spread)");

    if let Ok(p) = write_json("fig15", &cells) {
        println!("\nwrote {}", p.display());
    }
}
