//! Figure 13 — fraction of sessions with good/medium/bad experience under
//! objective vs effective (context-calibrated) QoE, (a) per classified
//! title and (b) per inferred pattern for unknown titles.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig13
//! ```

use cgc_bench::cached_fleet;
use cgc_deploy::aggregate::{qoe_by_pattern, qoe_by_title};
use cgc_deploy::report::{pct, table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    by_title: Vec<cgc_deploy::aggregate::QoeProfile>,
    by_pattern: Vec<cgc_deploy::aggregate::QoeProfile>,
}

fn main() {
    println!("== Figure 13: objective vs effective QoE ==\n");
    let records = cached_fleet();
    let by_title = qoe_by_title(&records);
    let by_pattern = qoe_by_pattern(&records);

    let render = |profiles: &[cgc_deploy::aggregate::QoeProfile]| {
        let rows: Vec<Vec<String>> = profiles
            .iter()
            .filter(|p| p.sessions > 0)
            .map(|p| {
                vec![
                    p.context.clone(),
                    p.sessions.to_string(),
                    format!(
                        "{}/{}/{}",
                        pct(p.objective[0]),
                        pct(p.objective[1]),
                        pct(p.objective[2])
                    ),
                    format!(
                        "{}/{}/{}",
                        pct(p.effective[0]),
                        pct(p.effective[1]),
                        pct(p.effective[2])
                    ),
                    pct(p.corrected_fraction()),
                ]
            })
            .collect();
        table(
            &[
                "Context",
                "#Sess",
                "objective bad/med/good",
                "effective bad/med/good",
                "corrected",
            ],
            &rows,
        )
    };

    println!("(a) per classified title:");
    println!("{}", render(&by_title));
    println!("(b) per inferred pattern (unknown titles):");
    println!("{}", render(&by_pattern));

    let get = |name: &str| {
        by_title
            .iter()
            .find(|p| p.context == name && p.sessions > 0)
    };
    if let Some(h) = get("Hearthstone") {
        println!(
            "Shape check vs paper: Hearthstone objective good {} -> effective good {}\n(paper: ~0% objective good, ~80% corrected to good).",
            pct(h.objective[2]),
            pct(h.effective[2])
        );
    }
    if let Some(c) = get("Cyberpunk 2077") {
        println!(
            "Cyberpunk 2077: objective med+bad {} -> effective good {} (paper: 56% -> 95%).",
            pct(c.objective[0] + c.objective[1]),
            pct(c.effective[2])
        );
    }
    let total_corrected: f64 = by_title
        .iter()
        .chain(&by_pattern)
        .filter(|p| p.sessions > 0)
        .map(|p| p.corrected_fraction() * p.sessions as f64)
        .sum::<f64>()
        / records.len() as f64;
    println!(
        "Overall fraction of sessions un-mislabeled by calibration: {}",
        pct(total_corrected)
    );

    let out = Output {
        by_title,
        by_pattern,
    };
    if let Ok(p) = write_json("fig13", &out) {
        println!("\nwrote {}", p.display());
    }
}
