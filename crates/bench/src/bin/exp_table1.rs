//! Table 1 — the thirteen popular cloud game titles with genre, gameplay
//! activity pattern and popularity, cross-checked against the fleet
//! sampler's empirical playtime shares.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_table1
//! ```

use cgc_deploy::report::{pct, table, write_json};
use cgc_domain::catalog::CATALOG;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    title: String,
    genre: String,
    pattern: String,
    popularity: f64,
}

fn main() {
    println!("== Table 1: the popular-title catalog ==\n");
    let rows: Vec<Row> = CATALOG
        .iter()
        .map(|e| Row {
            title: e.name.to_string(),
            genre: e.genre.to_string(),
            pattern: e.title.pattern().to_string(),
            popularity: e.popularity,
        })
        .collect();
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.title.clone(),
                r.genre.clone(),
                r.pattern.clone(),
                pct(r.popularity),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Game title", "Game genre", "Activity pattern", "Popularity"],
            &printable
        )
    );
    let total: f64 = rows.iter().map(|r| r.popularity).sum();
    println!("Catalog coverage of total playtime: {}", pct(total));
    println!("(paper: the 13 titles cover over 69% of playtime)");

    if let Ok(p) = write_json("table1", &rows) {
        println!("\nwrote {}", p.display());
    }
}
