//! §3.1 / §4.1 generalizability — the paper validates its flow-detection
//! signatures on four commercial platforms (100 % detection in the lab)
//! and argues the *relative* traffic structure its classifiers use carries
//! across platforms. This experiment drives sessions on all four platforms
//! through the filter and the stage classifier (trained on GeForce NOW
//! only), and reports per-platform detection and stage accuracy.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_platforms
//! ```

use cgc_bench::cached_bundle;
use cgc_core::filter::{stats_of, CloudGamingFilter};
use cgc_core::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use cgc_deploy::report::{pct, table, write_json};
use cgc_domain::{GameTitle, Platform, StreamSettings};
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    sessions: usize,
    detection: f64,
    stage_accuracy: f64,
    max_payload: u32,
}

fn main() {
    println!("== platform generalizability: filter detection and stage accuracy ==\n");
    let bundle = cached_bundle();
    let filter = CloudGamingFilter::default();
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(99);

    let mut rows = Vec::new();
    for (pi, platform) in Platform::ALL.iter().enumerate() {
        let n = 12usize;
        let mut detected = 0usize;
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            let settings = StreamSettings {
                platform: *platform,
                ..sample_lab_settings(&mut rng)
            };
            let s = generator.generate(&SessionConfig {
                kind: TitleKind::Known(GameTitle::ALL[i % GameTitle::ALL.len()]),
                settings,
                gameplay_secs: 240.0,
                fidelity: Fidelity::FullPackets,
                seed: 9_000 + (pi * 100 + i) as u64,
            });
            if filter.accept(&s.tuple, &stats_of(&s.packets)) == Some(*platform) {
                detected += 1;
            }
            let mut analyzer =
                SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
            analyzer.analyze_packets(&s.packets);
            let report = analyzer.finish();
            for (j, &pred) in report.stage_slots.iter().enumerate() {
                let mid = j as u64 * report.slot_width + report.slot_width / 2;
                if let Some(truth) = s.timeline.stage_at(mid) {
                    if truth.is_gameplay() {
                        total += 1;
                        agree += usize::from(pred == truth);
                    }
                }
            }
        }
        rows.push(Row {
            platform: platform.to_string(),
            sessions: n,
            detection: detected as f64 / n as f64,
            stage_accuracy: agree as f64 / total.max(1) as f64,
            max_payload: platform.max_payload(),
        });
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                r.sessions.to_string(),
                pct(r.detection),
                pct(r.stage_accuracy),
                r.max_payload.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Platform",
                "#Sess",
                "flow detection",
                "stage accuracy",
                "max payload (B)"
            ],
            &printable
        )
    );
    println!(
        "\nShape check vs paper: flow detection at 100% on all four platforms\n(§4.1 lab validation); the stage classifier — trained on GeForce NOW\nsessions only — holds up on the other platforms because its features are\npeak-relative, not absolute."
    );

    if let Ok(p) = write_json("platforms", &rows) {
        println!("\nwrote {}", p.display());
    }
}
