//! Forest-inference benchmark snapshot — the regenerator for
//! `BENCH_forest.json`.
//!
//! Trains one stage-classifier-scale random forest and measures the
//! per-prediction latency of the inference paths over the same probe set
//! (see [`cgc_bench::forestperf`]):
//!
//! - `pointer_single`: the pre-flat hot path — `RandomForest::predict`,
//!   which clones each tree's leaf probability vector and allocates an
//!   accumulator per call;
//! - `flat_single`: `FlatForest::predict_proba_into` + `argmax` with a
//!   caller-owned buffer (no allocation, lockstep branchless walk);
//! - `flat_batch`: `FlatForest::predict_proba_batch_into` over a whole
//!   slot's rows at once (row groups descend each tree in lockstep).
//!
//! It also replays the serial `TapMonitor` feed from `benches/monitor.rs`
//! to record end-to-end monitor throughput with flat inference threaded
//! through slot classification.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin bench_forest
//! ```
//!
//! Writes `BENCH_forest.json` at the repo root (first CLI arg overrides
//! the path). `bench_gate` compares a fresh measurement against the
//! committed snapshot and fails CI on regression.

use cgc_bench::forestperf::{measure_inference, measure_monitor, ForestSnapshot};

/// Best-of reps per measurement; keeps the snapshot stable on noisy boxes.
const REPS: usize = 11;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_forest.json".to_string());

    eprintln!("measuring inference paths (best of {REPS})...");
    let inference = measure_inference(REPS);
    eprintln!(
        "  pointer {:.0} ns | flat {:.0} ns ({:.2}x) | flat batch {:.0} ns/row ({:.2}x)",
        inference.pointer_single_ns,
        inference.flat_single_ns,
        inference.speedup_flat_single,
        inference.flat_batch_ns_per_row,
        inference.speedup_flat_batch,
    );

    eprintln!("measuring serial monitor throughput...");
    let monitor = measure_monitor(3);
    eprintln!("  {:.0} records/s", monitor.records_per_sec);

    let snapshot = ForestSnapshot { inference, monitor };
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write(&out_path, json + "\n").expect("write snapshot");
    eprintln!("wrote {out_path}");
}
