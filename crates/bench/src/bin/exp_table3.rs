//! Table 3 — Game title classification accuracy of the best-performing
//! classifier using packet-group attributes vs standard flow-volumetric
//! attributes.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_table3
//! ```

use cgc_bench::{deployed_attr_config, eval_title, AttrKind, LaunchCorpus};
use cgc_deploy::report::{pct, table, write_json};
use cgc_domain::GameTitle;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    title: String,
    accuracy_packet_group: f64,
    accuracy_flow_volumetric: f64,
}

#[derive(Serialize)]
struct Output {
    rows: Vec<Row>,
    overall_packet_group: f64,
    overall_flow_volumetric: f64,
}

fn main() {
    println!("== Table 3: packet-group vs flow-volumetric attributes ==\n");
    let corpus = LaunchCorpus::generate(30, 15, 5.5, 42);
    let cfg = deployed_attr_config();
    let forest = cgc_bench::default_forest();

    let group = eval_title(&corpus, &cfg, AttrKind::PacketGroup, &forest, 3);
    let vol = eval_title(&corpus, &cfg, AttrKind::FlowVolumetric, &forest, 3);

    let rows: Vec<Row> = GameTitle::ALL
        .iter()
        .map(|t| Row {
            title: t.name().to_string(),
            accuracy_packet_group: group.confusion.recall(t.index()),
            accuracy_flow_volumetric: vol.confusion.recall(t.index()),
        })
        .collect();

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.title.clone(),
                pct(r.accuracy_packet_group),
                pct(r.accuracy_flow_volumetric),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Game title", "Accur. (pkt. group)", "Accur. (flow vol.)"],
            &printable
        )
    );
    println!(
        "Overall: packet-group {}  flow-volumetric {}",
        pct(group.accuracy),
        pct(vol.accuracy)
    );
    println!(
        "\nShape check vs paper: packet-group per-title 92.7–98.0% (overall >95%),\nflow-volumetric 80.5–91.5% — the grouping should win by ~10 points."
    );

    let out = Output {
        rows,
        overall_packet_group: group.accuracy,
        overall_flow_volumetric: vol.accuracy,
    };
    if let Ok(p) = write_json("table3", &out) {
        println!("\nwrote {}", p.display());
    }
}
