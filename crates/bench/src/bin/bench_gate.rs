//! CI perf-regression gate.
//!
//! Re-measures the hot paths covered by the committed benchmark
//! snapshots and fails (exit 1) when a fresh measurement regresses more
//! than the tolerance against the committed numbers:
//!
//! * **`BENCH_forest.json`** — the flat-vs-pointer inference speedups
//!   (`speedup_flat_single`, `speedup_flat_batch`). Speedups are
//!   self-normalized (both layouts measured in the same process on the
//!   same machine), so they gate cleanly across machines of different
//!   absolute speed. The committed snapshot must also keep clearing the
//!   5× per-slot acceptance floor.
//! * **`BENCH_ingest_merge.json`** — the k-way merge scaling ratio
//!   (4-way vs 1-way records/s), again self-normalized, plus the static
//!   invariant that the committed adaptive batching policy does not lose
//!   to the fixed baseline on bursty p99.
//! * **Monitor tracing overhead** — serial monitor throughput with span
//!   tracing disabled and with tracing attached but sampled out, both
//!   held against `BENCH_forest.json`'s committed monitor number, and
//!   their self-normalized ratio: the observability layer must stay free
//!   when it is off.
//! * **Monitor drift-observation overhead** — the same serial monitor
//!   with a live drift sink attached (every inference pushes one score
//!   observation into the lock-free drift ring), self-normalized against
//!   the sink-absent run: the quality observatory must ride along within
//!   tolerance.
//! * **Live-slot indirection cost** — the same serial monitor served
//!   from a `LiveModel` hot-swap slot instead of a fixed bundle,
//!   self-normalized against the fixed-bundle run with a hard 0.90
//!   floor: pinning a model version at admission must stay near-free.
//! * **Swap-under-load tail latency** — ingest chunk latencies while a
//!   publisher hot-swaps the bundle every millisecond; no chunk may
//!   exceed a fixed headroom over the quiet run's p99, proving swaps
//!   never stall the pipeline.
//!
//! Absolute throughput numbers (records/s, raw ns) are machine-dependent
//! and deliberately **not** gated — a faster or slower CI box would make
//! them meaningless. Ratios survive the box change.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin bench_gate \
//!     [BENCH_forest.json] [BENCH_ingest_merge.json]
//! ```
//!
//! `PERF_GATE_TOLERANCE` overrides the allowed fractional regression
//! (default `0.15` = 15 %).

use std::time::Instant;

use cgc_bench::forestperf::{
    measure_inference, measure_monitor, measure_monitor_drifted, measure_monitor_live,
    measure_monitor_traced, measure_swap_under_load, ForestSnapshot, SWAP_LATENCY_HEADROOM,
};
use cgc_ingest::{merge_sources, split_round_robin, MergeConfig, MergeSource};
use nettrace::packet::FiveTuple;
use serde::Deserialize;

/// Reps for the gate's fresh measurement: a notch above the snapshot
/// regenerator's, because a flaky gate is worse than a slow one.
const REPS: usize = 15;

/// Merge-feed size for the gate re-measurement (smaller than the
/// snapshot's 256 Ki — the gate only needs the scaling ratio).
const MERGE_RECORDS: usize = 131_072;

#[derive(Deserialize)]
struct MergeRow {
    ways: usize,
    records_per_sec: f64,
}

#[derive(Deserialize)]
struct IngestSnapshot {
    merge_throughput: Vec<MergeRow>,
    adaptive_p99_improvement_pct_vs_fixed: f64,
}

struct Gate {
    tolerance: f64,
    failures: Vec<String>,
}

impl Gate {
    /// `current` must not sit more than `tolerance` below `committed`.
    fn check(&mut self, what: &str, current: f64, committed: f64) {
        let floor = committed * (1.0 - self.tolerance);
        let verdict = if current >= floor { "ok" } else { "FAIL" };
        eprintln!(
            "  {verdict:>4}  {what}: current {current:.3} vs committed {committed:.3} (floor {floor:.3})"
        );
        if current < floor {
            self.failures
                .push(format!("{what}: {current:.3} < floor {floor:.3}"));
        }
    }

    /// A static invariant on the committed snapshot itself.
    fn require(&mut self, what: &str, ok: bool) {
        eprintln!("  {:>4}  {what}", if ok { "ok" } else { "FAIL" });
        if !ok {
            self.failures.push(what.to_string());
        }
    }
}

/// Same synthetic tap feed as `bench_ingest_merge`.
fn merge_feed(n: usize) -> Vec<cgc_core::shard::TapRecord> {
    (0..n)
        .map(|i| {
            let tuple = FiveTuple::udp_v4(
                [10, 0, 0, 1],
                49003,
                [100, 64, 0, (i % 16) as u8],
                50_000 + (i % 16) as u16,
            );
            (i as u64 * 10, tuple, 1_200u32)
        })
        .collect()
}

/// Best-of-`reps` merge throughput for a `ways`-way split of `feed`.
fn merge_records_per_sec(feed: &[cgc_core::shard::TapRecord], ways: usize, reps: usize) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let sources: Vec<MergeSource> = split_round_robin(feed, ways)
            .into_iter()
            .enumerate()
            .map(|(i, part)| MergeSource::new(format!("s{i}"), part))
            .collect();
        let start = Instant::now();
        let (out, stats) = merge_sources(sources, &MergeConfig::default(), None);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), feed.len());
        assert_eq!(stats.late_total(), 0);
        best = best.max(feed.len() as f64 / secs);
    }
    best
}

fn committed_ratio(snapshot: &IngestSnapshot, ways: usize) -> f64 {
    let rps = |w: usize| {
        snapshot
            .merge_throughput
            .iter()
            .find(|r| r.ways == w)
            .unwrap_or_else(|| panic!("committed snapshot has no {w}-way merge row"))
            .records_per_sec
    };
    rps(ways) / rps(1)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let forest_path = args.next().unwrap_or_else(|| "BENCH_forest.json".into());
    let ingest_path = args
        .next()
        .unwrap_or_else(|| "BENCH_ingest_merge.json".into());
    let tolerance: f64 = std::env::var("PERF_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let mut gate = Gate {
        tolerance,
        failures: Vec::new(),
    };
    eprintln!("perf gate: tolerance {:.0}%", tolerance * 100.0);

    // --- Forest inference -------------------------------------------------
    let committed: ForestSnapshot = serde_json::from_str(
        &std::fs::read_to_string(&forest_path)
            .unwrap_or_else(|e| panic!("read {forest_path}: {e}")),
    )
    .expect("parse committed forest snapshot");
    eprintln!("forest inference (fresh measurement, best of {REPS}):");
    let fresh = measure_inference(REPS);
    gate.check(
        "flat single-row speedup",
        fresh.speedup_flat_single,
        committed.inference.speedup_flat_single,
    );
    gate.check(
        "flat batch speedup",
        fresh.speedup_flat_batch,
        committed.inference.speedup_flat_batch,
    );
    gate.require(
        "committed snapshot clears the 5x per-slot inference floor",
        committed
            .inference
            .speedup_flat_single
            .max(committed.inference.speedup_flat_batch)
            >= 5.0,
    );

    // --- Monitor throughput under tracing ----------------------------------
    // Three serial-monitor measurements in this process: tracing disabled
    // (the committed configuration), tracing attached but every flow
    // sampled out (the cost of the branches alone), and their ratio.
    // The tracing-cost checks are self-normalized; the disabled path is
    // additionally held against the committed absolute number so a hot-path
    // regression that slips past the inference gates still trips here.
    const MONITOR_REPS: usize = 5;
    eprintln!("monitor throughput under tracing (fresh measurement, best of {MONITOR_REPS}):");
    let untraced = measure_monitor(MONITOR_REPS);
    let sampled_out = measure_monitor_traced(MONITOR_REPS, u64::MAX);
    gate.check(
        "monitor records/s, tracing disabled, vs committed",
        untraced.records_per_sec,
        committed.monitor.records_per_sec,
    );
    gate.check(
        "monitor records/s, tracing sampled out, vs committed",
        sampled_out.records_per_sec,
        committed.monitor.records_per_sec,
    );
    gate.check(
        "monitor sampled-out/disabled throughput ratio",
        sampled_out.records_per_sec / untraced.records_per_sec,
        1.0,
    );

    // --- Monitor throughput under drift observation ------------------------
    // The quality observatory's hot-path cost: a live drift sink makes
    // every title/stage inference push one score observation into a
    // lock-free ring. Self-normalized against the sink-absent run above —
    // the observatory must ride along within tolerance.
    eprintln!(
        "monitor throughput under drift observation (fresh measurement, best of {MONITOR_REPS}):"
    );
    let drifted = measure_monitor_drifted(MONITOR_REPS);
    gate.check(
        "monitor drift-sink installed/absent throughput ratio",
        drifted.records_per_sec / untraced.records_per_sec,
        1.0,
    );

    // --- Monitor throughput under live-slot indirection --------------------
    // The hot-swap slot's read-path cost: every flow admission pins its
    // model version with one Acquire pointer load instead of chasing a
    // plain reference. Self-normalized against the fixed-bundle run, with
    // a hard 0.90 floor — if the indirection ever costs more than 10 % of
    // monitor throughput, the zero-stall swap story is broken.
    eprintln!(
        "monitor throughput under live-slot indirection (fresh measurement, best of {MONITOR_REPS}):"
    );
    let live = measure_monitor_live(MONITOR_REPS);
    let live_ratio = live.records_per_sec / untraced.records_per_sec;
    gate.check(
        "monitor live-slot/fixed-bundle throughput ratio",
        live_ratio,
        1.0,
    );
    gate.require(
        &format!("live-slot throughput ratio {live_ratio:.3} clears the 0.90 hot-swap floor"),
        live_ratio >= 0.90,
    );

    // --- Swap-under-load tail latency --------------------------------------
    // Ingest chunk latencies while a publisher republishes the bundle
    // every millisecond. A swap must never stall ingest: the worst chunk
    // during the swap storm has to stay within a fixed headroom of the
    // quiet run's p99.
    eprintln!("swap-under-load tail latency (fresh measurement, best of 3):");
    let swap = measure_swap_under_load(3);
    eprintln!(
        "        {} swaps landed; quiet p99 {:.0} ns, swapped p99 {:.0} ns, swapped max {:.0} ns",
        swap.swaps, swap.quiet_p99_ns, swap.swapped_p99_ns, swap.swapped_max_ns
    );
    gate.require(
        "swap storm landed at least one hot-swap mid-ingest",
        swap.swaps > 0,
    );
    gate.require(
        &format!(
            "no ingest chunk during hot-swaps exceeds {SWAP_LATENCY_HEADROOM:.0}x the quiet p99 floor"
        ),
        swap.within_headroom(),
    );

    // --- Ingest merge ------------------------------------------------------
    let ingest: IngestSnapshot = serde_json::from_str(
        &std::fs::read_to_string(&ingest_path)
            .unwrap_or_else(|e| panic!("read {ingest_path}: {e}")),
    )
    .expect("parse committed ingest snapshot");
    eprintln!("ingest merge scaling (fresh measurement, best of 5):");
    let feed = merge_feed(MERGE_RECORDS);
    let one_way = merge_records_per_sec(&feed, 1, 5);
    let four_way = merge_records_per_sec(&feed, 4, 5);
    gate.check(
        "merge 4-way/1-way throughput ratio",
        four_way / one_way,
        committed_ratio(&ingest, 4),
    );
    gate.require(
        "committed adaptive batching beats fixed baseline on bursty p99",
        ingest.adaptive_p99_improvement_pct_vs_fixed > 0.0,
    );

    if gate.failures.is_empty() {
        eprintln!("perf gate: green");
    } else {
        eprintln!("perf gate: {} regression(s):", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
