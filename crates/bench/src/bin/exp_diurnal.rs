//! §5.2 context — peak-hour load: the paper motivates bandwidth
//! provisioning with "massive subscribers ... especially in high-density
//! regions during peak hours". This experiment reports the 24-hour load
//! profile of the simulated deployment: session arrivals, mean concurrent
//! sessions and aggregate downstream demand per hour of day.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_diurnal
//! ```

use cgc_bench::{cached_fleet, fleet_config};
use cgc_deploy::aggregate::diurnal_profile;
use cgc_deploy::report::{f, table, write_json};

fn main() {
    println!("== deployment load by hour of day ==\n");
    let records = cached_fleet();
    let cfg = fleet_config();
    let profile = diurnal_profile(&records, cfg.deployment_days);

    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|p| {
            let bar = "#".repeat((p.aggregate_mbps / 4.0).round() as usize);
            vec![
                format!("{:02}:00", p.hour),
                p.sessions_started.to_string(),
                f(p.mean_concurrent, 2),
                f(p.aggregate_mbps, 1),
                bar,
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["hour", "#starts", "avg concurrent", "aggregate Mbps", ""],
            &rows
        )
    );

    let peak = profile
        .iter()
        .max_by(|a, b| a.aggregate_mbps.partial_cmp(&b.aggregate_mbps).unwrap())
        .expect("24 hours");
    let trough = profile
        .iter()
        .min_by(|a, b| a.aggregate_mbps.partial_cmp(&b.aggregate_mbps).unwrap())
        .expect("24 hours");
    println!(
        "peak hour {:02}:00 carries {}x the load of {:02}:00 — the provisioning\nheadroom the effective-QoE calibration frees up matters most here.",
        peak.hour,
        f(peak.aggregate_mbps / trough.aggregate_mbps.max(0.01), 1),
        trough.hour
    );

    if let Ok(p) = write_json("diurnal", &profile) {
        println!("\nwrote {}", p.display());
    }
}
