//! Figure 5 — per-pattern stage playtime fractions and transition
//! probabilities, computed from ground-truth stage timelines of a lab-scale
//! session set.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig5
//! ```

use cgc_deploy::report::{pct, table, write_json};
use cgc_domain::{ActivityPattern, GameTitle, Stage};
use cgc_features::transitions::TransitionAccumulator;
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::units::MICROS_PER_SEC;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct PatternStats {
    pattern: String,
    sessions: usize,
    /// Mean playtime fractions `[idle, passive, active]`.
    fractions: [f64; 3],
    /// Row-conditional transition probabilities, rows/cols idle/passive/active.
    transitions: [[f64; 3]; 3],
}

fn main() {
    println!("== Figure 5: stage fractions and transition probabilities per pattern ==\n");
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();

    for pattern in ActivityPattern::ALL {
        let titles: Vec<GameTitle> = GameTitle::ALL
            .iter()
            .copied()
            .filter(|t| t.pattern() == pattern)
            .collect();
        let mut fractions = [0.0f64; 3];
        let mut acc = TransitionAccumulator::new();
        let n = 60usize;
        for i in 0..n {
            let s = generator.generate(&SessionConfig {
                kind: TitleKind::Known(titles[i % titles.len()]),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs: 1800.0,
                fidelity: Fidelity::LaunchOnly,
                seed: 1000 + pattern.index() as u64 * 500 + i as u64,
            });
            for (k, stage) in Stage::GAMEPLAY.iter().enumerate() {
                fractions[k] += s.timeline.gameplay_fraction(*stage) / n as f64;
            }
            for st in s.timeline.slot_stages(MICROS_PER_SEC) {
                acc.push(st);
            }
            acc.push(Stage::Launch); // separate sessions
        }
        out.push(PatternStats {
            pattern: pattern.to_string(),
            sessions: n,
            fractions,
            transitions: acc.row_probabilities(),
        });
    }

    for p in &out {
        println!("{} ({} sessions):", p.pattern, p.sessions);
        println!(
            "  playtime: idle {}  passive {}  active {}",
            pct(p.fractions[0]),
            pct(p.fractions[1]),
            pct(p.fractions[2])
        );
        let names = ["idle", "passive", "active"];
        let rows: Vec<Vec<String>> = (0..3)
            .map(|i| {
                let mut row = vec![names[i].to_string()];
                row.extend((0..3).map(|j| pct(p.transitions[i][j])));
                row
            })
            .collect();
        println!(
            "{}",
            table(&["from\\to", "idle", "passive", "active"], &rows)
        );
    }

    let spectate = &out[0];
    let continuous = &out[1];
    println!("Shape check vs paper:");
    println!(
        "  spectate-and-play active fraction {} (paper: 40-60%), passive > idle: {}",
        pct(spectate.fractions[2]),
        spectate.fractions[1] > spectate.fractions[0]
    );
    println!(
        "  continuous-play passive fraction {} (paper: <5%), active+idle {}",
        pct(continuous.fractions[1]),
        pct(continuous.fractions[0] + continuous.fractions[2])
    );

    if let Ok(p) = write_json("fig5", &out) {
        println!("\nwrote {}", p.display());
    }
}
