//! Runs every experiment binary in DESIGN.md order, streaming their output
//! and summarizing pass/fail at the end.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin run_all
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_fig1",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_fig8",
    "exp_table3",
    "exp_fig9",
    "exp_fig10",
    "exp_conf_thresh",
    "exp_table4",
    "exp_fig11",
    "exp_fig12",
    "exp_fig13",
    "exp_field_validation",
    "exp_diurnal",
    "exp_fig14",
    "exp_fig15",
    "exp_table5",
    "exp_platforms",
    "exp_ablations",
    "exp_impair_regimes",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir").to_path_buf();

    let mut failures = Vec::new();
    let total_start = Instant::now();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        println!("\n================ {name} ================");
        let start = Instant::now();
        match Command::new(&path).status() {
            Ok(status) if status.success() => {
                println!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
            }
            Ok(status) => {
                println!("[{name}] FAILED with {status}");
                failures.push(*name);
            }
            Err(e) => {
                println!("[{name}] could not start: {e} (build with --release first)");
                failures.push(*name);
            }
        }
    }

    println!(
        "\n==== run_all finished in {:.1}s: {}/{} experiments OK ====",
        total_start.elapsed().as_secs_f64(),
        EXPERIMENTS.len() - failures.len(),
        EXPERIMENTS.len()
    );
    if !failures.is_empty() {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
