//! Table 5 (Appendix C.2) — permutation importance of the nine stage
//! transition attributes in the best-performing pattern Random Forest.
//! The paper finds active→idle the most important transition (0.167),
//! followed by passive→idle (0.094).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_table5
//! ```

use cgc_core::pattern::{PatternInferrer, PatternInferrerConfig};
use cgc_deploy::report::{f, table, write_json};
use cgc_deploy::train::{pattern_dataset, TrainConfig};
use cgc_features::transitions::TransitionAccumulator;
use mlcore::permutation_importance;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    /// Importance per transition, row-major idle/passive/active.
    matrix: [[f64; 3]; 3],
    names: Vec<String>,
    importance: Vec<f64>,
}

fn main() {
    println!("== Table 5: importance of the nine transition attributes ==\n");
    let data = pattern_dataset(&TrainConfig {
        pattern_sessions: 60,
        ..Default::default()
    });
    let (train, test) = data.stratified_split(0.3, 5);
    let inferrer = PatternInferrer::train(&train, PatternInferrerConfig::default());
    let imp = permutation_importance(inferrer.forest(), &test, 8, 55);

    let names: Vec<String> = TransitionAccumulator::feature_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut matrix = [[0.0f64; 3]; 3];
    for (k, &v) in imp.iter().enumerate() {
        matrix[k / 3][k % 3] = v;
    }

    let stages = ["idle", "passive", "active"];
    // Paper table orientation: rows = To, cols = From.
    let rows: Vec<Vec<String>> = (0..3)
        .map(|to| {
            let mut row = vec![stages[to].to_string()];
            row.extend((0..3).map(|from| f(matrix[from][to], 3)));
            row
        })
        .collect();
    println!(
        "{}",
        table(&["To\\From", "Active", "Passive", "Idle"], &{
            // Re-order columns to match the paper: Active, Passive, Idle.
            rows.iter()
                .map(|r| vec![r[0].clone(), r[3].clone(), r[2].clone(), r[1].clone()])
                .collect::<Vec<_>>()
        })
    );

    let mut ranked: Vec<(String, f64)> = names.iter().cloned().zip(imp.iter().copied()).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("Ranked:");
    for (n, v) in &ranked {
        println!("  {n:<18} {}", f(*v, 4));
    }
    println!(
        "\nShape check vs paper: active->idle carries the highest importance\n(the transition continuous-play sessions make constantly and\nspectate-and-play sessions make rarely); ours ranks it {}.",
        ranked
            .iter()
            .position(|(n, _)| n == "active->idle")
            .map(|i| format!("#{}", i + 1))
            .unwrap_or_else(|| "?".into())
    );

    let out = Output {
        matrix,
        names,
        importance: imp,
    };
    if let Ok(p) = write_json("table5", &out) {
        println!("\nwrote {}", p.display());
    }
}
