//! Figure 14 (Appendix C.1) — hyperparameter grids for the three candidate
//! game-title classifiers: Random Forest (trees × depth), SVM (C × kernel)
//! and KNN (k × distance metric). The paper's best: RF at ~95 % with 500
//! trees / depth 10-30, then SVM (91.5 %), then KNN (81.4 %).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig14
//! ```

use cgc_bench::{deployed_attr_config, AttrKind, LaunchCorpus};
use cgc_deploy::report::{f, table, write_json};
use mlcore::augment::augment_multiply;
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::knn::{DistanceMetric, Knn};
use mlcore::metrics::accuracy;
use mlcore::scale::StandardScaler;
use mlcore::svm::{Kernel, SvmConfig, SvmOvr};
use mlcore::{Classifier, Dataset};
use serde::Serialize;

#[derive(Serialize)]
struct GridCell {
    model: String,
    param_a: String,
    param_b: String,
    accuracy: f64,
}

fn eval<C: Classifier>(clf: &C, test: &Dataset) -> f64 {
    accuracy(&test.y, &clf.predict_batch(&test.x))
}

fn main() {
    println!("== Figure 14: hyperparameter grids for title classification ==\n");
    let corpus = LaunchCorpus::generate(20, 12, 5.5, 14);
    let cfg = deployed_attr_config();
    let train_raw = LaunchCorpus::dataset(&corpus.train, &cfg, AttrKind::PacketGroup);
    let train = augment_multiply(&train_raw, 2, 0.05, 3);
    let test = LaunchCorpus::dataset(&corpus.test, &cfg, AttrKind::PacketGroup);
    // Distance-based models need standardized inputs.
    let scaler = StandardScaler::fit(&train);
    let train_s = scaler.transform_dataset(&train);
    let test_s = scaler.transform_dataset(&test);

    let mut cells = Vec::new();

    // Random Forest: trees x depth.
    println!("Random Forest (rows: trees, cols: max depth):");
    let trees = [10usize, 50, 100, 200, 500];
    let depths = [3usize, 5, 10, 30];
    let mut rows = Vec::new();
    for &n in &trees {
        let mut row = vec![n.to_string()];
        for &d in &depths {
            let m = RandomForest::fit(
                &train,
                &RandomForestConfig {
                    n_trees: n,
                    max_depth: d,
                    seed: 5,
                    ..Default::default()
                },
            );
            let acc = eval(&m, &test);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "RF".into(),
                param_a: format!("trees={n}"),
                param_b: format!("depth={d}"),
                accuracy: acc,
            });
        }
        rows.push(row);
    }
    println!("{}", table(&["trees\\depth", "3", "5", "10", "30"], &rows));

    // SVM: C x kernel.
    println!("SVM (rows: C, cols: kernel):");
    let cs = [0.1, 1.0, 10.0];
    let kernels = [
        ("linear", Kernel::Linear),
        ("rbf g=0.05", Kernel::Rbf { gamma: 0.05 }),
        ("rbf g=0.2", Kernel::Rbf { gamma: 0.2 }),
        ("rbf g=1", Kernel::Rbf { gamma: 1.0 }),
    ];
    let mut rows = Vec::new();
    for &c in &cs {
        let mut row = vec![format!("{c}")];
        for (name, k) in &kernels {
            let m = SvmOvr::fit(
                &train_s,
                &SvmConfig {
                    c,
                    kernel: *k,
                    ..Default::default()
                },
            );
            let acc = eval(&m, &test_s);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "SVM".into(),
                param_a: format!("C={c}"),
                param_b: name.to_string(),
                accuracy: acc,
            });
            eprintln!("SVM C={c} {name}: {:.1}%", acc * 100.0);
        }
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &["C\\kernel", "linear", "rbf g=0.05", "rbf g=0.2", "rbf g=1"],
            &rows
        )
    );

    // KNN: k x metric.
    println!("KNN (rows: k, cols: metric):");
    let ks = [1usize, 3, 5, 9, 15];
    let metrics = [
        ("euclidean", DistanceMetric::Euclidean),
        ("manhattan", DistanceMetric::Manhattan),
    ];
    let mut rows = Vec::new();
    for &k in &ks {
        let mut row = vec![k.to_string()];
        for (name, m) in &metrics {
            let clf = Knn::fit(&train_s, k, *m);
            let acc = eval(&clf, &test_s);
            row.push(f(acc * 100.0, 1));
            cells.push(GridCell {
                model: "KNN".into(),
                param_a: format!("k={k}"),
                param_b: name.to_string(),
                accuracy: acc,
            });
        }
        rows.push(row);
    }
    println!("{}", table(&["k\\metric", "euclidean", "manhattan"], &rows));

    let best = |model: &str| {
        cells
            .iter()
            .filter(|c| c.model == model)
            .map(|c| c.accuracy)
            .fold(0.0f64, f64::max)
    };
    println!(
        "Best: RF {}  SVM {}  KNN {}",
        f(best("RF") * 100.0, 1),
        f(best("SVM") * 100.0, 1),
        f(best("KNN") * 100.0, 1)
    );
    println!("(paper: RF 95.2% > SVM 91.5% > KNN 81.4%)");

    if let Ok(p) = write_json("fig14", &cells) {
        println!("\nwrote {}", p.display());
    }
}
