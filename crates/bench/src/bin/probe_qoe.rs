//! Diagnostic probe: per-slot stage/QoE breakdown for a healthy low-demand
//! session (not part of run_all).

use cgc_core::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use cgc_deploy::aggregate::calibrate;
use cgc_deploy::train::{train_bundle, TrainConfig};
use cgc_deploy::{run_fleet, FleetConfig};
use cgc_domain::{GameTitle, Resolution, Stage, StreamSettings};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};

fn main() {
    let mut bundle = train_bundle(&TrainConfig::quick());
    let calib = run_fleet(
        &bundle,
        &FleetConfig {
            n_sessions: 80,
            duration_scale: 0.06,
            uniform_titles: true,
            ..Default::default()
        },
    );
    bundle.calibration = calibrate(&calib);
    println!("calibration table: {:?}", bundle.calibration.title_mbps);
    // Truth-keyed normalized peaks for comparison.
    for t in [GameTitle::Hearthstone, GameTitle::Fortnite] {
        let mut vals: Vec<(u64, f64, bool)> = calib
            .iter()
            .filter(|r| r.truth_kind.known() == Some(t))
            .map(|r| {
                (
                    r.id,
                    r.peak_down_mbps / r.settings.bitrate_factor(),
                    r.title_correct(),
                )
            })
            .collect();
        vals.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        println!("truth {t}: {vals:?}");
    }
    println!("default: {}", bundle.calibration.default_mbps);

    let settings = StreamSettings {
        resolution: Resolution::Hd,
        fps: 30,
        ..StreamSettings::default_pc()
    };
    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(GameTitle::Hearthstone),
        settings,
        gameplay_secs: 300.0,
        fidelity: Fidelity::LaunchOnly,
        seed: 1,
    });
    let qoe = QoeInputs {
        nominal_fps: 30.0,
        latency_ms: 12.0,
        loss_rate: 0.0005,
        settings_factor: settings.bitrate_factor(),
        delivered_fps_ratio: 1.0,
    };
    let mut analyzer = SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), qoe);
    analyzer.analyze(&session.packets, &session.vol);
    let report = analyzer.finish();
    println!("title pred: {:?}", report.title);
    println!(
        "pattern: {:?} final {:?}",
        report.pattern, report.final_pattern
    );

    let mut hist = std::collections::BTreeMap::new();
    for (i, (&stage, &(obj, eff))) in report.stage_slots.iter().zip(&report.qoe_slots).enumerate() {
        let truth = session
            .timeline
            .stage_at(i as u64 * report.slot_width + report.slot_width / 2)
            .unwrap_or(Stage::Idle);
        *hist.entry((truth, stage, obj, eff)).or_insert(0usize) += 1;
    }
    for ((truth, stage, obj, eff), n) in hist {
        println!("truth {truth:<8} pred {stage:<8} obj {obj:<7} eff {eff:<7} x{n}");
    }
    println!(
        "session: obj {} eff {}",
        report.objective_qoe, report.effective_qoe
    );
}
