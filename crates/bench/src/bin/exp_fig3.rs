//! Figure 3 — launch-stage packet scatter: payload size vs arrival time
//! over the first 60 seconds, with full/steady/sparse group labels.
//! Four sessions: Genshin Impact under three different settings (the
//! group structure must stay put) and Fortnite (it must differ).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig3
//! ```

use cgc_deploy::report::{f, table, write_json};
use cgc_domain::{DeviceClass, GameTitle, Os, Resolution, Software, StreamSettings};
use cgc_features::groups::{label_groups, GroupLabel};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::units::MICROS_PER_SEC;
use serde::Serialize;

#[derive(Serialize)]
struct Scatter {
    label: String,
    /// `(t_secs, payload, group)` triples (downsampled for the JSON).
    points: Vec<(f64, u32, String)>,
    /// Per-second full-packet counts (the slot profile).
    full_per_sec: Vec<usize>,
    /// Per-second mean steady payload (0 when absent).
    steady_mean_per_sec: Vec<f64>,
}

fn scatter_of(label: &str, title: GameTitle, settings: StreamSettings, seed: u64) -> Scatter {
    let mut generator = SessionGenerator::new();
    let s = generator.generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings,
        gameplay_secs: 10.0,
        fidelity: Fidelity::LaunchOnly,
        seed,
    });
    let labeled = label_groups(&s.packets, 60 * MICROS_PER_SEC, MICROS_PER_SEC, 0.10);
    let n_secs = 60usize;
    let mut full_per_sec = vec![0usize; n_secs];
    let mut steady_sum = vec![0f64; n_secs];
    let mut steady_ct = vec![0usize; n_secs];
    for lp in &labeled {
        let sec = (lp.packet.ts / MICROS_PER_SEC) as usize;
        if sec >= n_secs {
            continue;
        }
        match lp.label {
            GroupLabel::Full => full_per_sec[sec] += 1,
            GroupLabel::Steady => {
                steady_sum[sec] += f64::from(lp.packet.payload_len);
                steady_ct[sec] += 1;
            }
            GroupLabel::Sparse => {}
        }
    }
    let steady_mean_per_sec = steady_sum
        .iter()
        .zip(&steady_ct)
        .map(|(s, c)| if *c > 0 { s / *c as f64 } else { 0.0 })
        .collect();
    Scatter {
        label: label.to_string(),
        points: labeled
            .iter()
            .step_by(17) // downsample for the JSON artifact
            .map(|lp| {
                (
                    lp.packet.ts as f64 / 1e6,
                    lp.packet.payload_len,
                    lp.label.short().to_string(),
                )
            })
            .collect(),
        full_per_sec,
        steady_mean_per_sec,
    }
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

fn main() {
    println!("== Figure 3: launch-stage packet groups across settings and titles ==\n");
    let win_fhd = StreamSettings::default_pc();
    let mac_qhd = StreamSettings {
        platform: win_fhd.platform,
        device: DeviceClass::Pc,
        os: Os::MacOs,
        software: Software::Browser,
        resolution: Resolution::Qhd,
        fps: 120,
    };
    let mobile_hd = StreamSettings {
        platform: win_fhd.platform,
        device: DeviceClass::Mobile,
        os: Os::Android,
        software: Software::NativeApp,
        resolution: Resolution::Hd,
        fps: 30,
    };

    let a = scatter_of(
        "(a) Genshin, Windows FHD/60",
        GameTitle::GenshinImpact,
        win_fhd,
        11,
    );
    let b = scatter_of(
        "(b) Genshin, macOS QHD/120",
        GameTitle::GenshinImpact,
        mac_qhd,
        22,
    );
    let c = scatter_of(
        "(c) Genshin, Android HD/30",
        GameTitle::GenshinImpact,
        mobile_hd,
        33,
    );
    let d = scatter_of(
        "(d) Fortnite, Windows FHD/60",
        GameTitle::Fortnite,
        win_fhd,
        44,
    );

    let profile = |s: &Scatter| -> Vec<f64> { s.full_per_sec.iter().map(|&x| x as f64).collect() };
    let rows = vec![
        vec![
            "(a) vs (b): same title, different settings".to_string(),
            f(correlation(&profile(&a), &profile(&b)), 3),
        ],
        vec![
            "(a) vs (c): same title, different device class".to_string(),
            f(correlation(&profile(&a), &profile(&c)), 3),
        ],
        vec![
            "(a) vs (d): different titles".to_string(),
            f(correlation(&profile(&a), &profile(&d)), 3),
        ],
    ];
    println!(
        "{}",
        table(
            &["Comparison (full-packet slot profiles)", "correlation"],
            &rows
        )
    );
    println!(
        "Shape check vs paper: same-title correlations stay high across\nsettings; the cross-title correlation is visibly lower."
    );

    for s in [&a, &b, &c, &d] {
        let full: usize = s.full_per_sec.iter().sum();
        let steady_secs = s.steady_mean_per_sec.iter().filter(|&&m| m > 0.0).count();
        println!(
            "{}: {} full pkts / 60 s, steady bands active in {} s",
            s.label, full, steady_secs
        );
    }

    if let Ok(p) = write_json("fig3", &vec![a, b, c, d]) {
        println!("\nwrote {}", p.display());
    }
}
