//! Figure 1 — the two gameplay activity patterns, illustrated on one
//! CS:GO (spectate-and-play) and one Cyberpunk 2077 (continuous-play)
//! session: per-second downstream throughput with the ground-truth stage
//! timeline.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig1
//! ```

use cgc_deploy::report::write_json;
use cgc_domain::{GameTitle, Stage, StreamSettings};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::units::MICROS_PER_SEC;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    title: String,
    pattern: String,
    /// Per-second downstream Mbps.
    down_mbps: Vec<f64>,
    /// Per-second ground-truth stage.
    stages: Vec<String>,
    /// `(stage, start_s, end_s)` spans.
    spans: Vec<(String, f64, f64)>,
}

fn series_of(title: GameTitle, seed: u64) -> Series {
    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 900.0,
        fidelity: Fidelity::LaunchOnly,
        seed,
    });
    let vol = session.vol_at(MICROS_PER_SEC);
    let down_mbps: Vec<f64> = (0..vol.len()).map(|i| vol.down_mbps(i)).collect();
    let stages: Vec<String> = (0..vol.len())
        .map(|i| {
            session
                .timeline
                .stage_at(i as u64 * MICROS_PER_SEC + MICROS_PER_SEC / 2)
                .unwrap_or(Stage::Idle)
                .to_string()
        })
        .collect();
    let spans = session
        .timeline
        .spans
        .iter()
        .map(|s| {
            (
                s.stage.to_string(),
                s.start as f64 / 1e6,
                s.end as f64 / 1e6,
            )
        })
        .collect();
    Series {
        title: title.name().to_string(),
        pattern: title.pattern().to_string(),
        down_mbps,
        stages,
        spans,
    }
}

fn summarize(s: &Series) {
    println!("\n{} ({}):", s.title, s.pattern);
    let count = |st: &str| s.stages.iter().filter(|x| x.as_str() == st).count();
    let n = s.stages.len();
    println!(
        "  {} s total | launch {} s | idle {} s | passive {} s | active {} s",
        n,
        count("launch"),
        count("idle"),
        count("passive"),
        count("active")
    );
    // The pattern signature: how many distinct active spans occur.
    let active_spans = s.spans.iter().filter(|(st, _, _)| st == "active").count();
    println!("  distinct active spans: {active_spans}");
    // Compact ASCII timeline, one char per 10 s.
    let glyph = |st: &str| match st {
        "launch" => 'L',
        "idle" => '.',
        "passive" => 'p',
        "active" => 'A',
        _ => '?',
    };
    let line: String = s.stages.iter().step_by(10).map(|st| glyph(st)).collect();
    println!("  timeline (10 s/char): {line}");
}

fn main() {
    println!("== Figure 1: spectate-and-play vs continuous-play sessions ==");
    let csgo = series_of(GameTitle::CsGo, 101);
    let cyberpunk = series_of(GameTitle::Cyberpunk2077, 202);
    summarize(&csgo);
    summarize(&cyberpunk);
    println!(
        "\nShape check vs paper: the shooter alternates idle -> active <-> passive\nmatch cycles; the role-playing session holds long active stretches with\nidle interludes and near-zero passive time."
    );
    if let Ok(p) = write_json("fig1", &vec![csgo, cyberpunk]) {
        println!("\nwrote {}", p.display());
    }
}
