//! Diagnostic probe: title-classifier confidence on catalog vs unknown
//! launches (tunes the unknown gate).

use cgc_bench::cached_bundle;
use cgc_domain::ActivityPattern;
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = cached_bundle();
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(123);
    let mut catalog_conf = Vec::new();
    let mut unknown_conf = Vec::new();
    for i in 0..120usize {
        let kind = if i % 2 == 0 {
            TitleKind::Known(cgc_domain::GameTitle::ALL[i / 2 % 13])
        } else {
            TitleKind::Other {
                pattern: if i % 4 == 1 {
                    ActivityPattern::SpectateAndPlay
                } else {
                    ActivityPattern::ContinuousPlay
                },
                variant: (i % 16) as u32,
            }
        };
        let s = generator.generate(&SessionConfig {
            kind,
            settings: sample_lab_settings(&mut rng),
            gameplay_secs: 2.0,
            fidelity: Fidelity::LaunchOnly,
            seed: 500_000 + i as u64,
        });
        let pred = bundle.title.classify(&s.launch_window(5.0));
        match kind {
            TitleKind::Known(_) => catalog_conf.push(pred.confidence),
            TitleKind::Other { .. } => unknown_conf.push(pred.confidence),
        }
    }
    let summary = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        format!(
            "min {:.2} p10 {:.2} p50 {:.2} p90 {:.2} max {:.2}",
            v[0],
            v[v.len() / 10],
            v[v.len() / 2],
            v[v.len() * 9 / 10],
            v[v.len() - 1]
        )
    };
    println!("catalog confidence: {}", summary(catalog_conf));
    println!("unknown confidence: {}", summary(unknown_conf));
}
