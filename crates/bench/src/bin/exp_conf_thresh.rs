//! §4.4.2 — confidence threshold for gameplay activity pattern inference:
//! per-session accuracy and mean time-to-decision as the threshold sweeps
//! 0 % → 95 %. The paper selects 75 % (≈90 % accuracy, ~5 minutes to a
//! confident result).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_conf_thresh
//! ```

use cgc_bench::cached_bundle;
use cgc_core::pattern::PatternTracker;
use cgc_deploy::report::{f, pct, table, write_json};
use cgc_domain::{ActivityPattern, GameTitle, Stage};
use cgc_features::vol_attrs::StageFeatureExtractor;
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    threshold: f64,
    accuracy: f64,
    decided_fraction: f64,
    mean_decision_secs: f64,
}

/// The classified stage sequence of a session (the tracker's input).
fn classified_stages(bundle: &cgc_core::ModelBundle, s: &Session) -> Vec<Stage> {
    let vol = s.vol_at(bundle.stage_slot);
    let seed_slots = 10usize.min(vol.len());
    let mut extractor = StageFeatureExtractor::new(
        &bundle.stage_feature,
        bundle.stage_slot,
        &vol.samples[..seed_slots],
    );
    vol.samples
        .iter()
        .skip(seed_slots)
        .map(|sample| bundle.stage.classify(&extractor.push(sample)))
        .collect()
}

fn main() {
    println!("== confidence threshold sweep for pattern inference ==\n");
    let bundle = cached_bundle();
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(6);

    // Pre-classify stage sequences once; replay per threshold.
    let mut sequences: Vec<(ActivityPattern, Vec<Stage>)> = Vec::new();
    for pattern in ActivityPattern::ALL {
        let titles: Vec<GameTitle> = GameTitle::ALL
            .iter()
            .copied()
            .filter(|t| t.pattern() == pattern)
            .collect();
        for i in 0..30usize {
            let s = generator.generate(&SessionConfig {
                kind: TitleKind::Known(titles[i % titles.len()]),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs: 1200.0,
                fidelity: Fidelity::LaunchOnly,
                seed: 60_000 + pattern.index() as u64 * 1000 + i as u64,
            });
            sequences.push((pattern, classified_stages(&bundle, &s)));
        }
    }

    let thresholds = [0.0, 0.2, 0.4, 0.55, 0.65, 0.75, 0.85, 0.90, 0.95];
    let mut points = Vec::new();
    for &thr in &thresholds {
        // Re-training is unnecessary: the threshold only gates the tracker.
        let inferrer = bundle
            .pattern
            .with_config(cgc_core::pattern::PatternInferrerConfig {
                confidence_threshold: thr,
                min_transitions: if thr == 0.0 { 1 } else { 30 },
                ..*bundle.pattern.config()
            });

        let mut ok = 0usize;
        let mut decided = 0usize;
        let mut decision_slots = 0u64;
        for (truth, seq) in &sequences {
            let mut tracker = PatternTracker::new();
            for &st in seq {
                tracker.push(st, &inferrer);
            }
            if let Some(d) = tracker.decision() {
                decided += 1;
                decision_slots += d.decided_after_slots;
                if d.pattern == *truth {
                    ok += 1;
                }
            }
        }
        points.push(Point {
            threshold: thr,
            accuracy: ok as f64 / decided.max(1) as f64,
            decided_fraction: decided as f64 / sequences.len() as f64,
            mean_decision_secs: decision_slots as f64 / decided.max(1) as f64,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                pct(p.threshold),
                pct(p.accuracy),
                pct(p.decided_fraction),
                f(p.mean_decision_secs, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["threshold", "accuracy", "decided", "mean decision time (s)"],
            &rows
        )
    );
    println!(
        "\nShape check vs paper: low thresholds decide within seconds but\ninaccurately; 75% lands around 90% accuracy within minutes; 95% pushes\ndecisions very late or never."
    );

    if let Ok(p) = write_json("conf_thresh", &points) {
        println!("\nwrote {}", p.display());
    }
}
