//! §5 field validation — classified game titles vs the withheld "cloud
//! server log" ground truth over clean catalog sessions of the fleet
//! (the paper validates one month of deployment at > 95 % overall).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_field_validation
//! ```

use cgc_bench::cached_fleet;
use cgc_deploy::aggregate::field_validation;
use cgc_deploy::report::{pct, table, write_json};

fn main() {
    println!("== field validation: classified titles vs server logs ==\n");
    let records = cached_fleet();
    let fv = field_validation(&records);

    let rows: Vec<Vec<String>> = fv
        .per_title
        .iter()
        .filter(|(_, n, _)| *n > 0)
        .map(|(name, n, acc)| vec![name.clone(), n.to_string(), pct(*acc)])
        .collect();
    println!("{}", table(&["Game title", "#Sessions", "Accuracy"], &rows));
    println!(
        "Overall accuracy: {}   unknown rate: {}",
        pct(fv.overall_accuracy),
        pct(fv.unknown_rate)
    );
    println!("(paper: overall above 95%, consistent with the lab evaluation)");

    if let Ok(p) = write_json("field_validation", &fv) {
        println!("\nwrote {}", p.display());
    }
}
