//! Table 4 — player activity stage classification accuracy (per slot) and
//! gameplay activity pattern inference accuracy (per session), split by
//! activity pattern, under the deployed parameters (`I = 1 s`, `α = 0.5`,
//! confidence threshold 75 %).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_table4
//! ```

use cgc_bench::cached_bundle;
use cgc_core::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use cgc_deploy::report::{pct, table, write_json};
use cgc_domain::{ActivityPattern, GameTitle, Stage};
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    /// Per pattern: session-level pattern inference accuracy.
    pattern_accuracy: Vec<(String, f64)>,
    /// Per pattern, per stage: slot-level stage accuracy.
    stage_accuracy: Vec<(String, String, f64)>,
}

fn main() {
    println!("== Table 4: stage (per slot) and pattern (per session) accuracy ==\n");
    let bundle = cached_bundle();
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(4);

    let mut pattern_accuracy = Vec::new();
    let mut stage_accuracy = Vec::new();

    for pattern in ActivityPattern::ALL {
        let titles: Vec<GameTitle> = GameTitle::ALL
            .iter()
            .copied()
            .filter(|t| t.pattern() == pattern)
            .collect();
        let n = 40usize;
        let mut pattern_ok = 0usize;
        let mut pattern_decided = 0usize;
        // stage -> (correct, total)
        let mut per_stage = [(0usize, 0usize); 3];

        for i in 0..n {
            let s = generator.generate(&SessionConfig {
                kind: TitleKind::Known(titles[i % titles.len()]),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs: 1500.0,
                fidelity: Fidelity::LaunchOnly,
                seed: 40_000 + pattern.index() as u64 * 1000 + i as u64,
            });
            let mut analyzer =
                SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
            analyzer.analyze(&s.packets, &s.vol);
            let report = analyzer.finish();

            // Pattern: use the confident decision, else the final forced
            // inference.
            let inferred = report
                .pattern
                .map(|d| d.pattern)
                .or(report.final_pattern.map(|(p, _)| p));
            if let Some(p) = inferred {
                pattern_decided += 1;
                if p == pattern {
                    pattern_ok += 1;
                }
            }

            // Stage: score gameplay slots against truth.
            for (j, &pred) in report.stage_slots.iter().enumerate() {
                let midpoint = j as u64 * report.slot_width + report.slot_width / 2;
                let Some(truth) = s.timeline.stage_at(midpoint) else {
                    continue;
                };
                let Some(k) = truth.class_id() else {
                    continue; // skip launch
                };
                per_stage[k].1 += 1;
                if pred == truth {
                    per_stage[k].0 += 1;
                }
            }
        }

        pattern_accuracy.push((
            pattern.to_string(),
            pattern_ok as f64 / pattern_decided.max(1) as f64,
        ));
        for stage in Stage::GAMEPLAY {
            let (c, t) = per_stage[stage.class_id().unwrap()];
            stage_accuracy.push((
                pattern.to_string(),
                stage.to_string(),
                c as f64 / t.max(1) as f64,
            ));
        }
    }

    let mut rows = Vec::new();
    for (p, acc) in &pattern_accuracy {
        rows.push(vec![p.clone(), pct(*acc), String::new(), String::new()]);
        for (pp, st, sa) in &stage_accuracy {
            if pp == p {
                rows.push(vec![String::new(), String::new(), st.clone(), pct(*sa)]);
            }
        }
    }
    println!(
        "{}",
        table(
            &[
                "Gameplay actv. pattern",
                "Accur.",
                "Player actv. stage",
                "Accur."
            ],
            &rows
        )
    );
    println!(
        "\nShape check vs paper (Table 4): pattern accuracy ~95-97%; stage\naccuracy ~92-98% with idle the easiest class."
    );

    let out = Output {
        pattern_accuracy,
        stage_accuracy,
    };
    if let Ok(p) = write_json("table4", &out) {
        println!("\nwrote {}", p.display());
    }
}
