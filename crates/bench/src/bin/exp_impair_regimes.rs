//! Robustness under impairment — the regime matrix: every named
//! adversarial network profile (see `docs/IMPAIRMENTS.md`) swept across
//! the same fleet, with the withheld ground truth joined back through the
//! quality observatory and drift scored against a clean-traffic reference.
//!
//! Per profile this reports the per-classifier accuracy (title / pattern /
//! stage), the worst drift statistic and any alarms, the share of slots
//! flagged not-Good by the effective QoE, and — for profiles that degrade
//! mid-session — how long the QoE estimator takes to notice the link
//! change (detection latency from the scheduled onset).
//!
//! Shape checks enforced here (the committed JSON must honour them):
//! the `clean` profile matches the unimpaired baseline, and the composite
//! accuracy of `clean` beats every degrading profile.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_impair_regimes [-- --quick]
//! ```
//!
//! `--quick` runs a scaled-down smoke variant (small fleets, quick-config
//! bundle) used by CI; the committed `results/impair_regimes.json` comes
//! from the full run.

use cgc_deploy::fleet::{run_fleet, FleetConfig, SessionRecord};
use cgc_deploy::report::{f, table, write_json};
use cgc_deploy::train::{train_bundle, TrainConfig};
use cgc_obs::drift::{DriftConfig, DriftEngine};
use cgc_obs::quality::{ModelKind, QualityConfig, QualityHub};
use cgc_obs::Registry;
use nettrace::impair::ImpairmentProfile;
use serde::Serialize;

/// One row of the regime matrix.
#[derive(Serialize)]
struct RegimeRow {
    profile: String,
    version: u32,
    severity: u8,
    sessions: usize,
    title_accuracy_pct: f64,
    pattern_accuracy_pct: f64,
    stage_accuracy_pct: f64,
    /// Mean of the three per-classifier accuracies.
    composite_accuracy_pct: f64,
    /// Worst drift statistic across models (PSI units, vs clean reference).
    drift_score: f64,
    /// Models alarming at the 0.25 PSI boundary.
    drift_alarms: Vec<String>,
    /// Share of slots the effective QoE flags Medium or Bad.
    qoe_not_good_slot_pct: f64,
    /// Sessions with a scheduled mid-session degradation onset.
    onset_sessions: usize,
    /// Of those, share where a post-onset slot was flagged not-Good.
    qoe_shift_detected_pct: f64,
    /// Median time from onset to the first flagged slot, seconds
    /// (`null` when no session had an onset).
    qoe_shift_detection_latency_s: Option<f64>,
}

struct Scale {
    warmup_sessions: usize,
    measure_sessions: usize,
    duration_scale: f64,
    quality_window: usize,
    drift_reference: usize,
    drift_window: usize,
    drift_min_window: usize,
}

fn regime_row(
    bundle: &cgc_core::bundle::ModelBundle,
    profile: &ImpairmentProfile,
    scale: &Scale,
) -> RegimeRow {
    // Private observability per regime: a profile-labeled quality hub and
    // a drift engine whose reference freezes on *clean* traffic, so the
    // measured fleet scores drift against a healthy-network baseline the
    // way a deployment watching /drift would.
    let registry = Registry::new();
    let (quality_sink, mut quality_hub) = QualityHub::new(
        QualityConfig {
            window: scale.quality_window,
            ring_capacity: scale.quality_window.next_power_of_two() * 4,
            profile: Some(profile.name),
        },
        &registry,
    );
    let (drift_sink, mut drift_engine) = DriftEngine::new(
        DriftConfig {
            reference_size: scale.drift_reference,
            window: scale.drift_window,
            min_window: scale.drift_min_window,
            profile: Some(profile.name),
            ..DriftConfig::default()
        },
        &registry,
    );

    // Clean warmup: freeze the drift reference. The quality sink stays
    // out of this run — accuracy is measured on the impaired fleet only.
    let base = FleetConfig {
        duration_scale: scale.duration_scale,
        telemetry_every: 0,
        drift: Some(drift_sink),
        ..FleetConfig::default()
    };
    run_fleet(
        bundle,
        &FleetConfig {
            n_sessions: scale.warmup_sessions,
            impaired_fraction: 0.0,
            seed: base.seed ^ 0xC1EA7,
            ..base.clone()
        },
    );
    drift_engine.drain_and_sync();

    // The measured fleet: every session through the profile's channel.
    let records = run_fleet(
        bundle,
        &FleetConfig {
            n_sessions: scale.measure_sessions,
            impaired_fraction: 1.0,
            impair_profile: Some(*profile),
            quality: Some(quality_sink),
            ..base
        },
    );
    quality_hub.drain_and_sync();
    drift_engine.drain_and_sync();
    assert_eq!(quality_hub.shed(), 0, "quality ring sized for the fleet");

    let drift = drift_engine.report();
    let drift_score = drift.models.iter().map(|m| m.score).fold(0.0f64, f64::max);
    let drift_alarms: Vec<String> = drift.alarms().iter().map(|s| s.to_string()).collect();

    let (not_good, total_slots) = records.iter().fold((0usize, 0usize), |(ng, tot), r| {
        let flagged = r
            .report
            .qoe_slots
            .iter()
            .filter(|(_, eff)| *eff != cgc_domain::QoeLevel::Good)
            .count();
        (ng + flagged, tot + r.report.qoe_slots.len())
    });

    let (onset_sessions, detected, mut latencies) = qoe_shift_stats(&records);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_latency = (!latencies.is_empty()).then(|| latencies[latencies.len() / 2]);

    let title = quality_hub.accuracy(ModelKind::Title) * 100.0;
    let pattern = quality_hub.accuracy(ModelKind::Pattern) * 100.0;
    let stage = quality_hub.accuracy(ModelKind::Stage) * 100.0;
    RegimeRow {
        profile: profile.name.to_string(),
        version: profile.version,
        severity: profile.severity,
        sessions: records.len(),
        title_accuracy_pct: title,
        pattern_accuracy_pct: pattern,
        stage_accuracy_pct: stage,
        composite_accuracy_pct: (title + pattern + stage) / 3.0,
        drift_score,
        drift_alarms,
        qoe_not_good_slot_pct: 100.0 * not_good as f64 / total_slots.max(1) as f64,
        onset_sessions,
        qoe_shift_detected_pct: 100.0 * detected as f64 / onset_sessions.max(1) as f64,
        qoe_shift_detection_latency_s: median_latency,
    }
}

/// `(sessions with onset, sessions detected, per-session latency secs)` —
/// a shift counts as detected when any slot at or after the onset is
/// flagged not-Good by the effective QoE; latency runs from the scheduled
/// onset to the close of the first flagged slot.
fn qoe_shift_stats(records: &[SessionRecord]) -> (usize, usize, Vec<f64>) {
    let mut with_onset = 0;
    let mut detected = 0;
    let mut latencies = Vec::new();
    for r in records {
        let Some(onset) = r.degradation_onset_us else {
            continue;
        };
        with_onset += 1;
        let w = r.report.slot_width;
        let hit = r.report.qoe_slots.iter().enumerate().find(|(i, (_, eff))| {
            (*i as u64 + 1) * w > onset && *eff != cgc_domain::QoeLevel::Good
        });
        if let Some((i, _)) = hit {
            detected += 1;
            latencies.push(((i as u64 + 1) * w).saturating_sub(onset) as f64 / 1e6);
        }
    }
    (with_onset, detected, latencies)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            warmup_sessions: 80,
            measure_sessions: 160,
            duration_scale: 0.05,
            quality_window: 1 << 16,
            drift_reference: 48,
            drift_window: 64,
            drift_min_window: 24,
        }
    } else {
        Scale {
            warmup_sessions: 150,
            measure_sessions: 400,
            duration_scale: 0.12,
            quality_window: 1 << 17,
            drift_reference: 128,
            drift_window: 192,
            drift_min_window: 48,
        }
    };
    let bundle = if quick {
        train_bundle(&TrainConfig::quick())
    } else {
        cgc_bench::cached_bundle()
    };

    println!(
        "== robustness under impairment ({} mode) ==\n",
        if quick { "quick" } else { "full" }
    );
    let rows: Vec<RegimeRow> = ImpairmentProfile::ALL
        .iter()
        .map(|p| {
            eprintln!("sweeping profile {} ...", p.name);
            regime_row(&bundle, p, &scale)
        })
        .collect();

    let fmt_latency = |l: Option<f64>| l.map_or("-".to_string(), |v| format!("{v:.0}s"));
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.profile.clone(),
                r.severity.to_string(),
                f(r.title_accuracy_pct, 1),
                f(r.pattern_accuracy_pct, 1),
                f(r.stage_accuracy_pct, 1),
                f(r.composite_accuracy_pct, 1),
                f(r.drift_score, 3),
                f(r.qoe_not_good_slot_pct, 1),
                fmt_latency(r.qoe_shift_detection_latency_s),
                r.drift_alarms.join(","),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "profile",
                "sev",
                "title%",
                "pattern%",
                "stage%",
                "composite%",
                "drift",
                "QoE!good%",
                "detect",
                "alarms"
            ],
            &printable
        )
    );

    // Shape checks — the regime matrix only means something if the knobs
    // actually bite in the advertised order.
    let clean = rows
        .iter()
        .find(|r| r.profile == "clean")
        .expect("clean row");
    for r in rows.iter().filter(|r| r.severity > 0) {
        assert!(
            clean.composite_accuracy_pct >= r.composite_accuracy_pct,
            "clean composite {:.1}% must beat {} ({:.1}%)",
            clean.composite_accuracy_pct,
            r.profile,
            r.composite_accuracy_pct
        );
        assert!(
            clean.qoe_not_good_slot_pct <= r.qoe_not_good_slot_pct,
            "clean flags fewer slots than {}",
            r.profile
        );
    }
    assert!(
        clean.drift_alarms.is_empty(),
        "clean traffic must not alarm the drift engine"
    );
    let onset_profiles: Vec<&RegimeRow> = rows.iter().filter(|r| r.onset_sessions > 0).collect();
    assert!(
        !onset_profiles.is_empty(),
        "at least one profile degrades mid-session"
    );
    for r in &onset_profiles {
        assert!(
            r.qoe_shift_detection_latency_s.is_some(),
            "{}: some QoE shifts must be detected",
            r.profile
        );
    }
    println!(
        "\nclean composite {:.1}% is the ceiling; worst regime {:.1}% — the\nobservatory keeps (accuracy, drift, QoE-shift latency) attributable\nper profile via the profile= label.",
        clean.composite_accuracy_pct,
        rows.iter()
            .map(|r| r.composite_accuracy_pct)
            .fold(f64::MAX, f64::min),
    );

    // The committed artifact comes from the full run; `--quick` (CI) only
    // checks the schema and shape, without clobbering it.
    if quick {
        println!("\nquick mode: schema and shape checks passed; JSON not rewritten");
    } else if let Ok(p) = write_json("impair_regimes", &rows) {
        println!("\nwrote {}", p.display());
    }
}
