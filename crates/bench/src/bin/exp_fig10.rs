//! Figure 10 — player activity stage classification accuracy as a
//! function of the EMA current-slot weight `α` for slot widths
//! `I ∈ {0.1, 0.5, 1, 2} s`.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig10
//! ```

use cgc_bench::{gameplay_sessions, session_stage_rows};
use cgc_core::stage::{stage_class_id, StageClassifier, StageClassifierConfig};
use cgc_deploy::report::{f, table, write_json};
use cgc_domain::Stage;
use cgc_features::vol_attrs::StageFeatureConfig;
use mlcore::Dataset;
use nettrace::units::Micros;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Sweep {
    slot_secs: f64,
    alphas: Vec<f64>,
    accuracy: Vec<f64>,
}

/// Builds per-slot rows for a session set, capping the per-config row
/// count so the 0.1 s sweeps stay tractable.
fn rows_for(
    sessions: &[gamesim::Session],
    slot: Micros,
    alpha: f64,
    cap: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let cfg = StageFeatureConfig {
        alpha,
        ..Default::default()
    };
    // Seed window always spans ~10 s of launch regardless of slot width.
    let seed_slots = ((10_000_000 / slot) as usize).max(3);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for s in sessions {
        for (feats, stage) in session_stage_rows(s, slot, &cfg, seed_slots) {
            x.push(feats.to_vec());
            y.push(stage_class_id(stage));
        }
    }
    if x.len() > cap {
        let mut idx: Vec<usize> = (0..x.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        idx.truncate(cap);
        let xs = idx.iter().map(|&i| x[i].clone()).collect();
        let ys = idx.iter().map(|&i| y[i]).collect();
        return (xs, ys);
    }
    (x, y)
}

fn main() {
    println!("== Figure 10: stage accuracy vs EMA weight alpha for slot widths I ==\n");
    let train_sessions = gameplay_sessions(26, 420.0, 31);
    let test_sessions = gameplay_sessions(13, 420.0, 77);
    let alphas: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
    let slots: [(f64, Micros); 4] = [
        (0.1, 100_000),
        (0.5, 500_000),
        (1.0, 1_000_000),
        (2.0, 2_000_000),
    ];

    let mut sweeps = Vec::new();
    for &(slot_secs, slot) in &slots {
        let mut acc_by_alpha = Vec::new();
        for &alpha in &alphas {
            let (xtr, ytr) = rows_for(&train_sessions, slot, alpha, 24_000, 1);
            let (xte, yte) = rows_for(&test_sessions, slot, alpha, 12_000, 2);
            let train = Dataset::new(xtr, ytr).with_n_classes(4);
            let clf = StageClassifier::train(&train, StageClassifierConfig::default());
            // Score gameplay slots only (Table 4 convention).
            let mut correct = 0usize;
            let mut total = 0usize;
            for (xi, &yi) in xte.iter().zip(&yte) {
                if yi == stage_class_id(Stage::Launch) {
                    continue;
                }
                total += 1;
                let feats: [f64; 4] = [xi[0], xi[1], xi[2], xi[3]];
                if stage_class_id(clf.classify(&feats)) == yi {
                    correct += 1;
                }
            }
            let acc = correct as f64 / total.max(1) as f64;
            acc_by_alpha.push(acc);
            eprintln!("I={slot_secs}s alpha={alpha:.1} -> {:.1}%", acc * 100.0);
        }
        sweeps.push(Sweep {
            slot_secs,
            alphas: alphas.clone(),
            accuracy: acc_by_alpha,
        });
    }

    let mut rows = Vec::new();
    for (i, alpha) in alphas.iter().enumerate() {
        let mut row = vec![format!("{alpha:.1}")];
        row.extend(sweeps.iter().map(|s| f(s.accuracy[i] * 100.0, 1)));
        rows.push(row);
    }
    println!(
        "{}",
        table(&["alpha", "I=0.1s", "I=0.5s", "I=1s", "I=2s"], &rows)
    );

    let best = |s: &Sweep| {
        s.alphas
            .iter()
            .zip(&s.accuracy)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(a, acc)| (*a, *acc))
            .unwrap()
    };
    println!("\nShape check vs paper:");
    for s in &sweeps {
        let (a, acc) = best(s);
        println!(
            "  I={}s peaks at alpha={:.1} with {}",
            s.slot_secs,
            a,
            f(acc * 100.0, 1)
        );
    }
    let acc_1s = best(&sweeps[2]).1;
    let acc_01s = best(&sweeps[0]).1;
    println!(
        "  I=1s best ({}) should beat I=0.1s best ({}); alpha sweet spot ~0.5",
        f(acc_1s * 100.0, 1),
        f(acc_01s * 100.0, 1)
    );

    if let Ok(p) = write_json("fig10", &sweeps) {
        println!("\nwrote {}", p.display());
    }
}
