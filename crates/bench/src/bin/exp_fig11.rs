//! Figure 11 — average minutes spent in active, passive and idle player
//! activity stages per session, (a) per classified game title and (b) per
//! inferred activity pattern for unknown titles. Fleet-scale measurement.
//!
//! Note: fleet sessions are time-scaled (durations × the fleet config's
//! `duration_scale`); the *relative* stage mixes are what reproduce the
//! paper's figure.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig11
//! ```

use cgc_bench::{cached_fleet, fleet_config};
use cgc_deploy::aggregate::{stage_profiles_by_pattern, stage_profiles_by_title};
use cgc_deploy::report::{f, pct, table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    duration_scale: f64,
    by_title: Vec<cgc_deploy::aggregate::StageProfile>,
    by_pattern: Vec<cgc_deploy::aggregate::StageProfile>,
}

fn main() {
    println!("== Figure 11: stage minutes per session, by title and pattern ==\n");
    let records = cached_fleet();
    let by_title = stage_profiles_by_title(&records);
    let by_pattern = stage_profiles_by_pattern(&records);
    let scale = fleet_config().duration_scale;

    let render = |profiles: &[cgc_deploy::aggregate::StageProfile]| {
        let rows: Vec<Vec<String>> = profiles
            .iter()
            .filter(|p| p.sessions > 0)
            .map(|p| {
                let total = p.total_min().max(1e-9);
                vec![
                    p.context.clone(),
                    p.sessions.to_string(),
                    format!(
                        "{} ({})",
                        f(p.active_min / scale, 0),
                        pct(p.active_min / total)
                    ),
                    format!(
                        "{} ({})",
                        f(p.passive_min / scale, 0),
                        pct(p.passive_min / total)
                    ),
                    format!("{} ({})", f(p.idle_min / scale, 0), pct(p.idle_min / total)),
                    f(p.total_min() / scale, 0),
                ]
            })
            .collect();
        table(
            &[
                "Context",
                "#Sess",
                "active min",
                "passive min",
                "idle min",
                "total min",
            ],
            &rows,
        )
    };

    println!("(a) per classified title (minutes rescaled to paper-scale sessions):");
    println!("{}", render(&by_title));
    println!("(b) per inferred pattern (unknown titles):");
    println!("{}", render(&by_pattern));

    // Shape checks.
    let get = |name: &str| by_title.iter().find(|p| p.context == name);
    if let (Some(bg), Some(cs)) = (get("Baldur's Gate 3"), get("CS:GO/CS2")) {
        println!(
            "Shape check vs paper: Baldur's Gate sessions ({} min) are the longest,\nCS:GO/Rocket League the shortest ({} min); idle+passive share is large for\nrole-playing titles.",
            f(bg.total_min() / scale, 0),
            f(cs.total_min() / scale, 0)
        );
    }
    if by_pattern.iter().all(|p| p.sessions > 0) {
        let cont = &by_pattern[1];
        let spec = &by_pattern[0];
        println!(
            "Continuous-play idle share {} vs spectate-and-play active share {}",
            pct(cont.idle_min / cont.total_min().max(1e-9)),
            pct(spec.active_min / spec.total_min().max(1e-9))
        );
    }

    let out = Output {
        duration_scale: scale,
        by_title,
        by_pattern,
    };
    if let Ok(p) = write_json("fig11", &out) {
        println!("\nwrote {}", p.display());
    }
}
