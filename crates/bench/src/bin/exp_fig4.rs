//! Figure 4 — downstream throughput and upstream packet rate over time,
//! color-coded by ground-truth player activity stage, for representative
//! sessions (Overwatch, CS:GO, Cyberpunk 2077).
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig4
//! ```

use cgc_deploy::report::{f, table, write_json};
use cgc_domain::{GameTitle, Stage, StreamSettings};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::units::MICROS_PER_SEC;
use serde::Serialize;

#[derive(Serialize, Clone)]
struct StageLevels {
    title: String,
    /// Mean downstream Mbps per stage `[launch, idle, passive, active]`.
    down_mbps: [f64; 4],
    /// Mean upstream pps per stage.
    up_pps: [f64; 4],
    /// Per-second `(down_mbps, up_pps, stage)` series.
    series: Vec<(f64, f64, String)>,
    /// Seconds observed per stage.
    counts: [usize; 4],
}

fn levels_of(title: GameTitle, seed: u64) -> StageLevels {
    let mut generator = SessionGenerator::new();
    let s = generator.generate(&SessionConfig {
        kind: TitleKind::Known(title),
        settings: StreamSettings::default_pc(),
        gameplay_secs: 600.0,
        fidelity: Fidelity::LaunchOnly,
        seed,
    });
    let vol = s.vol_at(MICROS_PER_SEC);
    let stages = [Stage::Launch, Stage::Idle, Stage::Passive, Stage::Active];
    let mut sums = [[0.0f64; 2]; 4];
    let mut counts = [0usize; 4];
    let mut series = Vec::with_capacity(vol.len());
    for i in 0..vol.len() {
        let ts = i as u64 * MICROS_PER_SEC + MICROS_PER_SEC / 2;
        let Some(stage) = s.timeline.stage_at(ts) else {
            continue;
        };
        let k = stages.iter().position(|x| *x == stage).unwrap();
        let down = vol.down_mbps(i);
        let up = vol.up_pps(i);
        sums[k][0] += down;
        sums[k][1] += up;
        counts[k] += 1;
        series.push((down, up, stage.to_string()));
    }
    StageLevels {
        title: title.name().to_string(),
        down_mbps: std::array::from_fn(|k| sums[k][0] / counts[k].max(1) as f64),
        up_pps: std::array::from_fn(|k| sums[k][1] / counts[k].max(1) as f64),
        series,
        counts,
    }
}

fn main() {
    println!("== Figure 4: volumetric levels per player activity stage ==\n");
    let sessions = [
        levels_of(GameTitle::Overwatch2, 7),
        levels_of(GameTitle::CsGo, 8),
        levels_of(GameTitle::Cyberpunk2077, 9),
    ];
    let mut rows = Vec::new();
    for s in &sessions {
        for (k, name) in ["launch", "idle", "passive", "active"].iter().enumerate() {
            rows.push(vec![
                s.title.clone(),
                name.to_string(),
                f(s.down_mbps[k], 2),
                f(s.up_pps[k], 1),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["Session", "Stage", "mean down (Mbps)", "mean up (pps)"],
            &rows
        )
    );
    println!(
        "Shape check vs paper: active tops both directions; passive keeps\ndownstream near active but drops upstream hard; idle is low in both."
    );
    for s in &sessions {
        // Continuous-play sessions may contain no passive seconds at all;
        // only check orderings between stages that were observed.
        let has_passive = s.counts[2] > 0;
        let ok_down = s.down_mbps[3] > 2.0 * s.down_mbps[1]
            && (!has_passive
                || (s.down_mbps[3] > s.down_mbps[2] && s.down_mbps[2] > 2.0 * s.down_mbps[1]));
        let ok_up = s.up_pps[3] > s.up_pps[1]
            && (!has_passive || (s.up_pps[3] > 2.0 * s.up_pps[2] && s.up_pps[2] > s.up_pps[1]));
        println!(
            "{}: downstream ordering {} | upstream ordering {}{}",
            s.title,
            if ok_down { "OK" } else { "UNEXPECTED" },
            if ok_up { "OK" } else { "UNEXPECTED" },
            if has_passive {
                ""
            } else {
                " (no passive seconds in this session)"
            }
        );
    }

    if let Ok(p) = write_json("fig4", &sessions.to_vec()) {
        println!("\nwrote {}", p.display());
    }
}
