//! Diagnostic probe (not part of run_all): where do pattern decisions fire
//! and how accurate are latched vs end-of-session inferences?

use cgc_bench::cached_bundle;
use cgc_core::pattern::PatternTracker;
use cgc_deploy::train::classified_stage_sequence;
use cgc_domain::{ActivityPattern, GameTitle};
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = cached_bundle();
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(4);
    for pattern in ActivityPattern::ALL {
        let titles: Vec<GameTitle> = GameTitle::ALL
            .iter()
            .copied()
            .filter(|t| t.pattern() == pattern)
            .collect();
        let mut latched_ok = 0;
        let mut latched = 0;
        let mut final_ok = 0;
        let mut n = 0;
        let mut decide_slots = Vec::new();
        for i in 0..40usize {
            let s = generator.generate(&SessionConfig {
                kind: TitleKind::Known(titles[i % titles.len()]),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs: 1500.0,
                fidelity: Fidelity::LaunchOnly,
                seed: 40_000 + pattern.index() as u64 * 1000 + i as u64,
            });
            let seq = classified_stage_sequence(&bundle.stage, &s);
            let mut tracker = PatternTracker::new();
            for &st in &seq {
                tracker.push(st, &bundle.pattern);
            }
            n += 1;
            if let Some(d) = tracker.decision() {
                latched += 1;
                decide_slots.push(d.decided_after_slots);
                if d.pattern == pattern {
                    latched_ok += 1;
                }
            }
            if let Some((p, _)) = tracker.force_infer(&bundle.pattern) {
                if p == pattern {
                    final_ok += 1;
                }
            }
        }
        decide_slots.sort_unstable();
        println!(
            "{pattern}: latched {latched}/{n} (acc {:.0}%), final acc {:.0}%, decision slots median {:?}",
            100.0 * latched_ok as f64 / latched.max(1) as f64,
            100.0 * final_ok as f64 / n as f64,
            decide_slots.get(decide_slots.len() / 2)
        );
    }
}
