//! Figure 8 — game title classification accuracy as a function of the
//! analysis window `N` (seconds from launch) for four time-slot widths
//! `T ∈ {0.1, 0.5, 1, 2} s`.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_fig8
//! ```

use cgc_bench::{default_forest, eval_title, AttrKind, LaunchCorpus};
use cgc_deploy::report::{f, table, write_json};
use cgc_features::launch_attrs::LaunchAttrConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Sweep {
    slot_secs: f64,
    windows: Vec<f64>,
    accuracy: Vec<f64>,
}

fn main() {
    println!("== Figure 8: accuracy vs window N for slot widths T ==\n");
    let corpus = LaunchCorpus::generate(15, 8, 61.0, 8);
    let windows = [1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 45.0, 60.0];
    let slots = [0.1, 0.5, 1.0, 2.0];
    let forest = default_forest();

    let mut sweeps = Vec::new();
    for &t in &slots {
        let mut acc = Vec::new();
        for &n in &windows {
            if n < t {
                acc.push(0.0);
                continue;
            }
            let cfg = LaunchAttrConfig {
                window_secs: n,
                slot_secs: t,
                v: 0.10,
            };
            let eval = eval_title(&corpus, &cfg, AttrKind::PacketGroup, &forest, 2);
            acc.push(eval.accuracy);
            eprintln!("T={t}s N={n}s -> {:.1}%", eval.accuracy * 100.0);
        }
        sweeps.push(Sweep {
            slot_secs: t,
            windows: windows.to_vec(),
            accuracy: acc,
        });
    }

    let mut rows = Vec::new();
    for (i, &n) in windows.iter().enumerate() {
        let mut row = vec![format!("{n}")];
        row.extend(sweeps.iter().map(|s| f(s.accuracy[i] * 100.0, 1)));
        rows.push(row);
    }
    println!(
        "{}",
        table(&["N (s)", "T=0.1s", "T=0.5s", "T=1s", "T=2s"], &rows)
    );

    // Shape checks.
    let at = |t_idx: usize, n: f64| {
        let i = windows.iter().position(|&x| x == n).unwrap();
        sweeps[t_idx].accuracy[i]
    };
    println!("\nShape check vs paper:");
    println!(
        "  T=1s rises with N and saturates by N=3-5s: N=1 {} < N=3 {} <= N=60 {}",
        f(at(2, 1.0) * 100.0, 1),
        f(at(2, 3.0) * 100.0, 1),
        f(at(2, 60.0) * 100.0, 1)
    );
    println!(
        "  at N=5s, T=1s ({}) should beat T=0.1s ({})",
        f(at(2, 5.0) * 100.0, 1),
        f(at(0, 5.0) * 100.0, 1)
    );

    if let Ok(p) = write_json("fig8", &sweeps) {
        println!("\nwrote {}", p.display());
    }
}
