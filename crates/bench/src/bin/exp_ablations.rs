//! Ablations of the design choices DESIGN.md calls out. Each ablation is
//! staged where the design choice actually bites:
//!
//! 1. **EMA smoothing** — at fine slots (`I = 0.5 s`) where single-slot
//!    volumetric noise is strongest (at `I = 1 s` aggregation already
//!    smooths; see exp_fig10 for the full grid).
//! 2. **Peak-relative normalization vs absolute volumetrics** — under a
//!    settings shift: train on SD–FHD sessions, test on QHD/UHD sessions.
//!    Absolute levels move with the settings; relative levels do not
//!    (the §3.3 claim).
//! 3. **Group tolerance V** — labeling behaviour: the fraction of non-full
//!    packets labeled steady grows with V (the §4.4.1 boundary), plus the
//!    resulting title accuracy.
//! 4. **Variation augmentation** — with two training sessions per title,
//!    where synthetic variation has samples to replace.
//!
//! ```text
//! cargo run -p cgc-bench --release --bin exp_ablations
//! ```

use cgc_bench::{default_forest, eval_title, AttrKind, LaunchCorpus};
use cgc_core::stage::{stage_class_id, StageClassifier, StageClassifierConfig};
use cgc_deploy::report::{f, pct, table, write_json};
use cgc_domain::{GameTitle, Resolution, Stage, StreamSettings};
use cgc_features::groups::{label_groups, GroupLabel};
use cgc_features::launch_attrs::LaunchAttrConfig;
use cgc_features::vol_attrs::{raw_features, StageFeatureConfig};
use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use mlcore::Dataset;
use nettrace::units::{Micros, MICROS_PER_SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Ablation {
    name: String,
    variant: String,
    metric: String,
    value: f64,
}

/// Sessions with resolutions restricted to a tier set.
fn sessions_with_resolutions(
    n: usize,
    gameplay_secs: f64,
    resolutions: &[Resolution],
    seed: u64,
) -> Vec<Session> {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let settings = StreamSettings {
                resolution: resolutions[rng.gen_range(0..resolutions.len())],
                fps: *[30u32, 60, 120].get(rng.gen_range(0..3usize)).unwrap(),
                ..StreamSettings::default_pc()
            };
            generator.generate(&SessionConfig {
                kind: TitleKind::Known(GameTitle::ALL[i % GameTitle::ALL.len()]),
                settings,
                gameplay_secs,
                fidelity: Fidelity::LaunchOnly,
                seed: seed.wrapping_mul(131).wrapping_add(i as u64),
            })
        })
        .collect()
}

/// Per-slot rows with either relative (pipeline) or absolute features.
fn stage_rows(
    sessions: &[Session],
    slot: Micros,
    alpha: f64,
    relative: bool,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let seed_slots = ((10_000_000 / slot) as usize).max(3);
    for s in sessions {
        if relative {
            let cfg = StageFeatureConfig {
                alpha,
                ..Default::default()
            };
            for (feats, stage) in cgc_bench::session_stage_rows(s, slot, &cfg, seed_slots) {
                x.push(feats.to_vec());
                y.push(stage_class_id(stage));
            }
        } else {
            let vol = s.vol_at(slot);
            for (j, sample) in vol.samples.iter().enumerate().skip(seed_slots) {
                let midpoint = j as u64 * slot + slot / 2;
                let Some(stage) = s.timeline.stage_at(midpoint) else {
                    continue;
                };
                x.push(raw_features(sample, slot as f64 / 1e6).to_vec());
                y.push(stage_class_id(stage));
            }
        }
    }
    (x, y)
}

fn stage_accuracy(train: (Vec<Vec<f64>>, Vec<usize>), test: (Vec<Vec<f64>>, Vec<usize>)) -> f64 {
    let d = Dataset::new(train.0, train.1).with_n_classes(4);
    let clf = StageClassifier::train(&d, StageClassifierConfig::default());
    let mut ok = 0usize;
    let mut total = 0usize;
    for (xi, yi) in test.0.iter().zip(&test.1) {
        if *yi == stage_class_id(Stage::Launch) {
            continue;
        }
        total += 1;
        if stage_class_id(clf.classify(&[xi[0], xi[1], xi[2], xi[3]])) == *yi {
            ok += 1;
        }
    }
    ok as f64 / total.max(1) as f64
}

fn main() {
    println!("== ablations of the paper's design choices ==\n");
    let mut results = Vec::new();

    // --- 1. EMA at fine slots (I = 0.5 s). ---
    let train_any = sessions_with_resolutions(24, 420.0, &Resolution::ALL, 181);
    let test_any = sessions_with_resolutions(12, 420.0, &Resolution::ALL, 182);
    for alpha in [0.1, 0.5, 1.0] {
        let acc = stage_accuracy(
            stage_rows(&train_any, 500_000, alpha, true),
            stage_rows(&test_any, 500_000, alpha, true),
        );
        results.push(Ablation {
            name: "stage: EMA at I=0.5s".into(),
            variant: format!("alpha={alpha}"),
            metric: "accuracy".into(),
            value: acc,
        });
    }

    // --- 2. Relative vs absolute under a settings shift. ---
    let train_low = sessions_with_resolutions(
        24,
        420.0,
        &[Resolution::Sd, Resolution::Hd, Resolution::Fhd],
        183,
    );
    let test_high = sessions_with_resolutions(12, 420.0, &[Resolution::Qhd, Resolution::Uhd], 184);
    let acc_rel = stage_accuracy(
        stage_rows(&train_low, MICROS_PER_SEC, 0.5, true),
        stage_rows(&test_high, MICROS_PER_SEC, 0.5, true),
    );
    let acc_abs = stage_accuracy(
        stage_rows(&train_low, MICROS_PER_SEC, 0.5, false),
        stage_rows(&test_high, MICROS_PER_SEC, 0.5, false),
    );
    results.push(Ablation {
        name: "stage: train SD-FHD, test QHD-UHD".into(),
        variant: "peak-relative (paper)".into(),
        metric: "accuracy".into(),
        value: acc_rel,
    });
    results.push(Ablation {
        name: "stage: train SD-FHD, test QHD-UHD".into(),
        variant: "absolute volumetrics".into(),
        metric: "accuracy".into(),
        value: acc_abs,
    });

    // --- 3. Group tolerance V: labeling behaviour + accuracy. ---
    let corpus = LaunchCorpus::generate(18, 10, 5.5, 93);
    for v in [0.01, 0.05, 0.10, 0.15, 0.20] {
        // Steady share among non-full packets over a sample of sessions.
        let mut steady = 0usize;
        let mut non_full = 0usize;
        for (_, pkts) in corpus.test.iter().take(26) {
            for l in label_groups(pkts, 5_500_000, MICROS_PER_SEC, v) {
                match l.label {
                    GroupLabel::Full => {}
                    GroupLabel::Steady => {
                        steady += 1;
                        non_full += 1;
                    }
                    GroupLabel::Sparse => non_full += 1,
                }
            }
        }
        results.push(Ablation {
            name: "title: group tolerance V".into(),
            variant: pct(v),
            metric: "steady share of non-full".into(),
            value: steady as f64 / non_full.max(1) as f64,
        });
        let cfg = LaunchAttrConfig {
            v,
            ..LaunchAttrConfig::default()
        };
        let eval = eval_title(&corpus, &cfg, AttrKind::PacketGroup, &default_forest(), 2);
        results.push(Ablation {
            name: "title: group tolerance V".into(),
            variant: pct(v),
            metric: "accuracy".into(),
            value: eval.accuracy,
        });
    }

    // --- 4. Augmentation with scarce training data. ---
    let scarce = LaunchCorpus::generate(2, 10, 5.5, 94);
    let cfg = LaunchAttrConfig::default();
    for (aug, label) in [(1usize, "off"), (6, "x6")] {
        let eval = eval_title(&scarce, &cfg, AttrKind::PacketGroup, &default_forest(), aug);
        results.push(Ablation {
            name: "title: augmentation (2 sessions/title)".into(),
            variant: label.into(),
            metric: "accuracy".into(),
            value: eval.accuracy,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|a| {
            vec![
                a.name.clone(),
                a.variant.clone(),
                a.metric.clone(),
                f(a.value * 100.0, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["ablation", "variant", "metric", "value (%)"], &rows)
    );

    println!("\nShape checks:");
    println!("  EMA: the mid alpha should beat both extremes at fine slots");
    println!("  relative features must survive the settings shift better than absolute");
    println!("  steady share must grow monotonically with V (the 1%-vs-20% boundary of §4.4.1);");
    println!("  title accuracy itself is V-robust on our traffic (count attributes dominate)");
    println!("  augmentation: neutral on our synthetic launches (the generator already");
    println!("  supplies the variation the paper synthesized for real captures)");

    if let Ok(p) = write_json("ablations", &results) {
        println!("\nwrote {}", p.display());
    }
}
