//! # cgc-bench — experiment regenerators and benchmarks
//!
//! One binary per table/figure of the paper (see `src/bin/exp_*.rs` and
//! DESIGN.md §4 for the index), plus Criterion micro-benchmarks of the
//! pipeline's hot paths. This library holds the evaluation helpers the
//! binaries share: multi-config launch-attribute dataset construction,
//! accuracy sweeps, and session-level stage/pattern evaluation.

#![warn(missing_docs)]

use cgc_core::bundle::ModelBundle;
use cgc_core::stage::stage_class_id;
use cgc_core::title::TitleClassifierConfig;
use cgc_domain::{GameTitle, Stage};
use cgc_features::launch_attrs::{flow_volumetric_attributes, launch_attributes, LaunchAttrConfig};
use cgc_features::vol_attrs::StageFeatureExtractor;
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use mlcore::augment::augment_multiply;
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::metrics::{accuracy, ConfusionMatrix};
use mlcore::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod forestperf;

/// How launch attributes are derived from a session for an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// The paper's packet-group attributes (full/steady/sparse).
    PacketGroup,
    /// The Table 3 baseline: plain per-slot packet rate + throughput.
    FlowVolumetric,
}

/// A generated evaluation corpus: per-title launch windows for train and
/// test splits, reusable across many `(N, T, V)` attribute configurations
/// without regenerating traffic.
pub struct LaunchCorpus {
    /// `(title, launch packets)` for training.
    pub train: Vec<(GameTitle, Vec<nettrace::packet::Packet>)>,
    /// `(title, launch packets)` for testing.
    pub test: Vec<(GameTitle, Vec<nettrace::packet::Packet>)>,
}

impl LaunchCorpus {
    /// Generates `n_train + n_test` sessions per catalog title with
    /// lab-matrix settings; packets are kept up to `max_window_secs`.
    pub fn generate(n_train: usize, n_test: usize, max_window_secs: f64, seed: u64) -> Self {
        let mut generator = SessionGenerator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for title in GameTitle::ALL {
            for i in 0..(n_train + n_test) {
                let s = generator.generate(&SessionConfig {
                    kind: TitleKind::Known(title),
                    settings: sample_lab_settings(&mut rng),
                    gameplay_secs: 2.0,
                    fidelity: Fidelity::LaunchOnly,
                    seed: seed
                        .wrapping_mul(2654435761)
                        .wrapping_add((title.index() * 100_000 + i) as u64),
                });
                let window = s.launch_window(max_window_secs);
                if i < n_train {
                    train.push((title, window));
                } else {
                    test.push((title, window));
                }
            }
        }
        LaunchCorpus { train, test }
    }

    /// Extracts a labeled dataset from one split under an attribute
    /// configuration.
    pub fn dataset(
        split: &[(GameTitle, Vec<nettrace::packet::Packet>)],
        cfg: &LaunchAttrConfig,
        kind: AttrKind,
    ) -> Dataset {
        let mut x = Vec::with_capacity(split.len());
        let mut y = Vec::with_capacity(split.len());
        for (title, pkts) in split {
            let attrs = match kind {
                AttrKind::PacketGroup => launch_attributes(pkts, cfg),
                AttrKind::FlowVolumetric => flow_volumetric_attributes(pkts, cfg),
            };
            x.push(attrs);
            y.push(title.index());
        }
        let mut d = Dataset::new(x, y).with_n_classes(GameTitle::ALL.len());
        if kind == AttrKind::PacketGroup {
            d = d.with_feature_names(cfg.attribute_names());
        }
        d
    }
}

/// Result of one title-classification evaluation.
pub struct TitleEval {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Confusion matrix over the 13 titles.
    pub confusion: ConfusionMatrix,
    /// The fitted forest (for importance analyses).
    pub forest: RandomForest,
    /// The test dataset used.
    pub test: Dataset,
}

/// Trains a Random Forest on the corpus under `(cfg, kind)` and evaluates
/// on the held-out split. Applies ×`augment` variation augmentation to the
/// training set.
pub fn eval_title(
    corpus: &LaunchCorpus,
    cfg: &LaunchAttrConfig,
    kind: AttrKind,
    forest_cfg: &RandomForestConfig,
    augment: usize,
) -> TitleEval {
    let train = LaunchCorpus::dataset(&corpus.train, cfg, kind);
    let train = augment_multiply(&train, augment.max(1), 0.05, 11);
    let test = LaunchCorpus::dataset(&corpus.test, cfg, kind);
    let forest = RandomForest::fit(&train, forest_cfg);
    let preds = forest.predict_batch(&test.x);
    TitleEval {
        accuracy: accuracy(&test.y, &preds),
        confusion: ConfusionMatrix::from_pairs(test.n_classes, &test.y, &preds),
        forest,
        test,
    }
}

/// The deployed title-classifier forest configuration used by the
/// experiments (paper: 500 trees depth 10; 150 trees reach the same
/// accuracy here at a third of the cost — exp_fig14 sweeps the full grid).
pub fn default_forest() -> RandomForestConfig {
    RandomForestConfig {
        n_trees: 150,
        max_depth: 10,
        seed: 3,
        ..Default::default()
    }
}

/// Generates gameplay sessions for stage/pattern evaluations:
/// `n` sessions cycling the catalog, `gameplay_secs` each.
pub fn gameplay_sessions(n: usize, gameplay_secs: f64, seed: u64) -> Vec<Session> {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            generator.generate(&SessionConfig {
                kind: TitleKind::Known(GameTitle::ALL[i % GameTitle::ALL.len()]),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs,
                fidelity: Fidelity::LaunchOnly,
                seed: seed.wrapping_mul(77).wrapping_add(i as u64),
            })
        })
        .collect()
}

/// Per-slot `(features, truth stage)` rows for one session under a slot
/// width and feature configuration — the exact pipeline path.
pub fn session_stage_rows(
    session: &Session,
    slot: nettrace::units::Micros,
    feature_cfg: &cgc_features::vol_attrs::StageFeatureConfig,
    seed_slots: usize,
) -> Vec<([f64; 4], Stage)> {
    let vol = session.vol_at(slot);
    if vol.len() <= seed_slots {
        return Vec::new();
    }
    let mut extractor = StageFeatureExtractor::new(feature_cfg, slot, &vol.samples[..seed_slots]);
    let mut out = Vec::new();
    for (j, sample) in vol.samples.iter().enumerate().skip(seed_slots) {
        let feats = extractor.push(sample);
        let midpoint = j as u64 * slot + slot / 2;
        if let Some(stage) = session.timeline.stage_at(midpoint) {
            out.push((feats, stage));
        }
    }
    out
}

/// Builds a labeled stage dataset (4 classes incl. launch) from sessions.
pub fn stage_dataset_from(
    sessions: &[Session],
    slot: nettrace::units::Micros,
    feature_cfg: &cgc_features::vol_attrs::StageFeatureConfig,
    seed_slots: usize,
) -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for s in sessions {
        for (feats, stage) in session_stage_rows(s, slot, feature_cfg, seed_slots) {
            x.push(feats.to_vec());
            y.push(stage_class_id(stage));
        }
    }
    Dataset::new(x, y).with_n_classes(4)
}

/// Loads (or trains and caches) the full-quality model bundle used by the
/// deployment experiments. The cache lives in the results directory so
/// `run_all` trains once.
pub fn cached_bundle() -> ModelBundle {
    let path = cgc_deploy::report::results_dir().join("bundle.json");
    if let Ok(b) = ModelBundle::load(&path) {
        return b;
    }
    let bundle = cgc_deploy::train::train_bundle(&cgc_deploy::train::TrainConfig::default());
    std::fs::create_dir_all(cgc_deploy::report::results_dir()).ok();
    bundle.save(&path).ok();
    bundle
}

/// The default `(N = 5 s, T = 1 s, V = 10 %)` attribute configuration.
pub fn deployed_attr_config() -> LaunchAttrConfig {
    TitleClassifierConfig::default().attr
}

/// The fleet configuration shared by the §5 experiments: a scaled-down
/// three-month deployment (durations ×0.12, ~1200 sessions).
pub fn fleet_config() -> cgc_deploy::FleetConfig {
    cgc_deploy::FleetConfig {
        n_sessions: 2000,
        duration_scale: 0.12,
        ..Default::default()
    }
}

/// Loads (or runs and caches) the shared fleet records for the §5
/// experiments, using the cached bundle with a measurement-learned
/// calibration table (two-pass: classify → calibrate → relabel QoE).
pub fn cached_fleet() -> Vec<cgc_deploy::SessionRecord> {
    let path = cgc_deploy::report::results_dir().join("fleet_records.json");
    if let Ok(body) = std::fs::read_to_string(&path) {
        if let Ok(records) = serde_json::from_str(&body) {
            return records;
        }
    }
    let mut bundle = cached_bundle();
    let cfg = fleet_config();
    // Calibration month: learn per-context demand from a first pass.
    let calib_records = cgc_deploy::run_fleet(
        &bundle,
        &cgc_deploy::FleetConfig {
            n_sessions: 300,
            seed: cfg.seed ^ 0xCA11B,
            uniform_titles: true,
            ..cfg.clone()
        },
    );
    bundle.calibration = cgc_deploy::aggregate::calibrate(&calib_records);
    let records = cgc_deploy::run_fleet(&bundle, &cfg);
    std::fs::create_dir_all(cgc_deploy::report::results_dir()).ok();
    if let Ok(json) = serde_json::to_string(&records) {
        std::fs::write(&path, json).ok();
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_and_eval_roundtrip() {
        let corpus = LaunchCorpus::generate(3, 2, 5.0, 1);
        assert_eq!(corpus.train.len(), 39);
        assert_eq!(corpus.test.len(), 26);
        let cfg = deployed_attr_config();
        let eval = eval_title(
            &corpus,
            &cfg,
            AttrKind::PacketGroup,
            &RandomForestConfig {
                n_trees: 25,
                ..Default::default()
            },
            2,
        );
        assert!(eval.accuracy > 0.5, "accuracy {}", eval.accuracy);
        assert_eq!(eval.confusion.n_classes(), 13);
    }

    #[test]
    fn stage_rows_align_with_truth() {
        let sessions = gameplay_sessions(2, 120.0, 3);
        let rows = session_stage_rows(
            &sessions[0],
            nettrace::units::MICROS_PER_SEC,
            &Default::default(),
            10,
        );
        assert!(!rows.is_empty());
        // Early rows (still in launch) are labeled Launch.
        assert_eq!(rows[0].1, Stage::Launch);
        // Later rows include gameplay stages.
        assert!(rows.iter().any(|(_, s)| s.is_gameplay()));
    }
}
