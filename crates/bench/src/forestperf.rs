//! Shared forest-inference and monitor performance measurement.
//!
//! Both `bench_forest` (the `BENCH_forest.json` regenerator) and
//! `bench_gate` (the CI perf-regression gate) measure through this module,
//! so the committed snapshot and the gate's fresh numbers are always
//! produced by the same methodology: same trained forest, same probe set,
//! best-of-N wall-clock reps.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cgc_core::bundle::ModelBundle;
use cgc_core::monitor::{MonitorConfig, TapMonitor};
use cgc_deploy::train::{train_bundle, TrainConfig};
use cgc_lifecycle::LiveModel;
use mlcore::{argmax, Classifier, Dataset, RandomForest, RandomForestConfig};
use nettrace::packet::FiveTuple;
use nettrace::units::Micros;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stage-classifier scale: 4 engineered features, 4 activity classes.
const N_FEATURES: usize = 4;
const N_CLASSES: usize = 4;
const TRAIN_ROWS: usize = 1_200;
const PROBES: usize = 4_096;

const MONITOR_FLOWS: usize = 10_000;
const PACKETS_PER_FLOW: usize = 12;

/// Per-prediction latency of the inference paths under comparison.
#[derive(Serialize, Deserialize)]
pub struct InferencePerf {
    /// Trees in the measured forest.
    pub n_trees: usize,
    /// Depth cap the forest was trained with.
    pub max_depth: usize,
    /// Feature-vector width.
    pub n_features: usize,
    /// Class count.
    pub n_classes: usize,
    /// Total nodes in the flat node table.
    pub n_nodes: usize,
    /// Probe rows per measurement rep.
    pub probes: usize,
    /// Seed hot path: allocating pointer-chasing `RandomForest::predict`.
    pub pointer_single_ns: f64,
    /// Pointer traversal with a caller-owned buffer (no allocation).
    pub pointer_into_ns: f64,
    /// Flat node-array traversal, one row at a time.
    pub flat_single_ns: f64,
    /// Flat batch traversal (row groups in lockstep), amortized per row.
    pub flat_batch_ns_per_row: f64,
    /// `pointer_single_ns / flat_single_ns` — the per-slot latency win.
    pub speedup_flat_single: f64,
    /// `pointer_single_ns / flat_batch_ns_per_row` — the whole-slot win.
    pub speedup_flat_batch: f64,
}

/// Serial `TapMonitor` end-to-end throughput.
#[derive(Serialize, Deserialize)]
pub struct MonitorPerf {
    /// Distinct flows in the feed.
    pub flows: usize,
    /// Total tap records ingested per rep.
    pub records: usize,
    /// Best-rep ingest throughput.
    pub records_per_sec: f64,
}

/// The shape of `BENCH_forest.json`.
#[derive(Serialize, Deserialize)]
pub struct ForestSnapshot {
    /// Inference-path latencies and speedups.
    pub inference: InferencePerf,
    /// Serial monitor throughput with flat inference threaded through.
    pub monitor: MonitorPerf,
}

/// Separable-but-noisy synthetic rows: each class is a blob in feature
/// space, like the stage feature vectors the pipeline feeds.
fn synth_dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(rows);
    let mut y = Vec::with_capacity(rows);
    for i in 0..rows {
        let class = i % N_CLASSES;
        let row: Vec<f64> = (0..N_FEATURES)
            .map(|f| {
                let center = (class * N_FEATURES + f) as f64 * 3.0;
                center + rng.gen_range(-2.0..2.0)
            })
            .collect();
        x.push(row);
        y.push(class);
    }
    Dataset::new(x, y)
}

fn probe_rows(seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PROBES)
        .map(|_| (0..N_FEATURES).map(|_| rng.gen_range(-5.0..50.0)).collect())
        .collect()
}

/// Best-of-`reps` wall time for `body`, returned as ns/prediction.
fn best_ns_per_row(rows: usize, reps: usize, mut body: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let sink = body();
        let ns = start.elapsed().as_nanos() as f64 / rows as f64;
        black_box(sink);
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Trains the stage-scale forest and measures every inference path,
/// best-of-`reps` each. Asserts flat/pointer equivalence on the probe set
/// before timing anything — a wrong kernel must never be snapshotted as a
/// speedup.
pub fn measure_inference(reps: usize) -> InferencePerf {
    let cfg = RandomForestConfig {
        n_trees: 60,
        max_depth: 10,
        seed: 9,
        ..Default::default()
    };
    let data = synth_dataset(TRAIN_ROWS, 17);
    let forest = RandomForest::fit(&data, &cfg);
    let flat = forest.to_flat();
    let probes = probe_rows(23);
    let nc = flat.n_classes();

    for x in probes.iter().take(256) {
        assert_eq!(
            forest.predict_proba(x),
            flat.predict_proba(x),
            "bench forest diverged between layouts"
        );
    }

    let pointer_single_ns = best_ns_per_row(probes.len(), reps, || {
        probes.iter().map(|x| forest.predict(x)).sum()
    });
    let pointer_into_ns = best_ns_per_row(probes.len(), reps, || {
        let mut buf = vec![0.0f64; nc];
        probes
            .iter()
            .map(|x| {
                forest.predict_proba_into(x, &mut buf);
                argmax(&buf)
            })
            .sum()
    });
    let flat_single_ns = best_ns_per_row(probes.len(), reps, || {
        let mut buf = vec![0.0f64; nc];
        probes
            .iter()
            .map(|x| {
                flat.predict_proba_into(x, &mut buf);
                argmax(&buf)
            })
            .sum()
    });
    let flat_batch_ns_per_row = best_ns_per_row(probes.len(), reps, || {
        let mut out = vec![0.0f64; probes.len() * nc];
        flat.predict_proba_batch_into(&probes, &mut out);
        out.chunks_exact(nc).map(argmax).sum()
    });

    InferencePerf {
        n_trees: forest.n_trees(),
        max_depth: cfg.max_depth,
        n_features: forest.n_features(),
        n_classes: nc,
        n_nodes: flat.n_nodes(),
        probes: probes.len(),
        pointer_single_ns,
        pointer_into_ns,
        flat_single_ns,
        flat_batch_ns_per_row,
        speedup_flat_single: pointer_single_ns / flat_single_ns,
        speedup_flat_batch: pointer_single_ns / flat_batch_ns_per_row,
    }
}

/// The serial-monitor feed from `benches/monitor.rs`: round-robin packets
/// over distinct gaming five-tuples so flows stay interleaved.
fn monitor_feed() -> Vec<(Micros, FiveTuple, u32)> {
    let tuples: Vec<FiveTuple> = (0..MONITOR_FLOWS)
        .map(|i| {
            FiveTuple::udp_v4(
                [10, 0, (i >> 8) as u8, (i & 0xff) as u8],
                49003,
                [100, 64, (i >> 8) as u8, (i & 0xff) as u8],
                50_000 + (i % 10_000) as u16,
            )
        })
        .collect();
    let mut feed = Vec::with_capacity(MONITOR_FLOWS * PACKETS_PER_FLOW);
    for tick in 0..PACKETS_PER_FLOW {
        for (i, t) in tuples.iter().enumerate() {
            let ts = tick as u64 * 1_000_000 + i as u64 * 7;
            let wire = if tick % 5 == 4 { t.reversed() } else { *t };
            feed.push((ts, wire, if tick % 5 == 4 { 120 } else { 1200 }));
        }
    }
    feed
}

/// Trains a quick bundle and replays the interleaved 10 k-flow feed
/// through a serial [`TapMonitor`], best-of-`reps`.
pub fn measure_monitor(reps: usize) -> MonitorPerf {
    measure_monitor_with_sinks(reps, None, None)
}

/// [`measure_monitor`] with span tracing attached at `1/sample` head
/// sampling. `sample = u64::MAX` keeps the sink enabled but samples every
/// real flow out — the cost of the tracing *branches* alone, which the
/// perf gate holds against the untraced number.
pub fn measure_monitor_traced(reps: usize, sample: u64) -> MonitorPerf {
    let registry = cgc_obs::Registry::new();
    let (sink, _collector) = cgc_obs::TraceCollector::new(
        cgc_obs::TraceConfig::default().with_sample(sample),
        &registry,
    );
    measure_monitor_with_sinks(reps, Some(sink), None)
}

/// [`measure_monitor`] with a live drift sink attached, so every title
/// and stage inference also pushes a score observation into the drift
/// ring. The perf gate holds this against the sink-absent number: the
/// observatory must ride along for near-free.
pub fn measure_monitor_drifted(reps: usize) -> MonitorPerf {
    let registry = cgc_obs::Registry::new();
    let (sink, _engine) = cgc_obs::DriftEngine::new(cgc_obs::DriftConfig::default(), &registry);
    measure_monitor_with_sinks(reps, None, Some(sink))
}

/// [`measure_monitor`] with the monitor served from a [`LiveModel`] hot
/// slot instead of a fixed bundle reference — the fleet configuration
/// once a `LifecyclePilot` is attached. Every flow admission pays one
/// extra `Acquire` pointer load to pin its version; the perf gate holds
/// this against the fixed-bundle number (ratio floor 0.90).
pub fn measure_monitor_live(reps: usize) -> MonitorPerf {
    let live = LiveModel::new(train_bundle(&TrainConfig::quick()));
    let feed = monitor_feed();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut monitor = TapMonitor::new(&live, MonitorConfig::default());
        let start = Instant::now();
        for (ts, tuple, len) in &feed {
            monitor.ingest(*ts, tuple, *len);
        }
        let flows = monitor.finish_all().len();
        let secs = start.elapsed().as_secs_f64();
        black_box(flows);
        if secs < best {
            best = secs;
        }
    }
    MonitorPerf {
        flows: MONITOR_FLOWS,
        records: feed.len(),
        records_per_sec: feed.len() as f64 / best,
    }
}

/// Records per latency-sampled ingest chunk in the swap-under-load
/// measurement: big enough that one chunk spans a few milliseconds of
/// ingest, so a stalled swap would dominate its latency rather than
/// drown in scheduler noise.
const SWAP_CHUNK: usize = 4_096;

/// Tolerated multiple of the quiet p99 chunk latency while swaps are in
/// flight. A publisher that stalled readers (a lock on the pin path, a
/// torn-state retry loop) would blow through this by orders of
/// magnitude; scheduler jitter from the one extra thread does not.
pub const SWAP_LATENCY_HEADROOM: f64 = 8.0;

/// Swap-under-load latency profile: per-chunk ingest wall times with the
/// hot slot quiet vs. with a publisher republishing mid-ingest.
#[derive(Serialize, Deserialize)]
pub struct SwapPerf {
    /// Tap records per latency-sampled chunk.
    pub chunk_records: usize,
    /// Latency samples per pass.
    pub chunks: usize,
    /// Versions published while the swapped pass was ingesting.
    pub swaps: usize,
    /// p99 chunk latency with no publisher (ns).
    pub quiet_p99_ns: f64,
    /// p99 chunk latency while swaps land (ns).
    pub swapped_p99_ns: f64,
    /// Worst chunk latency while swaps land (ns).
    pub swapped_max_ns: f64,
}

impl SwapPerf {
    /// The gate predicate: no ingest chunk during the swap storm may
    /// exceed the quiet p99 by more than [`SWAP_LATENCY_HEADROOM`].
    pub fn within_headroom(&self) -> bool {
        self.swapped_max_ns <= self.quiet_p99_ns * SWAP_LATENCY_HEADROOM
    }
}

/// One full feed replay against `live`, returning per-chunk ingest wall
/// times in nanoseconds.
fn chunk_latencies(live: &LiveModel<ModelBundle>, feed: &[(Micros, FiveTuple, u32)]) -> Vec<f64> {
    let mut monitor = TapMonitor::new(live, MonitorConfig::default());
    let mut latencies = Vec::with_capacity(feed.len() / SWAP_CHUNK + 1);
    for chunk in feed.chunks(SWAP_CHUNK) {
        let start = Instant::now();
        for (ts, tuple, len) in chunk {
            monitor.ingest(*ts, tuple, *len);
        }
        latencies.push(start.elapsed().as_nanos() as f64);
    }
    black_box(monitor.finish_all().len());
    latencies
}

fn p99(latencies: &[f64]) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[((sorted.len() - 1) * 99) / 100]
}

/// Measures hot-swap impact on ingest tail latency: one quiet pass over
/// the 10 k-flow feed, then `reps` passes with a publisher thread
/// republishing a cloned bundle every millisecond, keeping the reported
/// swapped pass as the best-of-`reps` by worst chunk (same best-of
/// methodology as the throughput numbers — the gate asks whether a swap
/// *must* stall ingest, not whether the scheduler *can*).
pub fn measure_swap_under_load(reps: usize) -> SwapPerf {
    let bundle = train_bundle(&TrainConfig::quick());
    let live = Arc::new(LiveModel::new(bundle.clone()));
    let feed = monitor_feed();

    let mut quiet_p99_ns = f64::INFINITY;
    for _ in 0..reps {
        quiet_p99_ns = quiet_p99_ns.min(p99(&chunk_latencies(&live, &feed)));
    }

    let mut best: Option<(Vec<f64>, usize)> = None;
    for _ in 0..reps {
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            let bundle = bundle.clone();
            std::thread::spawn(move || {
                let mut published = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    live.publish(bundle.clone());
                    published += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                published
            })
        };
        let latencies = chunk_latencies(&live, &feed);
        stop.store(true, Ordering::Relaxed);
        let swaps = publisher.join().expect("publisher thread panicked");
        let worst = latencies.iter().fold(0.0f64, |a, &b| a.max(b));
        let current_worst = best
            .as_ref()
            .map(|(l, _)| l.iter().fold(0.0f64, |a, &b| a.max(b)));
        if current_worst.is_none_or(|w| worst < w) {
            best = Some((latencies, swaps));
        }
    }
    let (latencies, swaps) = best.expect("at least one swapped rep");
    SwapPerf {
        chunk_records: SWAP_CHUNK,
        chunks: latencies.len(),
        swaps,
        quiet_p99_ns,
        swapped_p99_ns: p99(&latencies),
        swapped_max_ns: latencies.iter().fold(0.0f64, |a, &b| a.max(b)),
    }
}

fn measure_monitor_with_sinks(
    reps: usize,
    trace: Option<cgc_obs::TraceSink>,
    drift: Option<cgc_obs::DriftSink>,
) -> MonitorPerf {
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));
    let feed = monitor_feed();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut monitor = TapMonitor::new(&bundle, MonitorConfig::default());
        if let Some(sink) = &trace {
            monitor.set_trace(sink.clone());
        }
        if let Some(sink) = &drift {
            monitor.set_drift(sink.clone());
        }
        let start = Instant::now();
        for (ts, tuple, len) in &feed {
            monitor.ingest(*ts, tuple, *len);
        }
        let flows = monitor.finish_all().len();
        let secs = start.elapsed().as_secs_f64();
        black_box(flows);
        if secs < best {
            best = secs;
        }
    }
    MonitorPerf {
        flows: MONITOR_FLOWS,
        records: feed.len(),
        records_per_sec: feed.len() as f64 / best,
    }
}
