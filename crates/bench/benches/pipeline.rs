//! End-to-end pipeline costs: per-slot analyzer push (the steady-state
//! per-second cost per monitored session) and whole-session analysis at
//! fleet fidelity.

use cgc_core::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer};
use cgc_deploy::train::{train_bundle, TrainConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::vol::VolSample;

fn bench_pipeline(c: &mut Criterion) {
    let bundle = train_bundle(&TrainConfig::quick());
    let mut generator = SessionGenerator::new();
    let session = generator.generate(&SessionConfig {
        kind: TitleKind::Known(cgc_domain::GameTitle::Overwatch2),
        settings: cgc_domain::StreamSettings::default_pc(),
        gameplay_secs: 300.0,
        fidelity: Fidelity::LaunchOnly,
        seed: 5,
    });

    c.bench_function("analyzer_push_slot", |b| {
        let mut analyzer =
            SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
        let sample = VolSample {
            down_bytes: 2_000_000,
            down_pkts: 1700,
            up_bytes: 10_000,
            up_pkts: 100,
        };
        // Get past the seed window once.
        for _ in 0..12 {
            analyzer.push_slot(&sample);
        }
        b.iter(|| analyzer.push_slot(&sample))
    });

    c.bench_function("title_classify_5s_window", |b| {
        let window = session.launch_window(5.0);
        b.iter(|| bundle.title.classify(&window))
    });

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(session.duration() / 1_000_000));
    g.sample_size(20);
    g.bench_function("analyze_whole_session_350s", |b| {
        b.iter(|| {
            let mut analyzer =
                SessionAnalyzer::new(&bundle, AnalyzerConfig::default(), QoeInputs::default());
            analyzer.analyze(&session.packets, &session.vol);
            analyzer.finish()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
