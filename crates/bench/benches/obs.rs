//! Telemetry primitive costs: the per-event operations every hot-path
//! call site pays (counter increment, histogram record, span timing) and
//! the cold-path operations the scrape/report side pays (registry lookup,
//! snapshot, Prometheus rendering). The per-event rows must stay in the
//! low-nanosecond range — they run once per packet on the tap path.

use cgc_obs::event::{Event, EventKind, EventRing};
use cgc_obs::journal::EventSink;
use cgc_obs::{export, Counter, Histogram, Journal, JournalConfig, Registry};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const EVENTS: u64 = 1_000_000;

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_hot_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));

    g.bench_function("counter_inc_1m", |b| {
        let counter = Counter::new();
        b.iter(|| {
            for _ in 0..EVENTS {
                counter.inc();
            }
            black_box(counter.get())
        })
    });

    g.bench_function("histogram_record_1m", |b| {
        let hist = Histogram::new();
        b.iter(|| {
            for i in 0..EVENTS {
                // Spread across octaves the way latencies do.
                hist.record(black_box(17 + (i % 1024) * 97));
            }
            black_box(hist.count())
        })
    });

    g.bench_function("span_record_1m", |b| {
        let hist = Histogram::new();
        b.iter(|| {
            for _ in 0..EVENTS {
                let span = hist.span();
                span.finish();
            }
            black_box(hist.count())
        })
    });
    g.finish();

    // A populated registry the size of a full pipeline deployment.
    let registry = Registry::new();
    for i in 0..24 {
        registry
            .counter(&format!("cgc_bench_counter_{i}_total"), "bench")
            .add(i);
    }
    for i in 0..8 {
        let h = registry.histogram(&format!("cgc_bench_hist_{i}_ns"), "bench");
        for v in 0..4096u64 {
            h.record(v * 131);
        }
    }

    let mut g = c.benchmark_group("obs_cold_path");
    g.sample_size(10);
    g.bench_function("registry_lookup_hit", |b| {
        b.iter(|| black_box(registry.counter("cgc_bench_counter_7_total", "bench").get()))
    });
    g.bench_function("snapshot_32_series", |b| {
        b.iter(|| black_box(registry.snapshot().metrics.len()))
    });
    let snapshot = registry.snapshot();
    g.bench_function("prometheus_render_32_series", |b| {
        b.iter(|| black_box(export::prometheus(&snapshot).len()))
    });
    g.bench_function("json_render_32_series", |b| {
        b.iter(|| black_box(export::json(&snapshot).len()))
    });
    g.finish();

    // Flight-recorder costs: what the tap path pays per emitted event
    // (ring push, or a disabled sink's single branch) and what the export
    // side pays per JSONL line.
    let stage_event = |i: u64| Event {
        flow: 0xfeed_0000 | (i & 63),
        ts: i * 1_000_000,
        kind: EventKind::StageEntered {
            slot: i as u32,
            stage: cgc_domain::Stage::Active,
        },
    };

    let mut g = c.benchmark_group("obs_journal");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));

    g.bench_function("ring_push_pop_1m", |b| {
        let ring: EventRing<Event> = EventRing::with_capacity(1024);
        b.iter(|| {
            let mut popped = 0u64;
            for i in 0..EVENTS {
                // Drain in batches the way the journal consumer does, so
                // the ring never fills and every push lands.
                if ring.len() >= 512 {
                    while ring.try_pop().is_some() {
                        popped += 1;
                    }
                }
                let _ = ring.try_push(stage_event(i));
            }
            while ring.try_pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        })
    });

    g.bench_function("sink_emit_1m", |b| {
        let registry = Registry::new();
        let (sink, mut journal) = Journal::new(JournalConfig::default(), &registry);
        b.iter(|| {
            for i in 0..EVENTS {
                let e = stage_event(i);
                sink.emit(e.flow, e.ts, e.kind);
                // Keep the bench honest: drain so drops stay rare and the
                // measured cost is the push, not the overflow branch.
                if i % 16_384 == 0 {
                    journal.drain();
                }
            }
            black_box(journal.drain())
        })
    });

    g.bench_function("sink_emit_disabled_1m", |b| {
        let sink = EventSink::disabled();
        b.iter(|| {
            for i in 0..EVENTS {
                let e = stage_event(i);
                sink.emit(e.flow, e.ts, e.kind);
            }
            black_box(&sink)
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_encode_jsonl_10k", |b| {
        let events: Vec<Event> = (0..10_000).map(stage_event).collect();
        b.iter(|| {
            let mut bytes = 0usize;
            for e in &events {
                bytes += cgc_obs::journal::render_line(e).len();
            }
            black_box(bytes)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
