//! Telemetry primitive costs: the per-event operations every hot-path
//! call site pays (counter increment, histogram record, span timing) and
//! the cold-path operations the scrape/report side pays (registry lookup,
//! snapshot, Prometheus rendering). The per-event rows must stay in the
//! low-nanosecond range — they run once per packet on the tap path.

use cgc_obs::{export, Counter, Histogram, Registry};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const EVENTS: u64 = 1_000_000;

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_hot_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));

    g.bench_function("counter_inc_1m", |b| {
        let counter = Counter::new();
        b.iter(|| {
            for _ in 0..EVENTS {
                counter.inc();
            }
            black_box(counter.get())
        })
    });

    g.bench_function("histogram_record_1m", |b| {
        let hist = Histogram::new();
        b.iter(|| {
            for i in 0..EVENTS {
                // Spread across octaves the way latencies do.
                hist.record(black_box(17 + (i % 1024) * 97));
            }
            black_box(hist.count())
        })
    });

    g.bench_function("span_record_1m", |b| {
        let hist = Histogram::new();
        b.iter(|| {
            for _ in 0..EVENTS {
                let span = hist.span();
                span.finish();
            }
            black_box(hist.count())
        })
    });
    g.finish();

    // A populated registry the size of a full pipeline deployment.
    let registry = Registry::new();
    for i in 0..24 {
        registry
            .counter(&format!("cgc_bench_counter_{i}_total"), "bench")
            .add(i);
    }
    for i in 0..8 {
        let h = registry.histogram(&format!("cgc_bench_hist_{i}_ns"), "bench");
        for v in 0..4096u64 {
            h.record(v * 131);
        }
    }

    let mut g = c.benchmark_group("obs_cold_path");
    g.sample_size(10);
    g.bench_function("registry_lookup_hit", |b| {
        b.iter(|| black_box(registry.counter("cgc_bench_counter_7_total", "bench").get()))
    });
    g.bench_function("snapshot_32_series", |b| {
        b.iter(|| black_box(registry.snapshot().metrics.len()))
    });
    let snapshot = registry.snapshot();
    g.bench_function("prometheus_render_32_series", |b| {
        b.iter(|| black_box(export::prometheus(&snapshot).len()))
    });
    g.bench_function("json_render_32_series", |b| {
        b.iter(|| black_box(export::json(&snapshot).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
