//! Tap front-end throughput: serial `TapMonitor` vs `ShardedTapMonitor`
//! at 1 and N worker shards over the same interleaved feed of 10 000+
//! flows. The sharded rows should beat the single shard on multi-core
//! machines — the point of the sharded front end.
//!
//! The feed is synthetic (round-robin packets over distinct gaming
//! five-tuples) so the benchmark measures the monitor path — hashing,
//! batching, flow table, expiry wheel, analyzer pushes — not the traffic
//! generator.

use std::sync::Arc;

use cgc_core::monitor::{MonitorConfig, TapMonitor};
use cgc_core::shard::{ShardedMonitorConfig, ShardedTapMonitor};
use cgc_deploy::train::{train_bundle, TrainConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nettrace::packet::FiveTuple;
use nettrace::units::Micros;

const FLOWS: usize = 10_000;
const PACKETS_PER_FLOW: usize = 12;

/// Round-robin feed: every flow gets a packet each "tick", so flows stay
/// interleaved the whole time like on a real tap.
fn synth_feed() -> Vec<(Micros, FiveTuple, u32)> {
    let tuples: Vec<FiveTuple> = (0..FLOWS)
        .map(|i| {
            FiveTuple::udp_v4(
                [10, 0, (i >> 8) as u8, (i & 0xff) as u8],
                49003, // GeForce Now signature port => accepted as gaming
                [100, 64, (i >> 8) as u8, (i & 0xff) as u8],
                50_000 + (i % 10_000) as u16,
            )
        })
        .collect();
    let mut feed = Vec::with_capacity(FLOWS * PACKETS_PER_FLOW);
    for tick in 0..PACKETS_PER_FLOW {
        for (i, t) in tuples.iter().enumerate() {
            let ts = tick as u64 * 1_000_000 + i as u64 * 7; // ~1 pps per flow
            let wire = if tick % 5 == 4 { t.reversed() } else { *t };
            feed.push((ts, wire, if tick % 5 == 4 { 120 } else { 1200 }));
        }
    }
    feed
}

fn bench_monitor(c: &mut Criterion) {
    let bundle = Arc::new(train_bundle(&TrainConfig::quick()));
    let feed = synth_feed();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut g = c.benchmark_group("tap_monitor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(feed.len() as u64));

    g.bench_function("serial_10k_flows", |b| {
        b.iter(|| {
            let mut monitor = TapMonitor::new(&bundle, MonitorConfig::default());
            for (ts, tuple, len) in &feed {
                monitor.ingest(*ts, tuple, *len);
            }
            monitor.finish_all().len()
        })
    });

    // N = all cores (capped at 8), overridable with MONITOR_BENCH_SHARDS;
    // on a single-core box the multi-shard row is skipped rather than
    // re-measuring W=1.
    let max_shards: usize = std::env::var("MONITOR_BENCH_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| cores.min(8));
    let mut shard_counts = vec![1usize];
    if max_shards > 1 {
        shard_counts.push(max_shards);
    }
    for shards in shard_counts {
        g.bench_function(&format!("sharded_w{shards}_10k_flows"), |b| {
            b.iter(|| {
                let mut monitor = ShardedTapMonitor::new(
                    Arc::clone(&bundle),
                    ShardedMonitorConfig::with_shards(shards),
                );
                for (ts, tuple, len) in &feed {
                    monitor.ingest(*ts, tuple, *len);
                }
                monitor.finish_all().0.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
