//! K-way merge and adaptive-batching hot paths: merge throughput at 2,
//! 4 and 8 sources (with and without per-source clock-skew correction),
//! and the router's burst-drain cost under each batch policy — the
//! criterion companion to the `bench_ingest_merge` snapshot binary,
//! which reports the percentile breakdown committed in
//! `BENCH_ingest_merge.json`.

use cgc_core::shard::TapRecord;
use cgc_ingest::{
    merge_sources, split_round_robin, BackpressurePolicy, BatchPolicy, BoundedQueue, MergeConfig,
    MergeSource,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nettrace::packet::FiveTuple;
use nettrace::shift_micros;

/// Synthetic tap feed: `n` records spread over 16 flows, 10 µs apart.
fn records(n: usize) -> Vec<TapRecord> {
    (0..n)
        .map(|i| {
            let tuple = FiveTuple::udp_v4(
                [10, 0, 0, 1],
                49003,
                [100, 64, 0, (i % 16) as u8],
                50_000 + (i % 16) as u16,
            );
            (i as u64 * 10, tuple, 1_200u32)
        })
        .collect()
}

fn sources(feed: &[TapRecord], ways: usize) -> Vec<MergeSource> {
    split_round_robin(feed, ways)
        .into_iter()
        .enumerate()
        .map(|(i, part)| MergeSource::new(format!("s{i}"), part))
        .collect()
}

fn bench_merge_throughput(c: &mut Criterion) {
    const N: usize = 65_536;
    let feed = records(N);

    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements(N as u64));
    for ways in [2usize, 4, 8] {
        g.bench_function(&format!("kway_{ways}_sources_64k"), |b| {
            b.iter(|| {
                let (out, stats) =
                    merge_sources(sources(&feed, ways), &MergeConfig::default(), None);
                assert_eq!(out.len(), N);
                assert_eq!(stats.late_total(), 0);
                black_box(out.len())
            })
        });
    }

    // Same 4-way split, but each source's capture clock is skewed and
    // its MergeSource carries the inverse correction — the offset
    // arithmetic rides the same hot loop.
    let skews: [i64; 4] = [0, -1_500, 2_500, 7_000];
    g.bench_function("kway_4_sources_skewed_64k", |b| {
        b.iter(|| {
            let srcs: Vec<MergeSource> = split_round_robin(&feed, skews.len())
                .into_iter()
                .zip(skews)
                .enumerate()
                .map(|(i, (part, skew))| {
                    let skewed: Vec<_> = part
                        .into_iter()
                        .map(|(ts, tuple, len)| (shift_micros(ts, skew), tuple, len))
                        .collect();
                    MergeSource::with_offset(format!("s{i}"), -skew, skewed)
                })
                .collect();
            let (out, stats) = merge_sources(srcs, &MergeConfig::default(), None);
            assert_eq!(out.len(), N);
            assert_eq!(stats.late_total(), 0);
            black_box(out.len())
        })
    });
    g.finish();
}

/// One full burst drain through the router sweep + partitioned per-shard
/// dispatch, single-threaded (the cost of the CPU path a dedicated-core
/// router executes — policy differences are makespan differences here).
fn drain_burst(
    feed: &[TapRecord],
    queues: &[BoundedQueue<TapRecord>],
    dispatch: &[BoundedQueue<Vec<TapRecord>>],
    policy: BatchPolicy,
) -> usize {
    for &r in feed {
        let q = r.1.shard(queues.len());
        queues[q].push(r, BackpressurePolicy::Block);
    }
    let shards = dispatch.len();
    let mut buf: Vec<TapRecord> = Vec::with_capacity(1 << 13);
    let mut handed = 0;
    while handed < feed.len() {
        for queue in queues {
            let target = policy.size_for(queue.len());
            buf.clear();
            while buf.len() < target {
                match queue.try_pop() {
                    Some(r) => buf.push(r),
                    None => break,
                }
            }
            if buf.is_empty() {
                continue;
            }
            let mut parts: Vec<Vec<TapRecord>> = (0..shards)
                .map(|_| Vec::with_capacity(buf.len() / shards + 16))
                .collect();
            for &(ts, tuple, len) in &buf {
                parts[tuple.shard(shards)].push((ts, tuple, len));
            }
            for (shard, part) in parts.into_iter().enumerate() {
                if !part.is_empty() {
                    dispatch[shard].push(part, BackpressurePolicy::Block);
                }
            }
            handed += buf.len();
        }
    }
    let mut delivered = 0;
    for q in dispatch {
        while let Some(part) = q.try_pop() {
            delivered += part.len();
        }
    }
    assert_eq!(delivered, feed.len());
    handed
}

fn bench_burst_drain(c: &mut Criterion) {
    const N: usize = 16_384;
    let feed = records(N);
    let queues: Vec<BoundedQueue<TapRecord>> = (0..2)
        .map(|_| BoundedQueue::with_capacity(1 << 15))
        .collect();
    let dispatch: Vec<BoundedQueue<Vec<TapRecord>>> = (0..4)
        .map(|_| BoundedQueue::with_capacity(1 << 13))
        .collect();

    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements(N as u64));
    for (name, policy) in [
        ("burst_drain_fixed_32_16k", BatchPolicy::Fixed(32)),
        ("burst_drain_fixed_1024_16k", BatchPolicy::Fixed(1_024)),
        ("burst_drain_adaptive_16k", BatchPolicy::default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(drain_burst(&feed, &queues, &dispatch, policy)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge_throughput, bench_burst_drain);
criterion_main!(benches);
