//! Ingest transport hot paths: the bounded lock-free queue alone
//! (uncontended and contended under the blocking policy), the full
//! producer → queue → router → sink hand-off, and the pacing arithmetic
//! of the replay engine on a virtual clock. The hand-off bench is the
//! subsystem's acceptance gauge: sustained throughput well above 1M
//! records/s with zero records dropped under `block`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cgc_core::shard::TapRecord;
use cgc_ingest::{
    replay, BackpressurePolicy, BatchSink, BoundedQueue, IngestConfig, IngestEngine, ReplayConfig,
};
use cgc_obs::Registry;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nettrace::clock::VirtualClock;
use nettrace::packet::FiveTuple;

/// Synthetic tap feed: `n` records spread over 16 flows, 10 µs apart.
fn records(n: usize) -> Vec<TapRecord> {
    (0..n)
        .map(|i| {
            let tuple = FiveTuple::udp_v4(
                [10, 0, 0, 1],
                49003,
                [100, 64, 0, (i % 16) as u8],
                50_000 + (i % 16) as u16,
            );
            (i as u64 * 10, tuple, 1_200u32)
        })
        .collect()
}

/// Sink that only counts — isolates the transport cost from the
/// classification pipeline the monitor sink would run.
struct CountSink(u64);

impl BatchSink for CountSink {
    type Output = u64;
    fn on_batch(&mut self, batch: &[TapRecord]) {
        self.0 += batch.len() as u64;
    }
    fn finish(self) -> u64 {
        self.0
    }
}

fn bench_queue(c: &mut Criterion) {
    let feed = records(1);
    let record = feed[0];

    // Uncontended push + pop round trip on a half-full ring.
    let queue: BoundedQueue<TapRecord> = BoundedQueue::with_capacity(1024);
    for _ in 0..512 {
        queue.push(record, BackpressurePolicy::Block);
    }
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(1));
    g.bench_function("queue_push_pop_uncontended", |b| {
        b.iter(|| {
            queue.push(black_box(record), BackpressurePolicy::Block);
            black_box(queue.try_pop())
        })
    });
    g.finish();

    // Contended: 4 producers block-push 64k records through a 4096-slot
    // ring while one consumer drains. Lossless by construction — the
    // assert keeps the claim honest on every sample.
    const TOTAL: u64 = 65_536;
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(TOTAL));
    g.bench_function("queue_mpsc_block_4p1c_64k", |b| {
        b.iter(|| {
            let queue: Arc<BoundedQueue<TapRecord>> = Arc::new(BoundedQueue::with_capacity(4096));
            let pushed = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..TOTAL / 4 {
                            if queue.push(record, BackpressurePolicy::Block).accepted() {
                                pushed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
                let mut popped = 0u64;
                while popped < TOTAL {
                    match queue.try_pop() {
                        Some(r) => {
                            black_box(r);
                            popped += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
                popped
            });
            assert_eq!(pushed.load(Ordering::Relaxed), TOTAL);
        })
    });
    g.finish();
}

fn bench_engine_handoff(c: &mut Criterion) {
    const N: usize = 262_144;
    let feed = records(N);

    // The full transport: producer → sharded bounded queues → router
    // thread → sink, then a graceful shutdown that drains the queues dry.
    // Zero drops is asserted per sample; the elem/s figure is the
    // subsystem's headline number (target: >1M records/s).
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("engine_handoff_block_256k", |b| {
        b.iter(|| {
            let registry = Registry::new();
            let cfg = IngestConfig {
                policy: BackpressurePolicy::Block,
                ..IngestConfig::default()
            };
            let engine = IngestEngine::start(CountSink(0), cfg, &registry);
            let producer = engine.producer();
            for r in &feed {
                producer.push_record(*r);
            }
            drop(producer);
            let run = engine.shutdown();
            assert_eq!(run.output, N as u64);
            assert_eq!(run.dropped, 0);
            run.output
        })
    });
    g.finish();
}

fn bench_replay_pacing(c: &mut Criterion) {
    const N: usize = 65_536;
    let feed = records(N);
    let registry = Registry::new();
    let metrics = cgc_ingest::IngestMetrics::register(&registry, 1);

    // Per-record cost of the pacing arithmetic itself: deadline compute,
    // virtual-clock sleep, lag bookkeeping. The virtual clock advances
    // instantly, so this is pure engine overhead — the jitter a paced
    // deployment adds on top of real sleeping.
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("replay_paced_virtual_64k", |b| {
        b.iter(|| {
            let clock = VirtualClock::new();
            let stats = replay(
                &feed,
                &clock,
                &ReplayConfig { pace: 1.0 },
                Some(&metrics),
                None,
                |r| {
                    black_box(r);
                },
            );
            assert_eq!(stats.released, N as u64);
            stats.released
        })
    });
    g.bench_function("replay_afap_64k", |b| {
        b.iter(|| {
            let clock = VirtualClock::new();
            let stats = replay(
                &feed,
                &clock,
                &ReplayConfig::as_fast_as_possible(),
                None,
                None,
                |r| {
                    black_box(r);
                },
            );
            black_box(stats.released)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_engine_handoff,
    bench_replay_pacing
);
criterion_main!(benches);
