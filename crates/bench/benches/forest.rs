//! Flat vs pointer forest inference: the criterion view of the paths
//! snapshotted by `bench_forest` / gated by `bench_gate`. Single-row
//! latency for both layouts plus the flat whole-slot batch path, on the
//! same stage-scale forest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::{argmax, Classifier, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 4;
const N_CLASSES: usize = 4;
const BATCH: usize = 512;

/// Stage-shaped blobs: one cluster per activity class.
fn stage_like_dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..rows {
        let class = i % N_CLASSES;
        x.push(
            (0..N_FEATURES)
                .map(|f| (class * N_FEATURES + f) as f64 * 3.0 + rng.gen_range(-2.0..2.0))
                .collect(),
        );
        y.push(class);
    }
    Dataset::new(x, y)
}

fn bench_forest(c: &mut Criterion) {
    let forest = RandomForest::fit(
        &stage_like_dataset(1_200, 17),
        &RandomForestConfig {
            n_trees: 60,
            max_depth: 10,
            seed: 9,
            ..Default::default()
        },
    );
    let flat = forest.to_flat();
    let nc = flat.n_classes();
    let mut rng = StdRng::seed_from_u64(23);
    let rows: Vec<Vec<f64>> = (0..BATCH)
        .map(|_| (0..N_FEATURES).map(|_| rng.gen_range(-5.0..50.0)).collect())
        .collect();
    let probe = rows[0].clone();

    let mut g = c.benchmark_group("forest_inference");
    g.bench_function("pointer_single", |b| b.iter(|| forest.predict(&probe)));
    g.bench_function("flat_single", |b| {
        let mut buf = vec![0.0f64; nc];
        b.iter(|| {
            flat.predict_proba_into(&probe, &mut buf);
            argmax(&buf)
        })
    });
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("flat_batch_512", |b| {
        let mut out = vec![0.0f64; BATCH * nc];
        b.iter(|| {
            flat.predict_proba_batch_into(&rows, &mut out);
            out.chunks_exact(nc).map(argmax).sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
