//! Model inference and training costs: Random Forest / SVM / KNN
//! prediction on the 51-dimensional title attributes, and RF training at
//! the deployed configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::knn::{DistanceMetric, Knn};
use mlcore::scale::StandardScaler;
use mlcore::svm::{Kernel, SvmConfig, SvmOvr};
use mlcore::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 13-class, 51-feature synthetic dataset shaped like the title problem.
fn title_like_dataset(n_per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for class in 0..13usize {
        // Class-specific center in 51-D.
        let center: Vec<f64> = (0..51)
            .map(|f| ((class * 31 + f * 7) % 23) as f64 * 10.0)
            .collect();
        for _ in 0..n_per_class {
            x.push(
                center
                    .iter()
                    .map(|c| c + rng.gen_range(-12.0..12.0))
                    .collect(),
            );
            y.push(class);
        }
    }
    Dataset::new(x, y)
}

fn bench_models(c: &mut Criterion) {
    let train = title_like_dataset(30, 1);
    let probe = train.x[0].clone();

    let forest = RandomForest::fit(
        &train,
        &RandomForestConfig {
            n_trees: 150,
            max_depth: 10,
            ..Default::default()
        },
    );
    c.bench_function("rf150_predict_proba_51d", |b| {
        b.iter(|| forest.predict_proba(&probe))
    });
    c.bench_function("rf150_fit_390x51", |b| {
        b.iter(|| {
            RandomForest::fit(
                &train,
                &RandomForestConfig {
                    n_trees: 150,
                    max_depth: 10,
                    ..Default::default()
                },
            )
        })
    });

    let scaler = StandardScaler::fit(&train);
    let train_s = scaler.transform_dataset(&train);
    let probe_s = scaler.transform(&probe);
    let svm = SvmOvr::fit(
        &train_s,
        &SvmConfig {
            kernel: Kernel::Rbf { gamma: 0.2 },
            ..Default::default()
        },
    );
    c.bench_function("svm_rbf_predict_51d", |b| {
        b.iter(|| svm.predict_proba(&probe_s))
    });

    let knn = Knn::fit(&train_s, 5, DistanceMetric::Euclidean);
    c.bench_function("knn5_predict_51d_390pts", |b| {
        b.iter(|| knn.predict(&probe_s))
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
