//! Traffic substrate costs: session generation at both fidelities and the
//! pcap codec round-trip.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::pcap::{read_records, PcapWriter};

fn config(fidelity: Fidelity, secs: f64) -> SessionConfig {
    SessionConfig {
        kind: TitleKind::Known(cgc_domain::GameTitle::CsGo),
        settings: cgc_domain::StreamSettings::default_pc(),
        gameplay_secs: secs,
        fidelity,
        seed: 3,
    }
}

fn bench_traffic(c: &mut Criterion) {
    let mut g = c.benchmark_group("gamesim");
    g.sample_size(20);
    g.bench_function("generate_fleet_session_300s", |b| {
        let mut generator = SessionGenerator::new();
        b.iter(|| generator.generate(&config(Fidelity::LaunchOnly, 300.0)))
    });
    g.bench_function("generate_full_session_60s", |b| {
        let mut generator = SessionGenerator::new();
        b.iter(|| generator.generate(&config(Fidelity::FullPackets, 60.0)))
    });
    g.finish();

    let mut generator = SessionGenerator::new();
    let session = generator.generate(&config(Fidelity::FullPackets, 30.0));
    let mut pcap_buf = Vec::new();
    PcapWriter::new(&mut pcap_buf)
        .and_then(|mut w| w.write_session(&session.tuple, &session.packets))
        .unwrap();
    let path = std::env::temp_dir().join("gamescope_bench.pcap");
    std::fs::write(&path, &pcap_buf).unwrap();

    let mut g = c.benchmark_group("pcap");
    g.throughput(Throughput::Elements(session.packets.len() as u64));
    g.sample_size(20);
    g.bench_function("write_session", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(pcap_buf.len());
            PcapWriter::new(&mut buf)
                .and_then(|mut w| w.write_session(&session.tuple, &session.packets))
                .unwrap();
            buf
        })
    });
    g.bench_function("read_session", |b| b.iter(|| read_records(&path).unwrap()));
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
