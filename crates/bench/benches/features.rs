//! Feature-extraction hot paths: packet-group labeling and the 51-attribute
//! launch vector (per flow, once at t = 5 s), and the per-slot stage
//! features (per flow, every second) — the per-packet/per-slot costs an
//! in-network deployment pays.

use cgc_features::groups::label_groups;
use cgc_features::launch_attrs::{launch_attributes, LaunchAttrConfig};
use cgc_features::vol_attrs::{StageFeatureConfig, StageFeatureExtractor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
use nettrace::units::MICROS_PER_SEC;
use nettrace::vol::VolSample;

fn launch_window() -> Vec<nettrace::packet::Packet> {
    let mut generator = SessionGenerator::new();
    let s = generator.generate(&SessionConfig {
        kind: TitleKind::Known(cgc_domain::GameTitle::Fortnite),
        settings: cgc_domain::StreamSettings::default_pc(),
        gameplay_secs: 2.0,
        fidelity: Fidelity::LaunchOnly,
        seed: 1,
    });
    s.launch_window(5.0)
}

fn bench_features(c: &mut Criterion) {
    let window = launch_window();
    let cfg = LaunchAttrConfig::default();

    let mut g = c.benchmark_group("features");
    g.throughput(Throughput::Elements(window.len() as u64));
    g.bench_function("label_groups_5s_window", |b| {
        b.iter(|| label_groups(&window, 5 * MICROS_PER_SEC, MICROS_PER_SEC, 0.10))
    });
    g.bench_function("launch_attributes_51", |b| {
        b.iter(|| launch_attributes(&window, &cfg))
    });
    g.finish();

    let sample = VolSample {
        down_bytes: 2_500_000,
        down_pkts: 2100,
        up_bytes: 12_000,
        up_pkts: 110,
    };
    c.bench_function("stage_feature_push_per_slot", |b| {
        let mut extractor =
            StageFeatureExtractor::new(&StageFeatureConfig::default(), MICROS_PER_SEC, &[sample]);
        b.iter(|| extractor.push(&sample))
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
