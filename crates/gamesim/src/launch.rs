//! Launch-stage packet signatures (§3.2, Fig. 3).
//!
//! Each cloud game title streams its own opening animation while the game
//! initializes, so the first tens of seconds of downstream traffic carry a
//! per-title-stable arrangement of three packet groups:
//!
//! * **full** — maximum-payload packets present in every slot, with a
//!   per-slot arrival density profile characteristic of the title;
//! * **steady** — packets whose payloads sit in one or two narrow bands
//!   whose levels and active time slots are characteristic of the title;
//! * **sparse** — randomly sized packets present in some slots.
//!
//! [`LaunchSignature::for_kind`] derives one arrangement deterministically
//! from the title, so every session of a title shares it; per-session noise
//! (bounded rate jitter, sub-slot phase shift, tiny band drift) is applied
//! at emission time, and stream settings scale only the full-packet
//! density — reproducing the invariances of paper Fig. 3(a–c) and the
//! cross-title differences of Fig. 3(d).

use cgc_domain::StreamSettings;
use nettrace::packet::{Direction, Packet};
use nettrace::units::{Micros, MICROS_PER_SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::{TitleKind, TitleProfile};
use crate::FULL_PAYLOAD;

/// One narrow payload band of steady packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyBand {
    /// Band center payload size, bytes.
    pub center: u32,
    /// Half-width of the band, bytes.
    pub half_width: u32,
    /// Arrival rate of band packets, packets/second.
    pub pps: f64,
}

/// The per-slot plan of one second of the launch animation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LaunchSlotPlan {
    /// Full-packet arrival rate, packets/second.
    pub full_pps: f64,
    /// Steady bands active in this slot.
    pub steady: Vec<SteadyBand>,
    /// Sparse-packet arrival rate, packets/second.
    pub sparse_pps: f64,
}

/// A title's launch signature: one [`LaunchSlotPlan`] per second of the
/// launch animation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSignature {
    /// Per-second plans.
    pub slots: Vec<LaunchSlotPlan>,
}

impl LaunchSignature {
    /// Derives the deterministic signature of a title.
    ///
    /// The derivation partitions the launch animation into 3–5 *phases*
    /// (title scenes: studio logos, engine splash, loading bar, menu fade)
    /// and assigns each phase its own full-packet density, steady bands and
    /// sparse presence, all drawn from an RNG seeded by the title alone.
    pub fn for_kind(kind: &TitleKind) -> LaunchSignature {
        let profile = TitleProfile::of_kind(kind);
        let n_slots = profile.launch_secs.ceil() as usize;
        let mut rng = StdRng::seed_from_u64(
            kind.signature_seed()
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x5bd1_e995),
        );

        let n_phases = rng.gen_range(3..=5);
        // Random phase boundaries over the slot range.
        let mut cuts: Vec<usize> = (0..n_phases - 1)
            .map(|_| rng.gen_range(1..n_slots))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0usize];
        bounds.extend(cuts);
        bounds.push(n_slots);

        let mut slots = vec![LaunchSlotPlan::default(); n_slots];
        for phase in bounds.windows(2) {
            let (lo, hi) = (phase[0], phase[1]);
            // Parameters are quantized to a handful of levels: real launch
            // animations share encoder presets, so titles collide on any
            // single parameter and are told apart by the joint signature —
            // which keeps classification hard but solvable (paper: ~95 %).
            let full_base: f64 = 100.0 + 45.0 * rng.gen_range(0..8) as f64;
            // Gentle per-phase ramp so densities are not flat.
            let ramp: f64 = rng.gen_range(-0.35..0.35);

            let n_bands = rng.gen_range(0..=2);
            let bands: Vec<SteadyBand> = (0..n_bands)
                .map(|_| {
                    let level = 0.16 + 0.08 * rng.gen_range(0..10) as f64;
                    let center = (FULL_PAYLOAD as f64 * level).round() as u32;
                    SteadyBand {
                        center,
                        half_width: ((center as f64) * 0.01).ceil() as u32,
                        pps: 40.0 + 65.0 * rng.gen_range(0..4) as f64,
                    }
                })
                .collect();
            let sparse_pps = if rng.gen_bool(0.55) {
                20.0 + 50.0 * rng.gen_range(0..4) as f64
            } else {
                0.0
            };

            let span = (hi - lo).max(1) as f64;
            for (k, slot) in slots[lo..hi].iter_mut().enumerate() {
                let t = k as f64 / span;
                slot.full_pps = (full_base * (1.0 + ramp * t)).max(20.0);
                slot.steady = bands.clone();
                slot.sparse_pps = sparse_pps;
            }
        }
        LaunchSignature { slots }
    }

    /// Launch animation length in seconds.
    pub fn duration_secs(&self) -> usize {
        self.slots.len()
    }

    /// Expected downstream (bytes, packets) in one slot, used by the fleet
    /// path to synthesize volumetrics without emitting packets.
    pub fn slot_expectation(&self, slot: usize, settings: &StreamSettings) -> (f64, f64) {
        let Some(plan) = self.slots.get(slot) else {
            return (0.0, 0.0);
        };
        let max_payload = f64::from(settings.platform.max_payload());
        let payload_scale = max_payload / f64::from(FULL_PAYLOAD);
        let full_pps = plan.full_pps * settings_density_factor(settings);
        let mut bytes = full_pps * max_payload;
        let mut pkts = full_pps;
        for b in &plan.steady {
            bytes += b.pps * f64::from(b.center) * payload_scale;
            pkts += b.pps;
        }
        // Sparse sizes are uniform in [60, max_payload).
        bytes += plan.sparse_pps * (60.0 + max_payload) / 2.0;
        pkts += plan.sparse_pps;
        (bytes, pkts)
    }

    /// Emits the downstream launch packets of one session.
    ///
    /// * `start_ts` — session start (slot 0 begins here);
    /// * `settings` — scales full-packet density only;
    /// * `rng` — per-session randomness: global rate jitter (±10 %),
    ///   per-slot jitter (±5 %), a sub-slot phase shift (0–400 ms), steady
    ///   band drift (±0.5 %) and arrival-time placement.
    ///
    /// Packets are returned sorted by timestamp.
    pub fn emit(
        &self,
        rng: &mut StdRng,
        settings: &StreamSettings,
        start_ts: Micros,
    ) -> Vec<Packet> {
        let mut out = Vec::new();
        // A minority of launches are *degraded* — slow CDN edge, congested
        // access, background downloads — and arrive late, thinned and
        // stretched. These are the sessions the paper observes being
        // misclassified with < 40 % confidence.
        let degraded = rng.gen_bool(0.10);
        let (session_rate_mult, phase_shift, pace, keep_prob): (f64, Micros, f64, f64) = if degraded
        {
            (
                rng.gen_range(0.45..1.55),
                rng.gen_range(0..3_500_000),
                rng.gen_range(0.75..1.35),
                rng.gen_range(0.55..0.90),
            )
        } else {
            (
                rng.gen_range(0.85..1.15),
                rng.gen_range(0..700_000),
                // Delivery pacing elasticity: the animation is fetched
                // at the session's effective goodput, so the scene
                // schedule stretches or compresses by a few percent.
                rng.gen_range(0.96..1.06),
                // A few percent of launch packets never materialize
                // (CDN jitter, encoder restarts).
                rng.gen_range(0.94..1.0),
            )
        };
        let band_drift: f64 = rng.gen_range(-0.012..0.012);
        let density = settings_density_factor(settings);

        // Platform framing shifts the MTU budget: payload sizes scale so
        // the *relative* band structure (what the classifier keys on)
        // survives across platforms.
        let max_payload = settings.platform.max_payload();
        let payload_scale = f64::from(max_payload) / f64::from(FULL_PAYLOAD);
        for (i, plan) in self.slots.iter().enumerate() {
            let slot_start =
                start_ts + (i as f64 * pace * MICROS_PER_SEC as f64) as u64 + phase_shift;
            let slot_mult: f64 = session_rate_mult * rng.gen_range(0.95..1.05);

            // Full packets: near-periodic arrivals with per-packet jitter.
            let n_full = (plan.full_pps * density * slot_mult).round().max(0.0) as usize;
            emit_spread(rng, slot_start, n_full, &mut out, |_rng| max_payload);

            // Steady bands: sizes within the (slightly drifted) band.
            for band in &plan.steady {
                let n = (band.pps * slot_mult).round() as usize;
                let center =
                    (f64::from(band.center) * payload_scale * (1.0 + band_drift)).round() as u32;
                let hw = band.half_width.max(1);
                emit_spread(rng, slot_start, n, &mut out, |rng| {
                    (center + rng.gen_range(0..=2 * hw))
                        .saturating_sub(hw)
                        .clamp(1, max_payload - 1)
                });
            }

            // Sparse packets: uniformly random sizes.
            let n_sparse = (plan.sparse_pps * slot_mult).round() as usize;
            emit_spread(rng, slot_start, n_sparse, &mut out, |rng| {
                rng.gen_range(60..max_payload)
            });
        }
        if keep_prob < 1.0 {
            out.retain(|_| rng.gen_bool(keep_prob));
        }
        out.sort_by_key(|p| p.ts);
        out
    }
}

/// How stream settings scale the launch full-packet density: the animation
/// is encoded at the negotiated resolution/fps, but the fixed content keeps
/// the scaling gentle (fourth root keeps relative slot profiles intact, as
/// the paper observes across settings).
fn settings_density_factor(settings: &StreamSettings) -> f64 {
    settings.bitrate_factor().powf(0.25)
}

/// Spreads `n` packets near-uniformly over one second starting at `start`,
/// with ±40 % inter-arrival jitter, payload sizes drawn from `size`.
fn emit_spread(
    rng: &mut StdRng,
    start: Micros,
    n: usize,
    out: &mut Vec<Packet>,
    mut size: impl FnMut(&mut StdRng) -> u32,
) {
    if n == 0 {
        return;
    }
    let gap = MICROS_PER_SEC / n as u64;
    for k in 0..n {
        let jitter_range = (gap as f64 * 0.4) as i64;
        let jitter: i64 = if jitter_range > 0 {
            rng.gen_range(-jitter_range..=jitter_range)
        } else {
            0
        };
        let ts = (start + k as u64 * gap).saturating_add_signed(jitter);
        // Clamp inside the slot so the plan's slot alignment survives.
        let ts = ts.clamp(start, start + MICROS_PER_SEC - 1);
        out.push(Packet::new(ts, Direction::Downstream, size(rng)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::{GameTitle, Resolution};

    fn known(t: GameTitle) -> TitleKind {
        TitleKind::Known(t)
    }

    #[test]
    fn signature_is_deterministic_per_title() {
        let a = LaunchSignature::for_kind(&known(GameTitle::GenshinImpact));
        let b = LaunchSignature::for_kind(&known(GameTitle::GenshinImpact));
        assert_eq!(a, b);
    }

    #[test]
    fn titles_have_distinct_signatures() {
        let sigs: Vec<LaunchSignature> = GameTitle::ALL
            .iter()
            .map(|t| LaunchSignature::for_kind(&known(*t)))
            .collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "titles {i} and {j} collide");
            }
        }
    }

    #[test]
    fn duration_matches_profile() {
        for t in GameTitle::ALL {
            let sig = LaunchSignature::for_kind(&known(t));
            let secs = TitleProfile::of(t).launch_secs;
            assert_eq!(sig.duration_secs(), secs.ceil() as usize);
        }
    }

    #[test]
    fn every_slot_has_full_packets() {
        // "Full packets … are constantly streamed" — every slot plan must
        // carry a non-trivial full rate.
        for t in GameTitle::ALL {
            let sig = LaunchSignature::for_kind(&known(t));
            assert!(sig.slots.iter().all(|s| s.full_pps >= 20.0));
        }
    }

    #[test]
    fn emit_respects_structure() {
        let sig = LaunchSignature::for_kind(&known(GameTitle::Fortnite));
        let mut rng = StdRng::seed_from_u64(42);
        let pkts = sig.emit(&mut rng, &StreamSettings::default_pc(), 0);
        assert!(!pkts.is_empty());
        // Sorted by time.
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
        // All downstream.
        assert!(pkts.iter().all(|p| p.dir == Direction::Downstream));
        // Contains plenty of full packets.
        let full = pkts
            .iter()
            .filter(|p| p.payload_len == FULL_PAYLOAD)
            .count();
        assert!(full as f64 / pkts.len() as f64 > 0.2);
        // Spans the expected duration. A degraded session stretches the
        // schedule by up to pace 1.35 plus a 3.5 s phase shift, so bound by
        // that envelope rather than the nominal length.
        let last = pkts.last().unwrap().ts;
        let expect = sig.duration_secs() as u64 * MICROS_PER_SEC;
        assert!(last <= (expect as f64 * 1.35) as u64 + 4_000_000);
        assert!(last >= expect / 2);
    }

    #[test]
    fn same_title_sessions_share_slot_profile() {
        // Full-packet counts per slot should correlate across sessions of
        // the same title, independent of settings. Individual sessions can
        // be degraded (slow CDN), so require the median correlation over
        // several seed pairs to be high.
        let sig = LaunchSignature::for_kind(&known(GameTitle::GenshinImpact));
        let lo = StreamSettings::default_pc();
        let hi = StreamSettings {
            resolution: Resolution::Uhd,
            fps: 120,
            ..lo
        };
        let counts = |pkts: &[Packet]| -> Vec<f64> {
            // First 12 slots: the window the classifier actually reads.
            let mut v = vec![0f64; 12];
            for p in pkts.iter().filter(|p| p.payload_len == FULL_PAYLOAD) {
                let s = (p.ts / MICROS_PER_SEC) as usize;
                if s < v.len() {
                    v[s] += 1.0;
                }
            }
            v
        };
        let mut corrs: Vec<f64> = (0..7)
            .map(|k| {
                let mut r1 = StdRng::seed_from_u64(2 * k + 1);
                let mut r2 = StdRng::seed_from_u64(2 * k + 2);
                let a = sig.emit(&mut r1, &lo, 0);
                let b = sig.emit(&mut r2, &hi, 0);
                correlation(&counts(&a), &counts(&b))
            })
            .collect();
        corrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = corrs[corrs.len() / 2];
        assert!(median > 0.7, "median slot-profile correlation {median}");
    }

    #[test]
    fn expectation_tracks_emission() {
        let sig = LaunchSignature::for_kind(&known(GameTitle::CsGo));
        let settings = StreamSettings::default_pc();
        let mut rng = StdRng::seed_from_u64(9);
        let pkts = sig.emit(&mut rng, &settings, 0);
        // Compare slot-3 expected vs emitted packet count.
        let (eb, ep) = sig.slot_expectation(3, &settings);
        let emitted: Vec<&Packet> = pkts
            .iter()
            .filter(|p| p.ts >= 3 * MICROS_PER_SEC && p.ts < 4 * MICROS_PER_SEC)
            .collect();
        // Phase shift moves packets by <0.4s, so compare loosely.
        let n = emitted.len() as f64;
        assert!((n - ep).abs() / ep < 0.5, "expected ~{ep}, emitted {n}");
        assert!(eb > 0.0);
        // Past the end -> zero.
        assert_eq!(sig.slot_expectation(10_000, &settings), (0.0, 0.0));
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len()) as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }
}
