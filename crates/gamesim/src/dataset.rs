//! Dataset builders.
//!
//! [`lab_dataset`] reproduces the shape of the paper's lab capture (§3.1,
//! Table 2): sessions spread across the thirteen titles and the eight
//! device/OS/software configurations, with resolutions drawn from each
//! row's range and frame rates from {30, 60, 120}. Gameplay lengths are
//! configurable: the experiments default to a few minutes per session,
//! which preserves every statistic the classifiers consume while keeping
//! generation tractable.

use cgc_domain::{GameTitle, Resolution, StreamSettings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cgc_domain::settings::LAB_CONFIGS;

use crate::profile::TitleKind;
use crate::session::{Fidelity, Session, SessionConfig, SessionGenerator};

/// Configuration of a lab-style dataset build.
#[derive(Debug, Clone)]
pub struct LabDatasetConfig {
    /// Total sessions to generate (the paper captured 531).
    pub sessions: usize,
    /// Gameplay seconds per session.
    pub gameplay_secs: f64,
    /// Realization fidelity.
    pub fidelity: Fidelity,
    /// Master seed.
    pub seed: u64,
}

impl Default for LabDatasetConfig {
    fn default() -> Self {
        LabDatasetConfig {
            sessions: 531,
            gameplay_secs: 300.0,
            fidelity: Fidelity::LaunchOnly,
            seed: 1,
        }
    }
}

/// Draws a [`StreamSettings`] from one of the Table 2 lab rows,
/// proportionally to the row session counts.
pub fn sample_lab_settings(rng: &mut StdRng) -> StreamSettings {
    let total: usize = LAB_CONFIGS.iter().map(|c| c.sessions).sum();
    let mut pick = rng.gen_range(0..total);
    let row = LAB_CONFIGS
        .iter()
        .find(|c| {
            if pick < c.sessions {
                true
            } else {
                pick -= c.sessions;
                false
            }
        })
        .expect("row selection in range");
    let lo = Resolution::ALL
        .iter()
        .position(|r| *r == row.res_min)
        .unwrap();
    let hi = Resolution::ALL
        .iter()
        .position(|r| *r == row.res_max)
        .unwrap();
    let resolution = Resolution::ALL[rng.gen_range(lo..=hi)];
    let fps = *[30u32, 60, 120]
        .get(rng.gen_range(0..3usize))
        .expect("fps option");
    StreamSettings {
        platform: cgc_domain::Platform::GeForceNow,
        device: row.device,
        os: row.os,
        software: row.software,
        resolution,
        fps,
    }
}

/// Builds a lab-style dataset: `cfg.sessions` sessions cycling through the
/// thirteen titles (so every title is near-equally represented, as in the
/// lab capture), each with settings drawn from the Table 2 matrix.
pub fn lab_dataset(cfg: &LabDatasetConfig) -> Vec<Session> {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.sessions)
        .map(|i| {
            let title = GameTitle::ALL[i % GameTitle::ALL.len()];
            let settings = sample_lab_settings(&mut rng);
            generator.generate(&SessionConfig {
                kind: TitleKind::Known(title),
                settings,
                gameplay_secs: cfg.gameplay_secs * rng.gen_range(0.7..1.3),
                fidelity: cfg.fidelity,
                seed: cfg.seed.wrapping_mul(0x51ed_270b).wrapping_add(i as u64),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn lab_dataset_covers_all_titles_evenly() {
        let cfg = LabDatasetConfig {
            sessions: 52,
            gameplay_secs: 30.0,
            ..Default::default()
        };
        let ds = lab_dataset(&cfg);
        assert_eq!(ds.len(), 52);
        let mut counts: HashMap<GameTitle, usize> = HashMap::new();
        for s in &ds {
            *counts.entry(s.kind.known().unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 13);
        assert!(counts.values().all(|&c| c == 4));
    }

    #[test]
    fn settings_respect_lab_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = sample_lab_settings(&mut rng);
            let row = LAB_CONFIGS
                .iter()
                .find(|c| c.device == s.device && c.os == s.os && c.software == s.software)
                .expect("settings belong to a lab row");
            assert!(s.resolution >= row.res_min && s.resolution <= row.res_max);
            assert!([30, 60, 120].contains(&s.fps));
        }
    }

    #[test]
    fn dataset_is_reproducible() {
        let cfg = LabDatasetConfig {
            sessions: 6,
            gameplay_secs: 20.0,
            ..Default::default()
        };
        let a = lab_dataset(&cfg);
        let b = lab_dataset(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packets, y.packets);
        }
    }

    #[test]
    fn session_durations_vary() {
        let cfg = LabDatasetConfig {
            sessions: 8,
            gameplay_secs: 60.0,
            ..Default::default()
        };
        let ds = lab_dataset(&cfg);
        let durations: Vec<u64> = ds.iter().map(|s| s.duration()).collect();
        let uniq: std::collections::HashSet<u64> = durations.iter().copied().collect();
        assert!(uniq.len() > 4);
    }
}
