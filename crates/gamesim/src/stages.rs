//! Player-activity stage timelines (§2.1, Fig. 1, Fig. 5).
//!
//! A session's gameplay is a semi-Markov chain over the three gameplay
//! stages, preceded by a launch span. The chain's transition probabilities
//! and dwell-time ranges are pattern-specific and tuned so that (with
//! neutral per-title mix weights) the ground-truth playtime fractions land
//! in the paper's Fig. 5 regime:
//!
//! * **spectate-and-play** — active 40–60 % of playtime, passive most of
//!   the remainder, repeated idle → active ⇄ passive match cycles;
//! * **continuous-play** — ≥ 95 % of playtime in active or idle, passive
//!   under 5 %, long active stretches broken by idle dialogue/menu scenes.

use cgc_domain::{ActivityPattern, Stage};
use nettrace::units::{secs_to_micros, Micros};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::profile::StageMix;

/// A contiguous span of one player activity stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// The stage held during the span.
    pub stage: Stage,
    /// Span start, microseconds since session start (inclusive).
    pub start: Micros,
    /// Span end, microseconds (exclusive).
    pub end: Micros,
}

impl StageSpan {
    /// Span length in microseconds.
    pub fn duration(&self) -> Micros {
        self.end.saturating_sub(self.start)
    }
}

/// The ground-truth stage timeline of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimeline {
    /// Ordered, contiguous spans starting with [`Stage::Launch`] at 0.
    pub spans: Vec<StageSpan>,
}

/// Dwell-time range in seconds for a stage under a pattern.
fn dwell_range(pattern: ActivityPattern, stage: Stage) -> (f64, f64) {
    use ActivityPattern::*;
    use Stage::*;
    match (pattern, stage) {
        (SpectateAndPlay, Idle) => (15.0, 60.0),
        (SpectateAndPlay, Active) => (26.0, 125.0),
        (SpectateAndPlay, Passive) => (20.0, 90.0),
        (ContinuousPlay, Idle) => (30.0, 200.0),
        (ContinuousPlay, Active) => (120.0, 600.0),
        (ContinuousPlay, Passive) => (5.0, 20.0),
        (_, Launch) => unreachable!("launch dwell comes from the title profile"),
    }
}

/// Next-stage distribution of the embedded chain.
fn next_stage(pattern: ActivityPattern, stage: Stage, rng: &mut StdRng) -> Stage {
    use ActivityPattern::*;
    use Stage::*;
    let p: f64 = rng.gen();
    match (pattern, stage) {
        (SpectateAndPlay, Idle) => {
            if p < 0.85 {
                Active
            } else {
                Passive
            }
        }
        (SpectateAndPlay, Active) => {
            if p < 0.65 {
                Passive
            } else {
                Idle
            }
        }
        (SpectateAndPlay, Passive) => {
            if p < 0.60 {
                Active
            } else {
                Idle
            }
        }
        (ContinuousPlay, Idle) => {
            if p < 0.95 {
                Active
            } else {
                Passive
            }
        }
        (ContinuousPlay, Active) => {
            if p < 0.85 {
                Idle
            } else {
                Passive
            }
        }
        (ContinuousPlay, Passive) => {
            if p < 0.90 {
                Active
            } else {
                Idle
            }
        }
        (_, Launch) => unreachable!("launch always transitions to idle"),
    }
}

fn mix_weight(mix: &StageMix, stage: Stage) -> f64 {
    match stage {
        Stage::Active => mix.active,
        Stage::Passive => mix.passive,
        Stage::Idle => mix.idle,
        Stage::Launch => 1.0,
    }
}

impl StageTimeline {
    /// Generates a timeline: a launch span of `launch_secs`, then gameplay
    /// spans until `gameplay_secs` of gameplay have elapsed (the final span
    /// is truncated at the session end).
    pub fn generate(
        pattern: ActivityPattern,
        mix: &StageMix,
        launch_secs: f64,
        gameplay_secs: f64,
        rng: &mut StdRng,
    ) -> StageTimeline {
        let launch_end = secs_to_micros(launch_secs);
        let session_end = launch_end + secs_to_micros(gameplay_secs);
        let mut spans = vec![StageSpan {
            stage: Stage::Launch,
            start: 0,
            end: launch_end,
        }];

        // Every session opens in the lobby / character-select idle stage.
        let mut stage = Stage::Idle;
        let mut t = launch_end;
        while t < session_end {
            let (lo, hi) = dwell_range(pattern, stage);
            let w = mix_weight(mix, stage).max(0.05);
            let dwell = secs_to_micros(rng.gen_range(lo..hi) * w);
            let end = (t + dwell.max(1)).min(session_end);
            spans.push(StageSpan {
                stage,
                start: t,
                end,
            });
            t = end;
            stage = next_stage(pattern, stage, rng);
        }
        StageTimeline { spans }
    }

    /// Session end time (end of the last span).
    pub fn end(&self) -> Micros {
        self.spans.last().map_or(0, |s| s.end)
    }

    /// The stage in effect at time `ts` (`None` past the session end).
    pub fn stage_at(&self, ts: Micros) -> Option<Stage> {
        // Spans are contiguous and ordered: binary search on start.
        let idx = self.spans.partition_point(|s| s.start <= ts);
        if idx == 0 {
            return None;
        }
        let span = &self.spans[idx - 1];
        (ts < span.end).then_some(span.stage)
    }

    /// Fraction of *gameplay* time (launch excluded) spent in `stage`.
    pub fn gameplay_fraction(&self, stage: Stage) -> f64 {
        let mut total = 0u64;
        let mut in_stage = 0u64;
        for s in &self.spans {
            if s.stage == Stage::Launch {
                continue;
            }
            total += s.duration();
            if s.stage == stage {
                in_stage += s.duration();
            }
        }
        if total == 0 {
            0.0
        } else {
            in_stage as f64 / total as f64
        }
    }

    /// Per-slot stage sequence over the gameplay portion: the stage in
    /// effect at each `width`-microsecond slot midpoint. This is the
    /// ground-truth label series the stage classifier is scored against.
    pub fn slot_stages(&self, width: Micros) -> Vec<Stage> {
        assert!(width > 0);
        let launch_end = self
            .spans
            .first()
            .filter(|s| s.stage == Stage::Launch)
            .map_or(0, |s| s.end);
        let mut out = Vec::new();
        let mut t = launch_end + width / 2;
        while t < self.end() {
            if let Some(stage) = self.stage_at(t) {
                out.push(stage);
            }
            t += width;
        }
        out
    }

    /// 3×3 per-slot transition counts over the gameplay stage sequence
    /// (rows = from, cols = to, order idle/passive/active), including
    /// self-retention — the raw form of the Fig. 5 transition statistics
    /// and of the pattern-inference attributes.
    pub fn transition_counts(&self, width: Micros) -> [[u64; 3]; 3] {
        let seq = self.slot_stages(width);
        let mut m = [[0u64; 3]; 3];
        for w in seq.windows(2) {
            let (a, b) = (w[0].class_id().unwrap(), w[1].class_id().unwrap());
            m[a][b] += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn neutral() -> StageMix {
        StageMix {
            active: 1.0,
            passive: 1.0,
            idle: 1.0,
        }
    }

    fn mean_fractions(pattern: ActivityPattern, n: usize) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        for seed in 0..n as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tl = StageTimeline::generate(pattern, &neutral(), 40.0, 3600.0, &mut rng);
            acc.0 += tl.gameplay_fraction(Stage::Active);
            acc.1 += tl.gameplay_fraction(Stage::Passive);
            acc.2 += tl.gameplay_fraction(Stage::Idle);
        }
        (acc.0 / n as f64, acc.1 / n as f64, acc.2 / n as f64)
    }

    #[test]
    fn spectate_fractions_match_fig5a() {
        let (active, passive, idle) = mean_fractions(ActivityPattern::SpectateAndPlay, 40);
        assert!((0.40..=0.60).contains(&active), "active {active}");
        assert!(passive > idle, "passive {passive} vs idle {idle}");
        assert!(passive > 0.18, "passive {passive}");
    }

    #[test]
    fn continuous_fractions_match_fig5b() {
        let (active, passive, idle) = mean_fractions(ActivityPattern::ContinuousPlay, 40);
        assert!(passive < 0.05, "passive {passive}");
        assert!(active + idle > 0.95);
        assert!((0.15..=0.35).contains(&idle), "idle {idle}");
        assert!(active > 0.60, "active {active}");
    }

    #[test]
    fn timeline_is_contiguous_and_starts_with_launch() {
        let mut rng = StdRng::seed_from_u64(3);
        let tl = StageTimeline::generate(
            ActivityPattern::SpectateAndPlay,
            &neutral(),
            35.0,
            600.0,
            &mut rng,
        );
        assert_eq!(tl.spans[0].stage, Stage::Launch);
        assert_eq!(tl.spans[0].start, 0);
        for w in tl.spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap in timeline");
            assert!(w[0].stage != w[1].stage || w[0].stage == Stage::Launch);
        }
        assert_eq!(tl.end(), secs_to_micros(635.0));
    }

    #[test]
    fn stage_at_lookup() {
        let mut rng = StdRng::seed_from_u64(4);
        let tl = StageTimeline::generate(
            ActivityPattern::ContinuousPlay,
            &neutral(),
            30.0,
            300.0,
            &mut rng,
        );
        assert_eq!(tl.stage_at(0), Some(Stage::Launch));
        assert_eq!(tl.stage_at(29_999_999), Some(Stage::Launch));
        assert_eq!(tl.stage_at(30_000_000), Some(Stage::Idle));
        assert_eq!(tl.stage_at(tl.end()), None);
        // Every in-range timestamp resolves.
        for ts in (0..tl.end()).step_by(7_777_777) {
            assert!(tl.stage_at(ts).is_some(), "no stage at {ts}");
        }
    }

    #[test]
    fn slot_stages_exclude_launch() {
        let mut rng = StdRng::seed_from_u64(5);
        let tl = StageTimeline::generate(
            ActivityPattern::SpectateAndPlay,
            &neutral(),
            40.0,
            120.0,
            &mut rng,
        );
        let seq = tl.slot_stages(1_000_000);
        assert!(seq.iter().all(|s| s.is_gameplay()));
        assert_eq!(seq.len(), 120);
    }

    #[test]
    fn transition_counts_total_and_diagonal() {
        let mut rng = StdRng::seed_from_u64(6);
        let tl = StageTimeline::generate(
            ActivityPattern::ContinuousPlay,
            &neutral(),
            30.0,
            1800.0,
            &mut rng,
        );
        let m = tl.transition_counts(1_000_000);
        let total: u64 = m.iter().flatten().sum();
        assert_eq!(total, 1800 - 1);
        // Dwells are tens of seconds, so self-transitions dominate.
        let diag: u64 = (0..3).map(|i| m[i][i]).sum();
        assert!(diag as f64 / total as f64 > 0.9);
    }

    #[test]
    fn continuous_play_rarely_visits_passive() {
        let mut rng = StdRng::seed_from_u64(7);
        let tl = StageTimeline::generate(
            ActivityPattern::ContinuousPlay,
            &neutral(),
            30.0,
            3600.0,
            &mut rng,
        );
        let m = tl.transition_counts(1_000_000);
        let passive_row: u64 = m[Stage::Passive.class_id().unwrap()].iter().sum();
        let total: u64 = m.iter().flatten().sum();
        assert!((passive_row as f64) < 0.05 * total as f64);
    }

    #[test]
    fn mix_skews_fractions() {
        let idle_heavy = StageMix {
            active: 0.8,
            passive: 1.0,
            idle: 2.0,
        };
        let mut fa = 0.0;
        let mut fb = 0.0;
        for seed in 0..20 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let a = StageTimeline::generate(
                ActivityPattern::SpectateAndPlay,
                &neutral(),
                30.0,
                1800.0,
                &mut r1,
            );
            let b = StageTimeline::generate(
                ActivityPattern::SpectateAndPlay,
                &idle_heavy,
                30.0,
                1800.0,
                &mut r2,
            );
            fa += a.gameplay_fraction(Stage::Idle);
            fb += b.gameplay_fraction(Stage::Idle);
        }
        assert!(fb > fa * 1.3, "idle-heavy mix {fb} vs neutral {fa}");
    }
}
