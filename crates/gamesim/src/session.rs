//! Whole-session assembly.
//!
//! A [`Session`] bundles everything the experiments need about one cloud
//! game streaming session: metadata (title, settings), the ground-truth
//! stage timeline, a packet trace (full at lab fidelity, launch-only at
//! fleet fidelity), and a 100 ms volumetric series covering the whole
//! session. At lab fidelity the volumetrics are *computed from* the packet
//! trace; at fleet fidelity they are synthesized from the same rate plan,
//! so downstream consumers see consistent statistics either way.

use cgc_domain::StreamSettings;
use nettrace::packet::{Direction, FiveTuple, Packet};
use nettrace::units::{Micros, MICROS_PER_SEC};
use nettrace::vol::{VolSample, VolSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::launch::LaunchSignature;
use crate::plan::{GameplayPlan, SUBSLOT};
use crate::profile::{TitleKind, TitleProfile};
use crate::stages::{StageSpan, StageTimeline};

pub use crate::stages::StageSpan as Span;

/// How much of the session is realized as packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full packet trace (lab capture equivalent). Memory scales with
    /// session length × bitrate; keep gameplay to minutes.
    FullPackets,
    /// Packets for the launch stage only, plus synthesized volumetrics for
    /// the gameplay — the deployment-scale representation.
    LaunchOnly,
}

/// Configuration of one generated session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// What is being played.
    pub kind: TitleKind,
    /// Stream settings of the client.
    pub settings: StreamSettings,
    /// Gameplay length in seconds (launch length comes from the title).
    pub gameplay_secs: f64,
    /// Realization fidelity.
    pub fidelity: Fidelity,
    /// Session seed; same config + seed ⇒ identical session.
    pub seed: u64,
}

/// One generated cloud game streaming session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Sequential id assigned by the generator.
    pub id: u64,
    /// What was played.
    pub kind: TitleKind,
    /// Stream settings used.
    pub settings: StreamSettings,
    /// The session's five-tuple in downstream orientation.
    pub tuple: FiveTuple,
    /// Packet trace: full session at [`Fidelity::FullPackets`], launch
    /// stage only at [`Fidelity::LaunchOnly`].
    pub packets: Vec<Packet>,
    /// 100 ms volumetric series covering the whole session.
    pub vol: VolSeries,
    /// Ground-truth stage timeline.
    pub timeline: StageTimeline,
    /// Ground-truth mean delivered frame rate over gameplay, fps.
    pub truth_fps: f64,
}

impl Session {
    /// Session duration in microseconds.
    pub fn duration(&self) -> Micros {
        self.timeline.end()
    }

    /// Ground-truth stage spans.
    pub fn stages(&self) -> &[StageSpan] {
        &self.timeline.spans
    }

    /// Volumetrics re-binned to `width` microseconds (must be a multiple of
    /// the native 100 ms resolution).
    ///
    /// # Panics
    /// Panics if `width` is not a positive multiple of [`SUBSLOT`].
    pub fn vol_at(&self, width: Micros) -> VolSeries {
        assert!(
            width >= SUBSLOT && width.is_multiple_of(SUBSLOT),
            "width must be a multiple of the native 100 ms resolution"
        );
        self.vol.rebin((width / SUBSLOT) as usize)
    }

    /// Packets of the first `secs` seconds (used by the title classifier).
    pub fn launch_window(&self, secs: f64) -> Vec<Packet> {
        let cutoff = (secs * 1e6) as Micros;
        self.packets
            .iter()
            .copied()
            .filter(|p| p.ts < cutoff)
            .collect()
    }
}

/// Factory generating sessions with unique ids and five-tuples.
#[derive(Debug)]
pub struct SessionGenerator {
    next_id: u64,
}

impl Default for SessionGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionGenerator {
    /// A fresh generator.
    pub fn new() -> Self {
        SessionGenerator { next_id: 0 }
    }

    /// Generates one session from a config.
    pub fn generate(&mut self, config: &SessionConfig) -> Session {
        let id = self.next_id;
        self.next_id += 1;

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FF_EE00_D15E_A5E5);
        let profile = TitleProfile::of_kind(&config.kind);
        let signature = LaunchSignature::for_kind(&config.kind);

        // Five-tuple: server-side UDP port from the platform's signature.
        let tuple = FiveTuple::udp_v4(
            [10, 0, rng.gen(), rng.gen_range(1..=254)],
            config.settings.platform.server_port(rng.gen()),
            [100, 64, rng.gen(), rng.gen_range(1..=254)],
            rng.gen_range(50_000..60_000),
        );

        let timeline = StageTimeline::generate(
            config.kind.pattern(),
            &profile.mix,
            signature.duration_secs() as f64,
            config.gameplay_secs,
            &mut rng,
        );
        let plan = GameplayPlan::generate(&timeline, &profile, &config.settings, &mut rng);
        let truth_fps = plan.mean_fps();

        let launch_pkts = signature.emit(&mut rng, &config.settings, 0);
        // Minimal upstream during launch: client keep-alives/handshakes.
        let launch_up = launch_upstream(&mut rng, signature.duration_secs());

        let (packets, vol) = match config.fidelity {
            Fidelity::FullPackets => {
                let mut packets = launch_pkts;
                packets.extend(launch_up);
                packets.extend(plan.emit_packets(&mut rng));
                packets.sort_by_key(|p| p.ts);
                let vol = VolSeries::from_packets(&packets, 0, SUBSLOT);
                (packets, vol)
            }
            Fidelity::LaunchOnly => {
                let mut packets = launch_pkts;
                packets.extend(launch_up);
                packets.sort_by_key(|p| p.ts);
                let vol = synth_vol(&signature, &config.settings, &plan, &mut rng);
                (packets, vol)
            }
        };

        Session {
            id,
            kind: config.kind,
            settings: config.settings,
            tuple,
            packets,
            vol,
            timeline,
            truth_fps,
        }
    }
}

/// Sparse upstream chatter during the launch animation (~5 pps keep-alives).
fn launch_upstream(rng: &mut StdRng, launch_secs: usize) -> Vec<Packet> {
    let mut out = Vec::new();
    for s in 0..launch_secs {
        for _ in 0..rng.gen_range(3..=7) {
            let ts = s as u64 * MICROS_PER_SEC + rng.gen_range(0..MICROS_PER_SEC);
            out.push(Packet::new(ts, Direction::Upstream, rng.gen_range(40..90)));
        }
    }
    out
}

/// Synthesizes the whole-session volumetric series at fleet fidelity:
/// launch slots from the signature's expectations, gameplay slots from the
/// plan.
fn synth_vol(
    signature: &LaunchSignature,
    settings: &StreamSettings,
    plan: &GameplayPlan,
    rng: &mut StdRng,
) -> VolSeries {
    let subs_per_sec = (MICROS_PER_SEC / SUBSLOT) as usize;
    let mut samples = Vec::new();
    for sec in 0..signature.duration_secs() {
        let (bytes, pkts) = signature.slot_expectation(sec, settings);
        for _ in 0..subs_per_sec {
            let noise: f64 = rng.gen_range(0.9..1.1);
            let down_pkts = (pkts / subs_per_sec as f64 * noise).round() as u64;
            samples.push(VolSample {
                down_bytes: ((bytes / subs_per_sec as f64 + 54.0 * down_pkts as f64) * noise)
                    as u64,
                down_pkts,
                up_bytes: rng.gen_range(50..150),
                up_pkts: rng.gen_range(0..=1),
            });
        }
    }
    samples.extend(plan.to_vol_samples(rng));
    VolSeries::from_samples(samples, 0, SUBSLOT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::{GameTitle, Stage};

    fn config(fidelity: Fidelity) -> SessionConfig {
        SessionConfig {
            kind: TitleKind::Known(GameTitle::CsGo),
            settings: StreamSettings::default_pc(),
            gameplay_secs: 120.0,
            fidelity,
            seed: 42,
        }
    }

    #[test]
    fn full_packets_session_is_consistent() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::FullPackets));
        assert!(!s.packets.is_empty());
        // Vol covers the whole session.
        let expected_subs = (s.duration() / SUBSLOT) as usize;
        assert!(s.vol.len() >= expected_subs - 2 && s.vol.len() <= expected_subs + 2);
        // Packet trace spans launch + gameplay.
        let last = s.packets.last().unwrap().ts;
        assert!(last > s.duration() - 2 * MICROS_PER_SEC);
    }

    #[test]
    fn launch_only_session_has_short_trace_full_vol() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::LaunchOnly));
        let launch_end = s.stages()[0].end;
        // Degraded launches stretch up to pace 1.35 plus a 3.5 s phase
        // shift; either way the trace must end far short of the 120 s of
        // gameplay that follows.
        let stretched = (launch_end as f64 * 1.35) as u64 + 4_500_000;
        assert!(s.packets.last().unwrap().ts < stretched + MICROS_PER_SEC);
        let expected_subs = (s.duration() / SUBSLOT) as usize;
        assert!(
            s.vol.len() >= expected_subs - 2,
            "vol {} < {}",
            s.vol.len(),
            expected_subs
        );
    }

    #[test]
    fn same_seed_same_session() {
        let mut g1 = SessionGenerator::new();
        let mut g2 = SessionGenerator::new();
        let a = g1.generate(&config(Fidelity::FullPackets));
        let b = g2.generate(&config(Fidelity::FullPackets));
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.vol, b.vol);
        assert_eq!(a.timeline, b.timeline);
    }

    #[test]
    fn different_seeds_differ() {
        let mut g = SessionGenerator::new();
        let a = g.generate(&config(Fidelity::FullPackets));
        let b = g.generate(&SessionConfig {
            seed: 43,
            ..config(Fidelity::FullPackets)
        });
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn fidelities_agree_on_volumetrics() {
        let mut g = SessionGenerator::new();
        let full = g.generate(&config(Fidelity::FullPackets));
        let fleet = g.generate(&config(Fidelity::LaunchOnly));
        // Compare mean downstream Mbps over gameplay within 20 %.
        let launch_end_sub = (full.stages()[0].end / SUBSLOT) as usize;
        let mean = |v: &VolSeries| {
            let s = &v.samples[launch_end_sub..v.samples.len().min(fleet.vol.len())];
            s.iter().map(|x| x.down_bytes).sum::<u64>() as f64 / s.len() as f64
        };
        let ratio = mean(&full.vol) / mean(&fleet.vol);
        assert!((0.8..1.25).contains(&ratio), "fidelity vol ratio {ratio}");
    }

    #[test]
    fn vol_at_rebins() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::LaunchOnly));
        let v1 = s.vol_at(MICROS_PER_SEC);
        assert_eq!(v1.width, MICROS_PER_SEC);
        assert!(v1.len() <= s.vol.len() / 10 + 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the native")]
    fn vol_at_rejects_non_multiples() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::LaunchOnly));
        let _ = s.vol_at(150_000);
    }

    #[test]
    fn launch_window_filters_by_time() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::LaunchOnly));
        let w = s.launch_window(5.0);
        assert!(!w.is_empty());
        assert!(w.iter().all(|p| p.ts < 5_000_000));
        assert!(w.len() < s.packets.len());
    }

    #[test]
    fn ids_increment() {
        let mut g = SessionGenerator::new();
        let a = g.generate(&config(Fidelity::LaunchOnly));
        let b = g.generate(&config(Fidelity::LaunchOnly));
        assert_eq!(a.id + 1, b.id);
    }

    #[test]
    fn truth_fps_is_plausible() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::LaunchOnly));
        assert!((20.0..=60.5).contains(&s.truth_fps), "fps {}", s.truth_fps);
    }

    #[test]
    fn timeline_starts_with_launch_and_has_gameplay() {
        let mut g = SessionGenerator::new();
        let s = g.generate(&config(Fidelity::FullPackets));
        assert_eq!(s.stages()[0].stage, Stage::Launch);
        assert!(s.stages().len() > 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use cgc_domain::{ActivityPattern, GameTitle};
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = TitleKind> {
        prop_oneof![
            (0usize..13).prop_map(|i| TitleKind::Known(GameTitle::ALL[i])),
            (0u32..50, any::<bool>()).prop_map(|(variant, sp)| TitleKind::Other {
                pattern: if sp {
                    ActivityPattern::SpectateAndPlay
                } else {
                    ActivityPattern::ContinuousPlay
                },
                variant,
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every generated session satisfies the structural invariants:
        /// contiguous timeline starting with launch, volumetrics covering
        /// the full duration, sorted packets confined to the session span.
        #[test]
        fn sessions_are_structurally_sound(
            kind in arb_kind(),
            gameplay in 30.0f64..300.0,
            seed in any::<u64>(),
        ) {
            let mut generator = SessionGenerator::new();
            let s = generator.generate(&SessionConfig {
                kind,
                settings: StreamSettings::default_pc(),
                gameplay_secs: gameplay,
                fidelity: Fidelity::LaunchOnly,
                seed,
            });
            // Timeline.
            prop_assert_eq!(s.stages()[0].stage, cgc_domain::Stage::Launch);
            for w in s.stages().windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            // Volumetrics cover the session (±2 subslots of rounding).
            let expected = (s.duration() / SUBSLOT) as usize;
            prop_assert!(s.vol.len() + 2 >= expected && s.vol.len() <= expected + 2);
            // Packets sorted and inside the session (plus bounded jitter).
            prop_assert!(s.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
            let last = s.packets.last().map(|p| p.ts).unwrap_or(0);
            prop_assert!(last <= s.duration() + 5_000_000);
            // Gameplay traffic exists.
            let bytes: u64 = s.vol.samples.iter().map(|x| x.down_bytes).sum();
            prop_assert!(bytes > 0);
        }

        /// The same config always reproduces the identical session.
        #[test]
        fn generation_is_deterministic(kind in arb_kind(), seed in any::<u64>()) {
            let cfg = SessionConfig {
                kind,
                settings: StreamSettings::default_pc(),
                gameplay_secs: 60.0,
                fidelity: Fidelity::LaunchOnly,
                seed,
            };
            let a = SessionGenerator::new().generate(&cfg);
            let b = SessionGenerator::new().generate(&cfg);
            prop_assert_eq!(a.packets, b.packets);
            prop_assert_eq!(a.vol, b.vol);
            prop_assert_eq!(a.timeline, b.timeline);
        }
    }
}
