//! # gamesim — synthetic cloud gaming traffic generator
//!
//! Stand-in for the paper's two data sources: the 531-session lab PCAP
//! dataset (§3.1) and the three-month ISP deployment (§5). It generates
//! cloud game streaming sessions whose traffic reproduces the statistical
//! structure the paper's classifiers rely on:
//!
//! * **Launch-stage packet groups** (§3.2, Fig. 3): during the first tens of
//!   seconds each title streams its own opening animation, producing a
//!   per-title-stable arrangement of *full* (maximum payload), *steady*
//!   (narrow payload bands) and *sparse* (randomly sized) packets across
//!   time slots. [`launch::LaunchSignature`] encodes one such arrangement
//!   deterministically per title; sessions of the same title share it up to
//!   bounded noise, sessions of different titles differ structurally.
//! * **Stage-dependent volumetrics** (§3.3, Fig. 4): per player activity
//!   stage, the *relative* bidirectional throughput/packet-rate levels are
//!   consistent across titles and settings, while absolute levels scale
//!   with the title's demand and the stream settings.
//! * **Gameplay activity patterns** (§2.1, Fig. 5): stage timelines follow
//!   per-pattern semi-Markov models — spectate-and-play sessions cycle
//!   idle → active ⇄ passive, continuous-play sessions hold long active
//!   stretches with idle interludes and rare passive moments.
//!
//! Sessions can be realized at two fidelities: full packet traces (lab
//! experiments, pcap round-trips) or launch packets plus a pre-aggregated
//! volumetric series (fleet experiments at deployment scale).
//!
//! Everything is seeded and deterministic: the same config and seed yield
//! identical sessions.
//!
//! ```
//! use cgc_domain::{GameTitle, StreamSettings};
//! use gamesim::{Fidelity, SessionConfig, SessionGenerator, TitleKind};
//!
//! let mut generator = SessionGenerator::new();
//! let session = generator.generate(&SessionConfig {
//!     kind: TitleKind::Known(GameTitle::Fortnite),
//!     settings: StreamSettings::default_pc(),
//!     gameplay_secs: 30.0,
//!     fidelity: Fidelity::LaunchOnly,
//!     seed: 7,
//! });
//! assert!(!session.packets.is_empty());          // launch-stage packets
//! assert!(session.vol.len() > 300);              // 100 ms volumetric slots
//! assert_eq!(session.stages()[0].stage, cgc_domain::Stage::Launch);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod launch;
pub mod plan;
pub mod profile;
pub mod session;
pub mod stages;

pub use dataset::{lab_dataset, LabDatasetConfig};
pub use launch::LaunchSignature;
pub use profile::{TitleKind, TitleProfile};
pub use session::{Fidelity, Session, SessionConfig, SessionGenerator};
pub use stages::StageSpan;
pub use stages::StageTimeline;

/// Maximum RTP payload size on the streaming path, bytes — the "full"
/// packet size of §3.2 (1432 = 1500 MTU − IP/UDP/RTP overhead − platform
/// framing).
pub const FULL_PAYLOAD: u32 = 1432;
