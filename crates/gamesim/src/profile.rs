//! Per-title traffic profiles.
//!
//! Each catalog title carries the knobs that make its sessions look like
//! themselves: base bitrate demand (which, multiplied by the settings
//! factor, produces the per-title bandwidth clusters of Fig. 12), launch
//! animation length, typical session duration (Fig. 11a) and the stage-mix
//! weights that skew the semi-Markov dwell times (e.g. Baldur's Gate's
//! dialogue-heavy idle share vs Fortnite's active-heavy matches).

use cgc_domain::{ActivityPattern, GameTitle};
use serde::{Deserialize, Serialize};

/// What is being played: a catalog title, or one of the long tail of
/// non-catalog titles that the pipeline can only classify coarsely by
/// activity pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TitleKind {
    /// One of the thirteen Table 1 titles.
    Known(GameTitle),
    /// A non-catalog title. `variant` seeds its (unknown-to-the-classifier)
    /// launch signature; the pattern drives its stage dynamics.
    Other {
        /// Gameplay activity pattern of the unknown title.
        pattern: ActivityPattern,
        /// Distinguishes different unknown titles.
        variant: u32,
    },
}

impl TitleKind {
    /// The activity pattern of the title.
    pub fn pattern(&self) -> ActivityPattern {
        match self {
            TitleKind::Known(t) => t.pattern(),
            TitleKind::Other { pattern, .. } => *pattern,
        }
    }

    /// The catalog title, if this is a known one.
    pub fn known(&self) -> Option<GameTitle> {
        match self {
            TitleKind::Known(t) => Some(*t),
            TitleKind::Other { .. } => None,
        }
    }

    /// A stable seed component distinguishing launch signatures.
    pub fn signature_seed(&self) -> u64 {
        match self {
            TitleKind::Known(t) => t.index() as u64,
            // Offset well past the catalog ids.
            TitleKind::Other { variant, .. } => 1_000 + u64::from(*variant),
        }
    }
}

impl std::fmt::Display for TitleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TitleKind::Known(t) => write!(f, "{t}"),
            TitleKind::Other { pattern, variant } => write!(f, "other-{variant} ({pattern})"),
        }
    }
}

/// Relative weights of time spent per gameplay stage, used to scale the
/// pattern's baseline dwell times. Larger weight → longer dwells in that
/// stage for this title.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMix {
    /// Active-stage dwell multiplier.
    pub active: f64,
    /// Passive-stage dwell multiplier.
    pub passive: f64,
    /// Idle-stage dwell multiplier.
    pub idle: f64,
}

/// The traffic personality of a title.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TitleProfile {
    /// Active-stage downstream bitrate at SD/30 fps, Mbps. Multiplied by
    /// [`cgc_domain::StreamSettings::bitrate_factor`] this spans the Fig. 12
    /// per-title bandwidth clusters (Hearthstone ≈ 1.8 → ≤ 20 Mbps,
    /// Baldur's Gate ≈ 6.2 → ≤ 68 Mbps at the best settings).
    pub base_mbps: f64,
    /// Launch animation length in seconds (per title, 30–60 s in §3.2).
    pub launch_secs: f64,
    /// Mean session duration in minutes (Fig. 11a).
    pub session_minutes_mean: f64,
    /// Standard deviation of session duration, minutes.
    pub session_minutes_std: f64,
    /// Stage dwell-time weights.
    pub mix: StageMix,
}

impl TitleProfile {
    /// The profile of a known catalog title.
    pub fn of(title: GameTitle) -> TitleProfile {
        use GameTitle::*;
        let (base_mbps, launch_secs, mins, mins_std, mix) = match title {
            Fortnite => (
                5.9,
                38.0,
                55.0,
                18.0,
                StageMix {
                    active: 1.5,
                    passive: 0.7,
                    idle: 0.7,
                },
            ),
            GenshinImpact => (
                4.6,
                52.0,
                70.0,
                22.0,
                StageMix {
                    active: 1.0,
                    passive: 1.0,
                    idle: 1.0,
                },
            ),
            BaldursGate3 => (
                6.2,
                48.0,
                95.0,
                28.0,
                StageMix {
                    active: 0.8,
                    passive: 1.6,
                    idle: 1.7,
                },
            ),
            R6Siege => (
                4.9,
                35.0,
                68.0,
                20.0,
                StageMix {
                    active: 1.0,
                    passive: 1.2,
                    idle: 1.1,
                },
            ),
            HonkaiStarRail => (
                3.6,
                44.0,
                65.0,
                20.0,
                StageMix {
                    active: 0.8,
                    passive: 1.5,
                    idle: 1.5,
                },
            ),
            Destiny2 => (
                4.4,
                41.0,
                60.0,
                18.0,
                StageMix {
                    active: 1.1,
                    passive: 1.0,
                    idle: 0.9,
                },
            ),
            CallOfDuty => (
                5.2,
                37.0,
                62.0,
                19.0,
                StageMix {
                    active: 1.1,
                    passive: 1.0,
                    idle: 0.9,
                },
            ),
            Cyberpunk2077 => (
                5.5,
                50.0,
                82.0,
                24.0,
                StageMix {
                    active: 0.9,
                    passive: 1.4,
                    idle: 1.5,
                },
            ),
            Overwatch2 => (
                4.7,
                33.0,
                48.0,
                15.0,
                StageMix {
                    active: 1.1,
                    passive: 1.1,
                    idle: 0.9,
                },
            ),
            RocketLeague => (
                4.2,
                30.0,
                30.0,
                10.0,
                StageMix {
                    active: 1.2,
                    passive: 0.9,
                    idle: 0.9,
                },
            ),
            CsGo => (
                4.0,
                31.0,
                28.0,
                9.0,
                StageMix {
                    active: 1.0,
                    passive: 1.1,
                    idle: 1.0,
                },
            ),
            Dota2 => (
                3.8,
                42.0,
                75.0,
                22.0,
                StageMix {
                    active: 1.7,
                    passive: 0.6,
                    idle: 0.8,
                },
            ),
            Hearthstone => (
                1.8,
                34.0,
                45.0,
                14.0,
                StageMix {
                    active: 0.9,
                    passive: 1.0,
                    idle: 1.8,
                },
            ),
        };
        TitleProfile {
            base_mbps,
            launch_secs,
            session_minutes_mean: mins,
            session_minutes_std: mins_std,
            mix,
        }
    }

    /// Profile for any [`TitleKind`]; unknown titles get a mid-range
    /// profile varied deterministically by their variant id.
    pub fn of_kind(kind: &TitleKind) -> TitleProfile {
        match kind {
            TitleKind::Known(t) => Self::of(*t),
            TitleKind::Other { pattern, variant } => {
                // Spread unknown titles over plausible ranges.
                let v = u64::from(*variant);
                let frac = |salt: u64, lo: f64, hi: f64| {
                    let h = v
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
                    let u = ((h >> 11) as f64) / ((1u64 << 53) as f64);
                    lo + u * (hi - lo)
                };
                let mix = match pattern {
                    ActivityPattern::ContinuousPlay => StageMix {
                        active: frac(1, 0.8, 1.2),
                        passive: frac(2, 0.8, 1.6),
                        idle: frac(3, 1.0, 1.8),
                    },
                    ActivityPattern::SpectateAndPlay => StageMix {
                        active: frac(1, 0.8, 1.6),
                        passive: frac(2, 0.6, 1.3),
                        idle: frac(3, 0.7, 1.4),
                    },
                };
                TitleProfile {
                    base_mbps: frac(4, 2.2, 6.0),
                    launch_secs: frac(5, 30.0, 58.0),
                    session_minutes_mean: match pattern {
                        ActivityPattern::ContinuousPlay => frac(6, 55.0, 100.0),
                        ActivityPattern::SpectateAndPlay => frac(6, 25.0, 75.0),
                    },
                    session_minutes_std: frac(7, 8.0, 25.0),
                    mix,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::{Resolution, StreamSettings};

    #[test]
    fn fig12_bandwidth_extremes() {
        // Best settings: UHD at 120 fps.
        let best = StreamSettings {
            resolution: Resolution::Uhd,
            fps: 120,
            ..StreamSettings::default_pc()
        };
        let hearth = TitleProfile::of(GameTitle::Hearthstone).base_mbps * best.bitrate_factor();
        let baldur = TitleProfile::of(GameTitle::BaldursGate3).base_mbps * best.bitrate_factor();
        assert!(hearth <= 22.0, "Hearthstone max {hearth:.1} Mbps");
        assert!(
            (60.0..75.0).contains(&baldur),
            "Baldur's Gate max {baldur:.1} Mbps"
        );
    }

    #[test]
    fn all_titles_have_sane_profiles() {
        for t in GameTitle::ALL {
            let p = TitleProfile::of(t);
            assert!(p.base_mbps > 1.0 && p.base_mbps < 8.0);
            assert!(p.launch_secs >= 30.0 && p.launch_secs <= 60.0);
            assert!(p.session_minutes_mean >= 20.0);
        }
    }

    #[test]
    fn session_duration_ordering_matches_fig11a() {
        let m = |t| TitleProfile::of(t).session_minutes_mean;
        assert!(m(GameTitle::BaldursGate3) > m(GameTitle::Cyberpunk2077));
        assert!(m(GameTitle::Cyberpunk2077) > m(GameTitle::Fortnite));
        // Rocket League and CS:GO are the shortest.
        for t in GameTitle::ALL {
            if t != GameTitle::RocketLeague && t != GameTitle::CsGo {
                assert!(m(t) > m(GameTitle::CsGo));
            }
        }
    }

    #[test]
    fn unknown_profiles_are_deterministic_and_varied() {
        let a = TitleKind::Other {
            pattern: ActivityPattern::ContinuousPlay,
            variant: 7,
        };
        let b = TitleKind::Other {
            pattern: ActivityPattern::ContinuousPlay,
            variant: 8,
        };
        assert_eq!(TitleProfile::of_kind(&a), TitleProfile::of_kind(&a));
        assert_ne!(TitleProfile::of_kind(&a), TitleProfile::of_kind(&b));
    }

    #[test]
    fn title_kind_accessors() {
        let k = TitleKind::Known(GameTitle::Dota2);
        assert_eq!(k.known(), Some(GameTitle::Dota2));
        assert_eq!(k.pattern(), ActivityPattern::SpectateAndPlay);
        let o = TitleKind::Other {
            pattern: ActivityPattern::ContinuousPlay,
            variant: 3,
        };
        assert_eq!(o.known(), None);
        assert_eq!(o.pattern(), ActivityPattern::ContinuousPlay);
        assert_ne!(k.signature_seed(), o.signature_seed());
    }
}
