//! Gameplay rate plans: from a stage timeline to concrete traffic.
//!
//! The generator first lays out *what the encoder and the input loop would
//! send* per 100 ms sub-slot — downstream video bytes and frame count,
//! upstream input packet rate — as a function of the ground-truth stage,
//! the title's demand and the stream settings, plus bounded stochastic
//! texture (AR(1) rate noise, upstream spikes from stray inputs during
//! passive/idle, downstream dips on scene changes, short ramps at stage
//! boundaries). The plan is then realized either as individual packets
//! (lab fidelity) or directly as volumetric samples (fleet fidelity); both
//! paths read the same numbers, so statistics agree across fidelities.

use cgc_domain::{Stage, StreamSettings};
use nettrace::packet::{Direction, Packet};
use nettrace::units::Micros;
use nettrace::vol::VolSample;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr_normal::sample_normal;

use crate::profile::TitleProfile;
use crate::stages::StageTimeline;

/// Plan resolution: one sub-slot = 100 ms.
pub const SUBSLOT: Micros = 100_000;

/// Wire overhead per packet (Ethernet+IP+UDP+RTP), mirrored from
/// [`nettrace::packet::WIRE_OVERHEAD`] as f64 for rate math.
const OVERHEAD: f64 = 54.0;

/// Per-stage traffic levels relative to the active stage (§3.3: relative
/// levels are consistent across titles and settings).
#[derive(Debug, Clone, Copy)]
struct StageLevel {
    /// Downstream bitrate fraction of the active peak.
    down: f64,
    /// Frame-rate fraction of the configured fps.
    fps: f64,
    /// Upstream input packet-rate fraction of the active rate.
    up: f64,
}

fn stage_level(stage: Stage) -> StageLevel {
    match stage {
        // Combat: everything at peak.
        Stage::Active => StageLevel {
            down: 1.0,
            fps: 1.0,
            up: 1.0,
        },
        // Spectating: graphics keep refreshing, inputs nearly stop.
        Stage::Passive => StageLevel {
            down: 0.85,
            fps: 1.0,
            up: 0.20,
        },
        // Lobby/menus: the encoder backs off on static scenes.
        Stage::Idle => StageLevel {
            down: 0.18,
            fps: 0.35,
            up: 0.08,
        },
        // Launch traffic comes from the launch signature, not the plan.
        Stage::Launch => StageLevel {
            down: 0.0,
            fps: 0.0,
            up: 0.0,
        },
    }
}

/// One 100 ms sub-slot of the gameplay plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubTarget {
    /// Ground-truth stage of the sub-slot.
    pub stage: Stage,
    /// Downstream video payload bytes to deliver in the sub-slot.
    pub down_payload_bytes: f64,
    /// Video frames to deliver in the sub-slot (fractional).
    pub frames: f64,
    /// Upstream input packets to send in the sub-slot (fractional).
    pub up_pkts: f64,
    /// Mean upstream payload size, bytes.
    pub up_payload_mean: f64,
}

/// The traffic plan of a session's gameplay portion.
#[derive(Debug, Clone, PartialEq)]
pub struct GameplayPlan {
    /// Timestamp of the first sub-slot (gameplay start = launch end).
    pub start: Micros,
    /// Maximum RTP payload on the session's platform, bytes.
    pub max_payload: u32,
    /// Sub-slot targets covering `[start, start + len · SUBSLOT)`.
    pub sub: Vec<SubTarget>,
}

/// tiny inline normal sampler (Box–Muller) so the crate needs no extra
/// dependency beyond `rand`.
mod rand_distr_normal {
    use rand::rngs::StdRng;
    use rand::Rng;

    pub fn sample_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl GameplayPlan {
    /// Builds the plan for a timeline under a title profile and settings.
    pub fn generate(
        timeline: &StageTimeline,
        profile: &TitleProfile,
        settings: &StreamSettings,
        rng: &mut StdRng,
    ) -> GameplayPlan {
        let launch_end = timeline
            .spans
            .first()
            .filter(|s| s.stage == Stage::Launch)
            .map_or(0, |s| s.end);
        let end = timeline.end();
        let n = ((end - launch_end) / SUBSLOT) as usize;

        let peak_mbps = profile.base_mbps * settings.bitrate_factor();
        let peak_bytes_per_sub = peak_mbps * 1e6 / 8.0 * (SUBSLOT as f64 / 1e6);
        let active_up_pps: f64 = rng.gen_range(75.0..130.0);
        let up_payload_mean: f64 = rng.gen_range(55.0..95.0);

        // AR(1) multiplicative noise, stationary sigma ~= 0.07.
        let mut ar = 1.0f64;
        // Event state: remaining sub-slots of an upstream spike / downstream dip.
        let mut spike_left = 0u32;
        let mut dip_left = 0u32;
        // Ramp state: blend toward the level the stage was entered from.
        let mut cur_stage = Stage::Idle;
        let mut ramp_from = Stage::Idle;
        let mut ramp_left = 0u32;
        const RAMP_SUBS: u32 = 3;

        let mut sub = Vec::with_capacity(n);
        for i in 0..n {
            let ts = launch_end + i as u64 * SUBSLOT + SUBSLOT / 2;
            let stage = timeline.stage_at(ts).unwrap_or(Stage::Idle);
            if stage != cur_stage {
                ramp_from = cur_stage;
                cur_stage = stage;
                ramp_left = RAMP_SUBS;
            }

            let mut level = stage_level(stage);
            if ramp_left > 0 {
                // Linear ramp from the previous stage's level.
                let from = stage_level(ramp_from);
                let a = ramp_left as f64 / (RAMP_SUBS + 1) as f64;
                level = StageLevel {
                    down: level.down * (1.0 - a) + from.down * a,
                    fps: level.fps * (1.0 - a) + from.fps * a,
                    up: level.up * (1.0 - a) + from.up * a,
                };
                ramp_left -= 1;
            }

            ar = (1.0 + 0.9 * (ar - 1.0) + sample_normal(rng, 0.0, 0.03)).clamp(0.6, 1.4);

            // Stray-input spikes while not actively playing (§4.3.1's
            // "accidental mouse movement when spectating").
            if spike_left == 0
                && (stage == Stage::Passive || stage == Stage::Idle)
                && rng.gen_bool(0.006)
            {
                spike_left = rng.gen_range(1..=3);
            }
            // Scene-change dips while actively playing.
            if dip_left == 0 && stage == Stage::Active && rng.gen_bool(0.006) {
                dip_left = rng.gen_range(1..=3);
            }

            let mut up_frac = level.up;
            if spike_left > 0 {
                spike_left -= 1;
                up_frac = rng.gen_range(0.7..1.1);
            }
            let mut down_frac = level.down;
            if dip_left > 0 {
                dip_left -= 1;
                down_frac *= 0.5;
            }

            let fps_eff = (settings.fps as f64 * level.fps).max(1.0);
            sub.push(SubTarget {
                stage,
                down_payload_bytes: (peak_bytes_per_sub * down_frac * ar).max(0.0),
                frames: fps_eff * (SUBSLOT as f64 / 1e6),
                up_pkts: (active_up_pps * up_frac * ar).max(0.5) * (SUBSLOT as f64 / 1e6),
                up_payload_mean,
            });
        }
        GameplayPlan {
            start: launch_end,
            max_payload: settings.platform.max_payload(),
            sub,
        }
    }

    /// Synthesizes volumetric samples at [`SUBSLOT`] width directly from
    /// the plan (fleet fidelity), statistically matching
    /// [`GameplayPlan::emit_packets`] — including the sub-second frame
    /// burstiness packets naturally have: individual 100 ms bins fluctuate
    /// by ±20 % (I/P-frame size variation, burst placement) while
    /// one-second aggregates smooth it out, which is why the paper's
    /// `I = 1 s` slots beat overly granular ones.
    pub fn to_vol_samples(&self, rng: &mut StdRng) -> Vec<VolSample> {
        self.sub
            .iter()
            .map(|t| {
                let burst: f64 = rng.gen_range(0.78..1.22);
                let payload = t.down_payload_bytes * burst;
                let frames = t.frames.max(1e-9);
                let frame_bytes = payload / frames;
                let pkts_per_frame = (frame_bytes / f64::from(self.max_payload)).ceil().max(1.0);
                let down_pkts = (frames * pkts_per_frame).round();
                // Inputs arrive as a point process: quasi-Poisson counts.
                let up_pkts = (t.up_pkts * rng.gen_range(0.5f64..1.5)).round();
                VolSample {
                    down_bytes: (payload + OVERHEAD * down_pkts).round() as u64,
                    down_pkts: down_pkts as u64,
                    up_bytes: (up_pkts * (t.up_payload_mean + OVERHEAD)).round() as u64,
                    up_pkts: up_pkts as u64,
                }
            })
            .collect()
    }

    /// Emits gameplay packets (lab fidelity): downstream video as frame
    /// bursts of full packets plus a remainder packet with the RTP marker
    /// on the last packet of each frame, upstream inputs as small packets
    /// at the planned rate.
    pub fn emit_packets(&self, rng: &mut StdRng) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut frame_acc = 0.0f64;
        let mut up_acc = 0.0f64;
        let mut seq_down: u16 = 0;
        let mut seq_up: u16 = 0;

        for (i, t) in self.sub.iter().enumerate() {
            let sub_start = self.start + i as u64 * SUBSLOT;

            // Downstream frames.
            frame_acc += t.frames;
            let n_frames = frame_acc as usize;
            frame_acc -= n_frames as f64;
            if n_frames > 0 {
                let frame_bytes = t.down_payload_bytes / n_frames as f64;
                let gap = SUBSLOT / n_frames as u64;
                for f in 0..n_frames {
                    let jitter = rng.gen_range(0..(gap / 4).max(1));
                    let frame_ts = sub_start + f as u64 * gap + jitter;
                    // Size varies per frame (I/P frames): lognormal-ish.
                    let b = (frame_bytes * rng.gen_range(0.6f64..1.4)).max(200.0);
                    let max_payload = self.max_payload;
                    let n_full = (b / f64::from(max_payload)) as usize;
                    let remainder = (b - n_full as f64 * f64::from(max_payload)) as u32;
                    let mut pkt_ts = frame_ts;
                    for k in 0..n_full {
                        let mut p = Packet::new(pkt_ts, Direction::Downstream, max_payload);
                        p.seq = seq_down;
                        seq_down = seq_down.wrapping_add(1);
                        p.rtp_ts = (frame_ts / 11) as u32; // ~90 kHz clock
                        p.marker = k == n_full.saturating_sub(1) && remainder < 60;
                        out.push(p);
                        pkt_ts += rng.gen_range(80u64..400);
                    }
                    if remainder >= 60 || n_full == 0 {
                        let mut p = Packet::new(pkt_ts, Direction::Downstream, remainder.max(60));
                        p.seq = seq_down;
                        seq_down = seq_down.wrapping_add(1);
                        p.rtp_ts = (frame_ts / 11) as u32;
                        p.marker = true;
                        out.push(p);
                    }
                }
            }

            // Upstream inputs.
            up_acc += t.up_pkts;
            let n_up = up_acc as usize;
            up_acc -= n_up as f64;
            for _ in 0..n_up {
                let ts = sub_start + rng.gen_range(0..SUBSLOT);
                let size = (t.up_payload_mean * rng.gen_range(0.5..1.6)) as u32;
                let mut p = Packet::new(ts, Direction::Upstream, size.clamp(20, 300));
                p.seq = seq_up;
                seq_up = seq_up.wrapping_add(1);
                out.push(p);
            }
        }
        out.sort_by_key(|p| p.ts);
        out
    }

    /// Mean ground-truth delivered frame rate over the gameplay, fps.
    pub fn mean_fps(&self) -> f64 {
        if self.sub.is_empty() {
            return 0.0;
        }
        let frames: f64 = self.sub.iter().map(|t| t.frames).sum();
        frames / (self.sub.len() as f64 * SUBSLOT as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_domain::{ActivityPattern, GameTitle};
    use rand::SeedableRng;

    use crate::profile::{StageMix, TitleKind};
    use crate::stages::StageTimeline;

    fn setup(seed: u64, gameplay: f64) -> (StageTimeline, GameplayPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = TitleProfile::of(GameTitle::Overwatch2);
        let tl = StageTimeline::generate(
            ActivityPattern::SpectateAndPlay,
            &StageMix {
                active: 1.0,
                passive: 1.0,
                idle: 1.0,
            },
            30.0,
            gameplay,
            &mut rng,
        );
        let plan = GameplayPlan::generate(
            &tl,
            &profile,
            &cgc_domain::StreamSettings::default_pc(),
            &mut rng,
        );
        (tl, plan)
    }

    #[test]
    fn plan_covers_gameplay() {
        let (tl, plan) = setup(1, 300.0);
        assert_eq!(plan.start, 30_000_000);
        assert_eq!(plan.sub.len(), 3000);
        assert_eq!(tl.end() - plan.start, 3000 * SUBSLOT);
    }

    #[test]
    fn stage_levels_order_downstream() {
        let (_, plan) = setup(2, 1200.0);
        let mean_by = |stage: Stage| {
            let xs: Vec<f64> = plan
                .sub
                .iter()
                .filter(|t| t.stage == stage)
                .map(|t| t.down_payload_bytes)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let (a, p, i) = (
            mean_by(Stage::Active),
            mean_by(Stage::Passive),
            mean_by(Stage::Idle),
        );
        assert!(a > p, "active {a} <= passive {p}");
        assert!(p > 2.0 * i, "passive {p} <= 2*idle {i}");
    }

    #[test]
    fn stage_levels_order_upstream() {
        let (_, plan) = setup(3, 1200.0);
        let mean_by = |stage: Stage| {
            let xs: Vec<f64> = plan
                .sub
                .iter()
                .filter(|t| t.stage == stage)
                .map(|t| t.up_pkts)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        // Active upstream clearly above passive; passive above idle on average
        // (spikes keep them from being separable slot-by-slot).
        assert!(mean_by(Stage::Active) > 2.0 * mean_by(Stage::Passive));
        assert!(mean_by(Stage::Passive) > mean_by(Stage::Idle));
    }

    #[test]
    fn vol_samples_match_packet_realization() {
        let (_, plan) = setup(4, 120.0);
        let mut vrng = StdRng::seed_from_u64(1);
        let vol = plan.to_vol_samples(&mut vrng);
        let mut rng = StdRng::seed_from_u64(99);
        let pkts = plan.emit_packets(&mut rng);
        let from_pkts = nettrace::vol::VolSeries::from_packets(&pkts, plan.start, SUBSLOT);
        // Compare total downstream bytes within 15 %.
        let synth: u64 = vol.iter().map(|s| s.down_bytes).sum();
        let real: u64 = from_pkts.samples.iter().map(|s| s.down_bytes).sum();
        let ratio = real as f64 / synth as f64;
        assert!((0.85..1.15).contains(&ratio), "down bytes ratio {ratio}");
        // And upstream packet counts within 15 %.
        let synth_up: u64 = vol.iter().map(|s| s.up_pkts).sum();
        let real_up: u64 = from_pkts.samples.iter().map(|s| s.up_pkts).sum();
        let up_ratio = real_up as f64 / synth_up.max(1) as f64;
        assert!((0.85..1.15).contains(&up_ratio), "up pkts ratio {up_ratio}");
    }

    #[test]
    fn packets_are_sorted_and_bidirectional() {
        let (_, plan) = setup(5, 60.0);
        let mut rng = StdRng::seed_from_u64(7);
        let pkts = plan.emit_packets(&mut rng);
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(pkts.iter().any(|p| p.dir == Direction::Upstream));
        assert!(pkts.iter().any(|p| p.dir == Direction::Downstream));
        // Markers present (frame ends).
        assert!(pkts.iter().any(|p| p.marker));
    }

    #[test]
    fn mean_fps_tracks_settings() {
        let (_, plan) = setup(6, 600.0);
        let fps = plan.mean_fps();
        // 60 fps configured; idle slots run at 35 %, so mean is below 60
        // but above 30.
        assert!((30.0..60.5).contains(&fps), "mean fps {fps}");
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a) = setup(8, 90.0);
        let (_, b) = setup(8, 90.0);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_title_plans_work() {
        let mut rng = StdRng::seed_from_u64(11);
        let kind = TitleKind::Other {
            pattern: ActivityPattern::ContinuousPlay,
            variant: 5,
        };
        let profile = TitleProfile::of_kind(&kind);
        let tl = StageTimeline::generate(
            kind.pattern(),
            &profile.mix,
            profile.launch_secs,
            120.0,
            &mut rng,
        );
        let plan = GameplayPlan::generate(
            &tl,
            &profile,
            &cgc_domain::StreamSettings::default_pc(),
            &mut rng,
        );
        assert!(!plan.sub.is_empty());
        let mut vrng = StdRng::seed_from_u64(2);
        assert!(plan.to_vol_samples(&mut vrng).len() == plan.sub.len());
    }
}
