//! Dataset construction and model training.
//!
//! Reproduces the paper's training procedure on generator output:
//!
//! * **Title dataset** — launch-attribute vectors from sessions of every
//!   catalog title across the Table 2 settings matrix, augmented with
//!   variation-based synthesis (§4.4).
//! * **Stage dataset** — per-slot EMA-smoothed relative volumetric
//!   features produced *exactly* as the pipeline produces them (same
//!   extractor, same seeding), labeled with the ground-truth stage at the
//!   slot midpoint; the launch period trains a fourth class so the running
//!   classifier recognizes it without an external boundary oracle.
//! * **Pattern dataset** — normalized transition features from truth stage
//!   sequences, sampled at several prefix lengths so confidence behaves
//!   sensibly on short observation windows.

use cgc_core::bundle::ModelBundle;
use cgc_core::pattern::{PatternInferrer, PatternInferrerConfig};
use cgc_core::qoe::{CalibrationTable, ObjectiveThresholds};
use cgc_core::stage::{stage_class_id, StageClassifier, StageClassifierConfig};
use cgc_core::title::{TitleClassifier, TitleClassifierConfig};
use cgc_domain::{ActivityPattern, GameTitle};
use cgc_features::launch_attrs::launch_attributes;
use cgc_features::transitions::TransitionAccumulator;
use cgc_features::vol_attrs::StageFeatureExtractor;
use gamesim::dataset::sample_lab_settings;
use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use mlcore::augment::augment_multiply;
use mlcore::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Sessions generated per catalog title for the title dataset.
    pub sessions_per_title: usize,
    /// Variation-based augmentation factor (1 = off).
    pub augment_factor: usize,
    /// Relative feature noise used by augmentation.
    pub augment_noise: f64,
    /// Sessions for the stage dataset.
    pub stage_sessions: usize,
    /// Gameplay seconds per stage-dataset session.
    pub stage_gameplay_secs: f64,
    /// Sessions per pattern for the pattern dataset.
    pub pattern_sessions: usize,
    /// Master seed.
    pub seed: u64,
    /// Title classifier configuration.
    pub title_cfg: TitleClassifierConfig,
    /// Stage classifier configuration.
    pub stage_cfg: StageClassifierConfig,
    /// Pattern inferrer configuration.
    pub pattern_cfg: PatternInferrerConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            sessions_per_title: 30,
            augment_factor: 3,
            augment_noise: 0.05,
            stage_sessions: 48,
            stage_gameplay_secs: 420.0,
            pattern_sessions: 60,
            seed: 7,
            title_cfg: TitleClassifierConfig::default(),
            stage_cfg: StageClassifierConfig::default(),
            pattern_cfg: PatternInferrerConfig::default(),
        }
    }
}

impl TrainConfig {
    /// A reduced configuration for tests and quick examples.
    pub fn quick() -> Self {
        TrainConfig {
            sessions_per_title: 8,
            augment_factor: 2,
            stage_sessions: 16,
            stage_gameplay_secs: 240.0,
            pattern_sessions: 20,
            ..Default::default()
        }
    }
}

/// Generates one training session for a title kind with lab-matrix
/// settings.
fn gen_session(
    generator: &mut SessionGenerator,
    kind: TitleKind,
    gameplay_secs: f64,
    rng: &mut StdRng,
    seed: u64,
) -> Session {
    generator.generate(&SessionConfig {
        kind,
        settings: sample_lab_settings(rng),
        gameplay_secs,
        fidelity: Fidelity::LaunchOnly,
        seed,
    })
}

/// Builds the title dataset: launch-attribute vectors labeled with
/// [`GameTitle::index`], augmented per §4.4.
pub fn title_dataset(cfg: &TrainConfig) -> Dataset {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let attr = &cfg.title_cfg.attr;
    let mut x = Vec::new();
    let mut y = Vec::new();
    for title in GameTitle::ALL {
        for i in 0..cfg.sessions_per_title {
            let s = gen_session(
                &mut generator,
                TitleKind::Known(title),
                2.0,
                &mut rng,
                cfg.seed
                    .wrapping_mul(31)
                    .wrapping_add((title.index() * 10_000 + i) as u64),
            );
            x.push(launch_attributes(&s.launch_window(attr.window_secs), attr));
            y.push(title.index());
        }
    }
    let data = Dataset::new(x, y)
        .with_n_classes(GameTitle::ALL.len())
        .with_feature_names(attr.attribute_names());
    augment_multiply(
        &data,
        cfg.augment_factor.max(1),
        cfg.augment_noise,
        cfg.seed,
    )
}

/// Builds the stage dataset: per-slot pipeline features labeled with the
/// ground-truth stage at the slot midpoint (4 classes incl. launch).
pub fn stage_dataset(cfg: &TrainConfig) -> Dataset {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5747_4f45);
    let slot = ModelBundle::DEFAULT_STAGE_SLOT;
    let seed_slots = 10usize;
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..cfg.stage_sessions {
        // Cycle titles so every pattern and demand level contributes.
        let title = GameTitle::ALL[i % GameTitle::ALL.len()];
        // Mostly fleet-fidelity sessions, but every fifth session is a
        // full packet trace so launch-period volumetrics of real captures
        // are also in distribution.
        let s = if i % 5 == 4 {
            generator.generate(&SessionConfig {
                kind: TitleKind::Known(title),
                settings: sample_lab_settings(&mut rng),
                gameplay_secs: cfg.stage_gameplay_secs.min(180.0),
                fidelity: Fidelity::FullPackets,
                seed: cfg.seed.wrapping_mul(97).wrapping_add(i as u64),
            })
        } else {
            gen_session(
                &mut generator,
                TitleKind::Known(title),
                cfg.stage_gameplay_secs,
                &mut rng,
                cfg.seed.wrapping_mul(97).wrapping_add(i as u64),
            )
        };
        let vol = s.vol_at(slot);
        if vol.len() <= seed_slots {
            continue;
        }
        let mut extractor =
            StageFeatureExtractor::new(&cfg_stage_feature(), slot, &vol.samples[..seed_slots]);
        for (j, sample) in vol.samples.iter().enumerate().skip(seed_slots) {
            let feats = extractor.push(sample);
            let midpoint = j as u64 * slot + slot / 2;
            let Some(stage) = s.timeline.stage_at(midpoint) else {
                continue;
            };
            x.push(feats.to_vec());
            y.push(stage_class_id(stage));
        }
    }
    Dataset::new(x, y).with_n_classes(4)
}

fn cfg_stage_feature() -> cgc_features::vol_attrs::StageFeatureConfig {
    cgc_features::vol_attrs::StageFeatureConfig::default()
}

/// The per-slot stage sequence the deployed pipeline would classify for a
/// session (peak seeding from the first slots, then slot-by-slot
/// classification).
pub fn classified_stage_sequence(
    stage_clf: &StageClassifier,
    s: &Session,
) -> Vec<cgc_domain::Stage> {
    let slot = ModelBundle::DEFAULT_STAGE_SLOT;
    let vol = s.vol_at(slot);
    let seed_slots = 10usize.min(vol.len());
    let mut extractor =
        StageFeatureExtractor::new(&cfg_stage_feature(), slot, &vol.samples[..seed_slots]);
    vol.samples
        .iter()
        .skip(seed_slots)
        .map(|sample| stage_clf.classify(&extractor.push(sample)))
        .collect()
}

/// Builds the pattern dataset **end-to-end**: transition features are
/// accumulated from the *classified* stage sequences the given stage
/// classifier produces (not from ground truth), so the inferrer is trained
/// on the same flickery distribution it will see in deployment. One sample
/// per prefix length per session.
pub fn pattern_dataset_with(stage_clf: &StageClassifier, cfg: &TrainConfig) -> Dataset {
    let mut generator = SessionGenerator::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5041_5454);
    // Short prefixes are deliberately included: early transition matrices
    // are degenerate (one lobby span) and near-identical across patterns,
    // and training on them teaches the forest to be *unconfident* there —
    // which is what makes the 75 % confidence gate wait for real evidence.
    let prefixes = [30usize, 60, 90, 150, 240, 420, 600, 900, usize::MAX];
    let mut x = Vec::new();
    let mut y = Vec::new();
    for pattern in ActivityPattern::ALL {
        for i in 0..cfg.pattern_sessions {
            // Mix catalog titles of the right pattern with unknown ones.
            let kind = if i % 3 == 2 {
                TitleKind::Other {
                    pattern,
                    variant: (i / 3) as u32,
                }
            } else {
                let candidates: Vec<GameTitle> = GameTitle::ALL
                    .iter()
                    .copied()
                    .filter(|t| t.pattern() == pattern)
                    .collect();
                TitleKind::Known(candidates[i % candidates.len()])
            };
            let s = gen_session(
                &mut generator,
                kind,
                1500.0,
                &mut rng,
                cfg.seed.wrapping_mul(193).wrapping_add(i as u64) ^ (pattern.index() as u64) << 32,
            );
            let seq = classified_stage_sequence(stage_clf, &s);
            for &p in &prefixes {
                let end = p.min(seq.len());
                if end < 60 {
                    continue;
                }
                let acc = TransitionAccumulator::from_sequence(&seq[..end]);
                if acc.total() == 0 {
                    continue;
                }
                x.push(acc.features().to_vec());
                y.push(pattern.index());
            }
        }
    }
    Dataset::new(x, y).with_n_classes(2)
}

/// Builds the pattern dataset, training an intermediate stage classifier
/// from the same config (convenience wrapper over
/// [`pattern_dataset_with`]).
pub fn pattern_dataset(cfg: &TrainConfig) -> Dataset {
    let stage = StageClassifier::train(&stage_dataset(cfg), cfg.stage_cfg);
    pattern_dataset_with(&stage, cfg)
}

/// Trains a complete model bundle. The pattern inferrer is trained on the
/// stage classifier's own outputs (end-to-end consistency).
pub fn train_bundle(cfg: &TrainConfig) -> ModelBundle {
    let title = TitleClassifier::train(&title_dataset(cfg), cfg.title_cfg);
    let stage = StageClassifier::train(&stage_dataset(cfg), cfg.stage_cfg);
    let pattern = PatternInferrer::train(&pattern_dataset_with(&stage, cfg), cfg.pattern_cfg);
    ModelBundle {
        title,
        stage,
        pattern,
        stage_feature: cfg_stage_feature(),
        stage_slot: ModelBundle::DEFAULT_STAGE_SLOT,
        thresholds: ObjectiveThresholds::default(),
        calibration: CalibrationTable::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::metrics::accuracy;
    use mlcore::Classifier;

    #[test]
    fn title_dataset_shape() {
        let cfg = TrainConfig {
            sessions_per_title: 2,
            augment_factor: 2,
            ..TrainConfig::quick()
        };
        let d = title_dataset(&cfg);
        assert_eq!(d.len(), 13 * 2 * 2);
        assert_eq!(d.n_features(), 51);
        assert_eq!(d.n_classes, 13);
        assert_eq!(d.feature_names.len(), 51);
    }

    #[test]
    fn stage_dataset_covers_all_classes() {
        let cfg = TrainConfig {
            stage_sessions: 6,
            stage_gameplay_secs: 300.0,
            ..TrainConfig::quick()
        };
        let d = stage_dataset(&cfg);
        assert_eq!(d.n_features(), 4);
        for class in 0..4 {
            assert!(
                !d.class_indices(class).is_empty(),
                "class {class} missing from stage dataset"
            );
        }
        // Features are relative: bounded by ~1.
        assert!(d.x.iter().flatten().all(|&v| (0.0..=1.5).contains(&v)));
    }

    #[test]
    fn pattern_dataset_is_balanced_and_separable() {
        let cfg = TrainConfig {
            pattern_sessions: 14,
            ..TrainConfig::quick()
        };
        let d = pattern_dataset(&cfg);
        assert_eq!(d.n_features(), 9);
        let c0 = d.class_indices(0).len();
        let c1 = d.class_indices(1).len();
        assert!(c0 > 0 && c1 > 0);
        assert!((c0 as f64 / c1 as f64).clamp(0.5, 2.0) > 0.4);
        // Quick train/test sanity.
        let (train, test) = d.stratified_split(0.3, 1);
        let m = PatternInferrer::train(&train, PatternInferrerConfig::default());
        let preds: Vec<usize> = test.x.iter().map(|x| m.forest().predict(x)).collect();
        let acc = accuracy(&test.y, &preds);
        // Short (90 s) prefixes are genuinely hard; the full-session
        // accuracy is measured in the experiments.
        assert!(acc > 0.8, "pattern accuracy {acc}");
    }

    #[test]
    fn quick_bundle_trains_and_roundtrips() {
        let bundle = train_bundle(&TrainConfig::quick());
        let json = bundle.to_json().unwrap();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back.stage_slot, ModelBundle::DEFAULT_STAGE_SLOT);
    }
}
