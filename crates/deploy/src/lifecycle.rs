//! The model lifecycle loop, composed for deployments.
//!
//! `cgc-lifecycle` supplies the mechanisms — versioned registry, hot
//! slot, A/B scoreboard; this module wires them to the fleet:
//!
//! 1. the drift engine trips (or an operator asks) →
//! 2. [`LifecyclePilot::shadow_retrain`] re-labels journaled per-session
//!    decisions into a training set and fits a candidate off-thread →
//! 3. the candidate is registered and armed as a [`ShadowMirror`], so
//!    [`run_fleet_with_models`](crate::fleet::run_fleet_with_models)
//!    mirrors every live decision to it →
//! 4. [`LifecyclePilot::evaluate`] turns the scoreboard into a
//!    promote/hold verdict, auto-promoting under
//!    [`PromotePolicy::Auto`] — and [`LifecyclePilot::rollback`]
//!    restores the previous version with one atomic store.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cgc_core::bundle::ModelBundle;
use cgc_core::pattern::PatternInferrer;
use cgc_core::PipelineMetrics;
use cgc_features::transitions::TransitionAccumulator;
use cgc_lifecycle::{AbScore, Assessment, LifecycleMetrics, LiveModel, ModelRegistry, Verdict};
use mlcore::Dataset;
use serde::Value;

use crate::fleet::SessionRecord;

/// When a `Promote` verdict is acted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotePolicy {
    /// Promote the moment the assessment says so.
    Auto,
    /// Surface the verdict only; an operator calls
    /// [`LifecyclePilot::promote`].
    Manual,
}

impl PromotePolicy {
    /// Parses a CLI `--promote` value (`auto` / `manual`).
    pub fn parse(s: &str) -> Option<PromotePolicy> {
        match s {
            "auto" => Some(PromotePolicy::Auto),
            "manual" => Some(PromotePolicy::Manual),
            _ => None,
        }
    }

    /// The CLI spelling of this policy.
    pub fn name(self) -> &'static str {
        match self {
            PromotePolicy::Auto => "auto",
            PromotePolicy::Manual => "manual",
        }
    }
}

/// A candidate bundle riding shadow: the fleet mirrors every live
/// decision to it and scores both against withheld ground truth.
#[derive(Debug)]
pub struct ShadowMirror {
    /// Registry version of the candidate.
    pub version: u32,
    /// The candidate bundle.
    pub bundle: Arc<ModelBundle>,
    /// Shared live-vs-candidate scoreboard.
    pub score: Arc<AbScore>,
    /// Private pipeline-metrics sink for mirrored inference, so the
    /// candidate's counters never pollute the live families.
    metrics: PipelineMetrics,
}

impl ShadowMirror {
    /// Arms a candidate for shadow evaluation.
    pub fn new(version: u32, bundle: Arc<ModelBundle>) -> ShadowMirror {
        ShadowMirror {
            version,
            bundle,
            score: Arc::new(AbScore::new()),
            metrics: PipelineMetrics::register(&cgc_obs::Registry::new()),
        }
    }

    /// The mirror's private pipeline-metrics handles.
    pub fn pipeline_metrics(&self) -> PipelineMetrics {
        self.metrics.clone()
    }
}

/// The deployment's model-lifecycle control loop: one hot slot, one
/// on-disk registry, at most one shadow candidate, and the metrics that
/// narrate all of it.
#[derive(Debug)]
pub struct LifecyclePilot {
    live: Arc<LiveModel<ModelBundle>>,
    registry: ModelRegistry,
    metrics: LifecycleMetrics,
    policy: PromotePolicy,
    shadow: Mutex<Option<Arc<ShadowMirror>>>,
    /// Live version before the last promotion — the rollback target.
    prev_version: Mutex<Option<u32>>,
}

impl LifecyclePilot {
    /// Opens the registry at `dir` and brings up the live slot: serving
    /// the newest stored version if the registry has one (the restart
    /// path), else storing `seed_bundle` as v1 and serving that.
    /// Lifecycle metric families register in `obs`.
    pub fn open(
        dir: impl Into<PathBuf>,
        seed_bundle: ModelBundle,
        train_fingerprint: u64,
        obs: &cgc_obs::Registry,
        policy: PromotePolicy,
    ) -> io::Result<LifecyclePilot> {
        let registry = ModelRegistry::open(dir.into())?;
        let metrics = LifecycleMetrics::register(obs);
        let (version, bundle) = match registry.latest()? {
            Some(m) => {
                let (bundle, manifest) = registry.load::<ModelBundle>(m.version)?;
                (manifest.version, bundle)
            }
            None => {
                let manifest = registry.store(&seed_bundle, train_fingerprint)?;
                (manifest.version, seed_bundle)
            }
        };
        metrics.set_live_version(version);
        metrics.set_shadow_version(None);
        Ok(LifecyclePilot {
            live: Arc::new(LiveModel::new_as(version, bundle)),
            registry,
            metrics,
            policy,
            shadow: Mutex::new(None),
            prev_version: Mutex::new(None),
        })
    }

    /// The hot slot serving live traffic.
    pub fn live(&self) -> &Arc<LiveModel<ModelBundle>> {
        &self.live
    }

    /// The on-disk artifact registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The lifecycle metric handles.
    pub fn metrics(&self) -> &LifecycleMetrics {
        &self.metrics
    }

    /// The configured promotion policy.
    pub fn policy(&self) -> PromotePolicy {
        self.policy
    }

    /// The candidate currently riding shadow, if any.
    pub fn shadow(&self) -> Option<Arc<ShadowMirror>> {
        self.shadow.lock().expect("pilot poisoned").clone()
    }

    /// Re-labels journaled per-session decisions into a pattern training
    /// set: the pipeline's own classified stage sequences (what the
    /// flight recorder kept per flow) joined with the "server log"
    /// truth pattern, sampled at the same prefix ladder the original
    /// training used so confidence keeps behaving on short windows.
    pub fn relabel_pattern_dataset(records: &[SessionRecord]) -> Dataset {
        let prefixes = [30usize, 60, 90, 150, 240, 420, 600, 900, usize::MAX];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in records {
            for &p in &prefixes {
                let end = p.min(r.report.stage_slots.len());
                if end < 60 {
                    continue;
                }
                let acc = TransitionAccumulator::from_sequence(&r.report.stage_slots[..end]);
                if acc.total() == 0 {
                    continue;
                }
                x.push(acc.features().to_vec());
                y.push(r.truth_pattern.index());
            }
        }
        Dataset::new(x, y).with_n_classes(2)
    }

    /// Synchronously fits, registers and arms a shadow candidate: the
    /// live bundle with its pattern inferrer retrained on the
    /// re-labeled journal evidence. Returns the candidate's registry
    /// version. ([`LifecyclePilot::shadow_retrain`] is the off-thread
    /// wrapper deployments use so training never stalls the pipeline.)
    pub fn retrain_now(&self, records: &[SessionRecord]) -> io::Result<u32> {
        let data = Self::relabel_pattern_dataset(records);
        if data.len() < 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "only {} usable journaled sessions: not enough evidence to retrain",
                    data.len()
                ),
            ));
        }
        let live = self.live.load();
        let mut candidate: ModelBundle = live.value().clone();
        candidate.pattern = PatternInferrer::train(&data, *candidate.pattern.config());
        let manifest = self.registry.store(&candidate, data.fingerprint())?;
        let mirror = Arc::new(ShadowMirror::new(manifest.version, Arc::new(candidate)));
        *self.shadow.lock().expect("pilot poisoned") = Some(mirror);
        self.metrics.set_shadow_version(Some(manifest.version));
        Ok(manifest.version)
    }

    /// Kicks off [`LifecyclePilot::retrain_now`] on a background thread
    /// (the drift-alarm handler's shape: the pipeline keeps serving the
    /// live version while the candidate fits). Join the handle for the
    /// registered version.
    pub fn shadow_retrain(
        self: &Arc<Self>,
        records: Vec<SessionRecord>,
    ) -> JoinHandle<io::Result<u32>> {
        let pilot = Arc::clone(self);
        std::thread::Builder::new()
            .name("shadow-retrain".into())
            .spawn(move || pilot.retrain_now(&records))
            .expect("spawn shadow-retrain thread")
    }

    /// Assesses the shadow candidate's scoreboard (also syncing it into
    /// the `cgc_lifecycle_*` families). `None` when nothing rides shadow.
    pub fn assess(&self) -> Option<Assessment> {
        let shadow = self.shadow()?;
        shadow.score.sync(&self.metrics);
        Some(shadow.score.assess())
    }

    /// Applies the promotion policy: assesses, and under
    /// [`PromotePolicy::Auto`] with a `Promote` verdict swaps the
    /// candidate live. Returns the assessment plus the promoted version
    /// (if the swap happened).
    pub fn evaluate(&self) -> Option<(Assessment, Option<u32>)> {
        let assessment = self.assess()?;
        let promoted =
            if assessment.verdict == Verdict::Promote && self.policy == PromotePolicy::Auto {
                self.promote()
            } else {
                None
            };
        Some((assessment, promoted))
    }

    /// Promotes the shadow candidate live — one atomic store; in-flight
    /// sessions finish on the version they pinned. Under `manual` policy
    /// this is the operator's explicit call, regardless of verdict.
    /// Returns the new live version (`None` when nothing rides shadow).
    pub fn promote(&self) -> Option<u32> {
        let mirror = self.shadow.lock().expect("pilot poisoned").take()?;
        let prev = self.live.version();
        self.live
            .publish_as(mirror.version, (*mirror.bundle).clone());
        *self.prev_version.lock().expect("pilot poisoned") = Some(prev);
        self.metrics.set_live_version(mirror.version);
        self.metrics.set_shadow_version(None);
        self.metrics.record_promotion();
        Some(mirror.version)
    }

    /// Rolls live back to the version before the last promotion —
    /// instant, the parked version is still in the slot. Returns the
    /// restored version (`None` when there is nothing to roll back to).
    pub fn rollback(&self) -> Option<u32> {
        let prev = self.prev_version.lock().expect("pilot poisoned").take()?;
        if !self.live.rollback_to(prev) {
            return None;
        }
        self.metrics.set_live_version(prev);
        self.metrics.record_rollback();
        Some(prev)
    }

    /// The JSON document served on the telemetry `/models` route:
    /// registry contents, live + shadow versions, per-kind A/B scores
    /// and the current verdict.
    pub fn models_json(&self) -> String {
        let mut root: Vec<(String, Value)> = vec![
            (
                "live_version".into(),
                Value::UInt(u64::from(self.live.version())),
            ),
            ("policy".into(), Value::String(self.policy.name().into())),
        ];
        let registry = match self.registry.list() {
            Ok(manifests) => {
                Value::Array(manifests.iter().map(serde::Serialize::to_value).collect())
            }
            Err(e) => Value::String(format!("unreadable: {e}")),
        };
        root.push(("registry".into(), registry));
        let shadow = match self.shadow() {
            None => Value::Null,
            Some(mirror) => {
                let assessment = mirror.score.assess();
                let scores: Vec<Value> = assessment
                    .scores
                    .iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("model".into(), Value::String(s.kind.name().into())),
                            ("mirrored".into(), Value::UInt(s.mirrored)),
                            ("agreement".into(), Value::Float(s.agreement)),
                            ("truth_n".into(), Value::UInt(s.truth_n)),
                            ("live_accuracy".into(), Value::Float(s.live_accuracy)),
                            ("cand_accuracy".into(), Value::Float(s.cand_accuracy)),
                            ("accuracy_delta".into(), Value::Float(s.accuracy_delta())),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("version".into(), Value::UInt(u64::from(mirror.version))),
                    (
                        "verdict".into(),
                        Value::String(
                            match assessment.verdict {
                                Verdict::Promote => "promote",
                                Verdict::Hold => "hold",
                            }
                            .into(),
                        ),
                    ),
                    ("reason".into(), Value::String(assessment.reason)),
                    ("scores".into(), Value::Array(scores)),
                ])
            }
        };
        root.push(("shadow".into(), shadow));
        serde::write_pretty(&Value::Object(root))
    }
}

/// The process-wide pilot slot: the CLI installs its pilot here so the
/// telemetry server's `/models` route (whose closure is built before
/// any subcommand runs) can find it.
static GLOBAL: std::sync::OnceLock<Arc<LifecyclePilot>> = std::sync::OnceLock::new();

/// Installs the process-wide pilot (first install wins) and returns the
/// one now installed.
pub fn install_global(pilot: Arc<LifecyclePilot>) -> Arc<LifecyclePilot> {
    Arc::clone(GLOBAL.get_or_init(|| pilot))
}

/// The process-wide pilot, if one was installed.
pub fn global() -> Option<Arc<LifecyclePilot>> {
    GLOBAL.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet_with_models, FleetConfig, FleetModels};
    use crate::train::{train_bundle, TrainConfig};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "cgc-deploy-lifecycle-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn fleet_cfg(n: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            n_sessions: n,
            seed,
            duration_scale: 0.05,
            workers: 2,
            ..Default::default()
        }
    }

    #[test]
    fn pilot_retrains_from_records_and_promotes_with_rollback() {
        let dir = scratch_dir("loop");
        let obs = cgc_obs::Registry::new();
        let bundle = train_bundle(&TrainConfig::quick());
        let pilot = Arc::new(
            LifecyclePilot::open(&dir, bundle, 0x5EED, &obs, PromotePolicy::Manual).unwrap(),
        );
        assert_eq!(pilot.live().version(), 1);
        assert!(pilot.assess().is_none(), "no shadow yet");

        // Drift-window evidence → candidate v2 riding shadow.
        let records = run_fleet_with_models(
            FleetModels::fixed(pilot.live().load().value()),
            &fleet_cfg(12, 99),
        );
        let handle = pilot.shadow_retrain(records);
        let version = handle.join().unwrap().unwrap();
        assert_eq!(version, 2);
        assert_eq!(pilot.registry().latest().unwrap().unwrap().version, 2);
        let shadow = pilot.shadow().expect("candidate armed");
        assert_eq!(shadow.version, 2);

        // A mirrored fleet populates the scoreboard end to end.
        let mirrored = run_fleet_with_models(
            FleetModels {
                source: cgc_core::ModelSource::Live(pilot.live()),
                shadow: Some(&shadow),
            },
            &fleet_cfg(8, 7),
        );
        assert!(mirrored.iter().all(|r| r.model_version == 1));
        assert!(shadow.score.score(cgc_obs::ModelKind::Title).mirrored >= 8);
        let assessment = pilot.assess().unwrap();
        assert!(!assessment.scores.is_empty());

        // Manual promote, then instant rollback: a pin taken before the
        // swap keeps serving v1 either way.
        let pinned = pilot.live().load();
        assert_eq!(pilot.promote(), Some(2));
        assert_eq!(pilot.live().version(), 2);
        assert_eq!(pinned.version(), 1, "in-flight pin unaffected by swap");
        assert!(pilot.shadow().is_none());
        assert_eq!(pilot.rollback(), Some(1));
        assert_eq!(pilot.live().version(), 1);
        assert_eq!(pilot.rollback(), None, "rollback target consumed");

        let json = pilot.models_json();
        assert!(json.contains("\"live_version\": 1"), "{json}");
        assert!(json.contains("\"registry\""), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pilot_reopens_serving_the_latest_registered_version() {
        let dir = scratch_dir("reopen");
        let obs = cgc_obs::Registry::new();
        let bundle = train_bundle(&TrainConfig::quick());
        {
            let pilot = Arc::new(
                LifecyclePilot::open(&dir, bundle.clone(), 1, &obs, PromotePolicy::Auto).unwrap(),
            );
            let records = run_fleet_with_models(
                FleetModels::fixed(pilot.live().load().value()),
                &fleet_cfg(12, 99),
            );
            pilot.retrain_now(&records).unwrap();
        }
        // A fresh process finds v2 in the registry and serves it —
        // the seed bundle is ignored.
        let pilot = LifecyclePilot::open(&dir, bundle, 1, &obs, PromotePolicy::Auto).unwrap();
        assert_eq!(pilot.live().version(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retrain_refuses_thin_evidence() {
        let dir = scratch_dir("thin");
        let obs = cgc_obs::Registry::new();
        let bundle = train_bundle(&TrainConfig::quick());
        let pilot = LifecyclePilot::open(&dir, bundle, 1, &obs, PromotePolicy::Auto).unwrap();
        let err = pilot.retrain_now(&[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(pilot.shadow().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
