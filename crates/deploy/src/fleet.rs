//! Deployment-scale fleet simulation (§5).
//!
//! Drives a popularity-weighted stream of synthetic sessions through the
//! real-time pipeline and records ground truth next to classifier output —
//! the analogue of operating the system in the partner ISP for three
//! months and joining against the cloud server logs afterwards.
//!
//! Sessions mix catalog titles (Table 1 popularity), a long tail of
//! unknown titles, the Table 2 settings matrix, per-title duration models,
//! and a slice of network-impaired subscribers whose streams are rate
//! capped, lossy and delayed.

use cgc_core::bundle::{ModelBundle, ModelSource};
use cgc_core::pipeline::{AnalyzerConfig, QoeInputs, SessionAnalyzer, SessionReport};
use cgc_domain::{ActivityPattern, Stage, StreamSettings};
use cgc_features::vol_attrs::raw_features;
use gamesim::dataset::sample_lab_settings;
use gamesim::profile::TitleProfile;
use gamesim::{Fidelity, Session, SessionConfig, SessionGenerator, TitleKind};
use nettrace::impair::{Impairment, ImpairmentConfig, ImpairmentProfile};
use nettrace::units::MICROS_PER_SEC;
use nettrace::vol::VolSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cgc_domain::catalog::CATALOG;

use crate::lifecycle::ShadowMirror;

/// What a fleet run serves from: the live model source every session
/// pins at start, plus an optional shadow candidate that live decisions
/// are mirrored to for A/B scoring.
#[derive(Clone, Copy)]
pub struct FleetModels<'a> {
    /// Live models — a fixed bundle or a hot-swappable slot.
    pub source: ModelSource<'a>,
    /// Candidate riding shadow, if any.
    pub shadow: Option<&'a ShadowMirror>,
}

impl<'a> FleetModels<'a> {
    /// A fixed bundle with no shadow — the pre-lifecycle shape.
    pub fn fixed(bundle: &'a ModelBundle) -> FleetModels<'a> {
        FleetModels {
            source: ModelSource::Fixed(bundle),
            shadow: None,
        }
    }
}

/// Fleet simulation configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of sessions to simulate.
    pub n_sessions: usize,
    /// Master seed.
    pub seed: u64,
    /// Scale on per-title session durations (1.0 = paper-scale sessions of
    /// 28–95 minutes; experiments default lower to bound compute).
    pub duration_scale: f64,
    /// Fraction of sessions playing non-catalog titles.
    pub unknown_fraction: f64,
    /// Number of distinct unknown-title variants.
    pub unknown_variants: u32,
    /// Fraction of sessions behind degraded network paths.
    pub impaired_fraction: f64,
    /// Named impairment profile applied to the impaired slice. `None`
    /// keeps the legacy `poor_network` channel; `Some(profile)` routes
    /// impaired sessions through the adversarial network-condition engine
    /// (correlated jitter, bufferbloat queueing, capacity schedules) with
    /// mid-session degradation onsets where the profile defines one.
    pub impair_profile: Option<ImpairmentProfile>,
    /// Quality sink for the withheld-truth join; `None` uses the
    /// process-global sink. Experiments sweeping several regimes in one
    /// process install one private hub per regime through this.
    pub quality: Option<cgc_obs::quality::QualitySink>,
    /// Drift sink attached to every session's analyzer; `None` uses the
    /// process-global sink.
    pub drift: Option<cgc_obs::drift::DriftSink>,
    /// Sample catalog titles uniformly instead of by popularity —
    /// calibration passes use this so rare titles (Hearthstone is 0.04 %
    /// of playtime) still get their demand measured.
    pub uniform_titles: bool,
    /// Length of the simulated deployment window in days; session arrivals
    /// spread over it with an evening-peaked diurnal profile.
    pub deployment_days: u32,
    /// Worker threads.
    pub workers: usize,
    /// Emit a pipeline-telemetry delta report (nonzero counter increments
    /// since the previous report) every this many completed sessions.
    /// `0` disables the reporter.
    pub telemetry_every: usize,
    /// Cooperative cancellation flag (a Ctrl-C handler sets it): workers
    /// stop claiming sessions once it reads `true`, and [`run_fleet`]
    /// returns the records completed so far.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_sessions: 600,
            seed: 20241201, // deployment start: 1 Dec 2024
            duration_scale: 0.15,
            unknown_fraction: 0.25,
            unknown_variants: 8,
            impaired_fraction: 0.08,
            impair_profile: None,
            quality: None,
            drift: None,
            uniform_titles: false,
            deployment_days: 90, // 1 Dec 2024 – 1 Mar 2025
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            telemetry_every: 0,
            cancel: None,
        }
    }
}

/// Ground truth + pipeline output for one fleet session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Global session index.
    pub id: u64,
    /// What was actually played ("server log" ground truth).
    pub truth_kind: TitleKind,
    /// Ground-truth activity pattern.
    pub truth_pattern: ActivityPattern,
    /// Stream settings of the session.
    pub settings: StreamSettings,
    /// Ground-truth seconds per stage `[launch, idle, passive, active]`.
    pub truth_stage_secs: [f64; 4],
    /// Ground-truth mean downstream throughput, Mbps.
    pub truth_mean_down_mbps: f64,
    /// 95th-percentile 1 s-slot downstream throughput, Mbps (demand proxy).
    pub peak_down_mbps: f64,
    /// Whether the session ran behind a degraded network path.
    pub impaired: bool,
    /// Name of the impairment profile applied, when the fleet ran with
    /// [`FleetConfig::impair_profile`] and this session drew the impaired
    /// slice (`None` on the legacy path and for unimpaired sessions).
    pub impair_profile: Option<String>,
    /// Degradation onset within the session, microseconds from session
    /// start, for profiles that degrade mid-session (`None` when the
    /// impairment applies from the first packet, or no impairment).
    pub degradation_onset_us: Option<u64>,
    /// Session arrival time within the simulated deployment window,
    /// microseconds since deployment start (diurnal, evening-peaked).
    pub arrival: u64,
    /// Registry version of the bundle that served this session (0 when
    /// the fleet ran against a fixed, unversioned bundle).
    pub model_version: u32,
    /// The pipeline's report.
    pub report: SessionReport,
}

impl SessionRecord {
    /// True when the classified title matches the ground truth catalog
    /// title (unknown-vs-unknown also counts as correct).
    pub fn title_correct(&self) -> bool {
        self.report.title.title == self.truth_kind.known()
    }
}

fn sample_kind(rng: &mut StdRng, cfg: &FleetConfig) -> TitleKind {
    if rng.gen_bool(cfg.unknown_fraction) {
        let variant = rng.gen_range(0..cfg.unknown_variants.max(1));
        let pattern = if rng.gen_bool(0.6) {
            ActivityPattern::SpectateAndPlay
        } else {
            ActivityPattern::ContinuousPlay
        };
        return TitleKind::Other { pattern, variant };
    }
    if cfg.uniform_titles {
        return TitleKind::Known(CATALOG[rng.gen_range(0..CATALOG.len())].title);
    }
    // 10 % uniform mixing floor: a three-month deployment sees hundreds of
    // sessions even of 0.04 %-popularity titles; a scaled-down fleet would
    // otherwise never sample them.
    if rng.gen_bool(0.10) {
        return TitleKind::Known(CATALOG[rng.gen_range(0..CATALOG.len())].title);
    }
    let total: f64 = CATALOG.iter().map(|e| e.popularity).sum();
    let mut pick = rng.gen_range(0.0..total);
    for e in &CATALOG {
        if pick < e.popularity {
            return TitleKind::Known(e.title);
        }
        pick -= e.popularity;
    }
    TitleKind::Known(CATALOG[0].title)
}

/// Relative session-arrival weight per hour of day: cloud gaming peaks in
/// the evening (the "peak hours" §5.2 worries about) and bottoms out
/// overnight. Public so impairment scheduling (and the diurnal experiment)
/// compose with the same arrival model.
pub const DIURNAL_WEIGHTS: [f64; 24] = [
    3.0, 2.0, 1.0, 1.0, 1.0, 1.0, 2.0, 3.0, // 00-07
    4.0, 5.0, 5.0, 6.0, 7.0, 7.0, 8.0, 9.0, // 08-15
    10.0, 12.0, 14.0, 16.0, 15.0, 12.0, 8.0, 5.0, // 16-23
];

/// Samples an arrival time within the deployment window.
fn sample_arrival(days: u32, rng: &mut StdRng) -> u64 {
    let day = rng.gen_range(0..days.max(1)) as u64;
    let total: f64 = DIURNAL_WEIGHTS.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    let mut hour = 23usize;
    for (h, &w) in DIURNAL_WEIGHTS.iter().enumerate() {
        if pick < w {
            hour = h;
            break;
        }
        pick -= w;
    }
    let within_hour = rng.gen_range(0..3_600_000_000u64);
    day * 86_400_000_000 + hour as u64 * 3_600_000_000 + within_hour
}

fn sample_duration_secs(kind: &TitleKind, scale: f64, rng: &mut StdRng) -> f64 {
    let p = TitleProfile::of_kind(kind);
    let mins = (p.session_minutes_mean + rng.gen_range(-1.0f64..1.0) * p.session_minutes_std)
        .clamp(p.session_minutes_mean * 0.3, p.session_minutes_mean * 2.5);
    (mins * 60.0 * scale).max(120.0)
}

/// Degrades a fleet session in place: launch packets through the
/// impairment channel, the volumetric series through a rate cap and loss
/// thinning, and returns the QoS context the observability module would
/// measure.
fn impair_session(s: &mut Session, rng: &mut StdRng) -> QoeInputs {
    let seed = rng.gen();
    let mut channel = Impairment::new(ImpairmentConfig::poor_network(seed));
    s.packets = channel.apply_all(&s.packets);

    // Rate cap & loss on the volumetric series (~4.8 Mbps ceiling).
    let cap_bytes_per_slot = (600_000.0 * (s.vol.width as f64 / 1e6)) as u64;
    let loss: f64 = rng.gen_range(0.02..0.06);
    for sample in &mut s.vol.samples {
        sample.down_bytes = sample.down_bytes.min(cap_bytes_per_slot);
        sample.down_pkts = ((sample.down_pkts as f64) * (1.0 - loss)) as u64;
    }
    QoeInputs {
        nominal_fps: s.settings.fps as f64,
        latency_ms: rng.gen_range(75.0..130.0),
        loss_rate: loss,
        settings_factor: s.settings.bitrate_factor(),
        // Heavy loss halves delivered frames.
        delivered_fps_ratio: rng.gen_range(0.35..0.55),
    }
}

/// Residual-capacity factor for an arrival hour: shared access segments
/// have the least headroom when the most neighbours stream. Peak-hour
/// arrivals see half the profile's nominal capacity; overnight arrivals a
/// modest surplus. Reuses the diurnal arrival weights so `--impair`
/// composes with the same schedule windows as `exp_diurnal`.
pub fn diurnal_congestion_factor(hour: usize) -> f64 {
    let max_w = DIURNAL_WEIGHTS
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let w = DIURNAL_WEIGHTS[hour % 24] / max_w; // 0..=1, 1 at peak
    (1.25 - 0.75 * w).clamp(0.5, 1.25)
}

/// QoE context of a clean (unimpaired) session — also the pre-onset
/// context of a session that degrades mid-stream.
fn clean_qoe(settings: &StreamSettings, rng: &mut StdRng) -> QoeInputs {
    QoeInputs {
        nominal_fps: settings.fps as f64,
        latency_ms: rng.gen_range(8.0..25.0),
        loss_rate: rng.gen_range(0.0..0.002),
        settings_factor: settings.bitrate_factor(),
        delivered_fps_ratio: 1.0,
    }
}

/// Result of routing a session through a named impairment profile.
struct ProfileImpairment {
    /// QoS context in effect from the session start.
    qoe_pre: QoeInputs,
    /// QoS context from the degradation onset on (same as `qoe_pre` when
    /// the profile applies from the first packet).
    qoe_post: QoeInputs,
    /// Degradation onset, microseconds from session start.
    onset: Option<u64>,
}

/// Degrades a fleet session through a named impairment profile: launch
/// packets through the profile's channel (correlated jitter, burst loss,
/// bufferbloat queue over its capacity schedule), the volumetric series
/// through capacity caps and loss thinning from the onset, and synthesizes
/// the gray-box QoS context the observability module would measure on such
/// a link. `capacity_scale` composes the profile with an external schedule
/// window (diurnal congestion); 1.0 is neutral.
fn impair_session_profile(
    profile: &ImpairmentProfile,
    s: &mut Session,
    rng: &mut StdRng,
    capacity_scale: f64,
) -> ProfileImpairment {
    let duration = s.vol.width * s.vol.samples.len() as u64;
    let seed: u64 = rng.gen();
    let mut plan = profile.instantiate(seed, duration);
    if capacity_scale != 1.0 {
        if let Some(b) = &mut plan.config.bottleneck {
            b.capacity = b.capacity.scaled(capacity_scale);
        }
    }
    if profile.is_degrading() {
        let mut channel = Impairment::new(plan.config.clone());
        s.packets = channel.apply_all(&s.packets);
        channel.degrade_vol(&mut s.vol, plan.onset.unwrap_or(0));
    }
    let (lat_lo, lat_hi) = profile.latency_ms;
    let (fps_lo, fps_hi) = profile.delivered_fps_ratio;
    let qoe_post = QoeInputs {
        nominal_fps: s.settings.fps as f64,
        latency_ms: rng.gen_range(lat_lo..lat_hi.max(lat_lo + f64::EPSILON)),
        loss_rate: profile.expected_loss_rate(),
        settings_factor: s.settings.bitrate_factor(),
        delivered_fps_ratio: rng.gen_range(fps_lo..fps_hi.max(fps_lo + f64::EPSILON)),
    };
    let qoe_pre = if plan.onset.is_some() {
        clean_qoe(&s.settings, rng)
    } else {
        qoe_post
    };
    ProfileImpairment {
        qoe_pre,
        qoe_post,
        onset: plan.onset,
    }
}

fn run_one(
    models: FleetModels<'_>,
    cfg: &FleetConfig,
    generator: &mut SessionGenerator,
    id: u64,
) -> SessionRecord {
    // Pin once per session: a concurrent publish into a live slot
    // redirects only sessions admitted after it.
    let (bundle, model_version) = models.source.pin();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(id));
    let kind = sample_kind(&mut rng, cfg);
    let settings = sample_lab_settings(&mut rng);
    let gameplay_secs = sample_duration_secs(&kind, cfg.duration_scale, &mut rng);
    let mut session = generator.generate(&SessionConfig {
        kind,
        settings,
        gameplay_secs,
        fidelity: Fidelity::LaunchOnly,
        seed: cfg.seed.wrapping_add(id.wrapping_mul(0x51ed_270b)),
    });

    // Impairment. Legacy mode (no named profile) keeps the historical RNG
    // draw order byte-for-byte so seeded fleets stay reproducible across
    // releases; profile mode samples the arrival first so diurnal profiles
    // can scale their capacity schedule by the hour's congestion.
    let impaired_draw = rng.gen_bool(cfg.impaired_fraction);
    let (qoe, qoe_post, onset, impaired, arrival) = match &cfg.impair_profile {
        Some(profile) => {
            let arrival = sample_arrival(cfg.deployment_days, &mut rng);
            let hour = ((arrival / 3_600_000_000) % 24) as usize;
            let scale = if profile.diurnal {
                diurnal_congestion_factor(hour)
            } else {
                1.0
            };
            if impaired_draw {
                let pi = impair_session_profile(profile, &mut session, &mut rng, scale);
                (
                    pi.qoe_pre,
                    Some(pi.qoe_post),
                    pi.onset,
                    profile.is_degrading(),
                    arrival,
                )
            } else {
                (clean_qoe(&settings, &mut rng), None, None, false, arrival)
            }
        }
        None => {
            let qoe = if impaired_draw {
                impair_session(&mut session, &mut rng)
            } else {
                clean_qoe(&settings, &mut rng)
            };
            let arrival = sample_arrival(cfg.deployment_days, &mut rng);
            (qoe, None, None, impaired_draw, arrival)
        }
    };

    // Ground truth aggregates.
    let truth_stage_secs: [f64; 4] = [Stage::Launch, Stage::Idle, Stage::Passive, Stage::Active]
        .map(|st| {
            session
                .timeline
                .spans
                .iter()
                .filter(|sp| sp.stage == st)
                .map(|sp| sp.duration() as f64 / 1e6)
                .sum()
        });
    let vol_1s: VolSeries = session.vol_at(MICROS_PER_SEC);
    let truth_mean_down_mbps = vol_1s.mean_down_mbps();
    // Demand proxy over *gameplay* slots only: low-demand titles stream
    // their launch animation above their gameplay peak, which would
    // otherwise inflate the learned expectation.
    let launch_slots = truth_stage_secs[0].ceil() as usize;
    let mut slot_mbps: Vec<f64> = (launch_slots..vol_1s.len())
        .map(|i| raw_features(&vol_1s.samples[i], 1.0)[0])
        .collect();
    slot_mbps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let peak_down_mbps = nettrace::stats::percentile_sorted(&slot_mbps, 0.95);

    // Run the pipeline. Flight-record against the session id (per-session
    // runs have no five-tuple hash), timestamped from the arrival instant.
    let mut analyzer = SessionAnalyzer::new(bundle, AnalyzerConfig::default(), qoe);
    analyzer.attach_journal(cgc_obs::journal::global_sink(), id, arrival);
    analyzer.attach_drift(
        cfg.drift
            .clone()
            .unwrap_or_else(cgc_obs::drift::global_sink),
    );
    match (onset, qoe_post) {
        // Mid-session degradation: feed slots one by one and swap the QoS
        // context at the first slot boundary past the onset, so the QoE
        // estimator sees the link change exactly when the channel did.
        (Some(onset_us), Some(post)) => {
            analyzer.ingest_title_window(&session.packets);
            let series = if session.vol.width == bundle.stage_slot {
                session.vol.clone()
            } else {
                session
                    .vol
                    .rebin((bundle.stage_slot / session.vol.width) as usize)
            };
            let mut swapped = false;
            for (i, s) in series.samples.iter().enumerate() {
                if !swapped && i as u64 * series.width >= onset_us {
                    analyzer.set_qoe(post);
                    swapped = true;
                }
                analyzer.push_slot(s);
            }
        }
        _ => analyzer.analyze(&session.packets, &session.vol),
    }
    let report = analyzer.finish();

    // Truth join: the fleet simulator withholds the ground-truth labels
    // ("server logs") from the pipeline, then streams (truth, predicted)
    // pairs into the quality hub here — per session for title/pattern,
    // per slot for stage. Free when no hub is installed.
    let quality = cfg
        .quality
        .clone()
        .unwrap_or_else(cgc_obs::quality::global_sink);
    if quality.is_enabled() {
        use cgc_obs::quality::{pattern_class, stage_class, title_class, ModelKind};
        quality.emit(
            ModelKind::Title,
            title_class(kind.known()),
            title_class(report.title.title),
        );
        if let Some((predicted, _)) = report.final_pattern {
            quality.emit(
                ModelKind::Pattern,
                pattern_class(kind.pattern()),
                pattern_class(predicted),
            );
        }
        for (i, &predicted) in report.stage_slots.iter().enumerate() {
            let mid = i as u64 * report.slot_width + report.slot_width / 2;
            if let Some(truth) = session.timeline.stage_at(mid) {
                quality.emit(ModelKind::Stage, stage_class(truth), stage_class(predicted));
            }
        }
    }

    // Shadow mirroring: replay the same session through the candidate
    // bundle (private pipeline metrics, so candidate inference never
    // pollutes the live counter families) and score live vs candidate
    // against the withheld ground truth.
    if let Some(shadow) = models.shadow {
        use cgc_obs::quality::{pattern_class, stage_class, title_class, ModelKind};
        let mut mirror = SessionAnalyzer::with_metrics(
            &shadow.bundle,
            AnalyzerConfig::default(),
            qoe,
            shadow.pipeline_metrics(),
        );
        mirror.analyze(&session.packets, &session.vol);
        let cand = mirror.finish();
        shadow.score.observe(
            ModelKind::Title,
            title_class(report.title.title),
            title_class(cand.title.title),
            Some(title_class(kind.known())),
        );
        // "No verdict yet" is its own (out-of-space) class: a candidate
        // that stops concluding still loses agreement and accuracy.
        let verdict_class = |p: Option<(ActivityPattern, f64)>| {
            p.map_or(u16::MAX, |(pattern, _)| pattern_class(pattern))
        };
        shadow.score.observe(
            ModelKind::Pattern,
            verdict_class(report.final_pattern),
            verdict_class(cand.final_pattern),
            Some(pattern_class(kind.pattern())),
        );
        for (i, (&live_stage, &cand_stage)) in
            report.stage_slots.iter().zip(&cand.stage_slots).enumerate()
        {
            let mid = i as u64 * report.slot_width + report.slot_width / 2;
            let truth = session.timeline.stage_at(mid).map(stage_class);
            shadow.score.observe(
                ModelKind::Stage,
                stage_class(live_stage),
                stage_class(cand_stage),
                truth,
            );
        }
    }

    SessionRecord {
        id,
        truth_kind: kind,
        truth_pattern: kind.pattern(),
        settings,
        truth_stage_secs,
        truth_mean_down_mbps,
        peak_down_mbps,
        impaired,
        impair_profile: cfg.impair_profile.as_ref().map(|p| p.name.to_string()),
        degradation_onset_us: onset,
        arrival,
        model_version,
        report,
    }
}

/// One telemetry progress report: `done`/`total` sessions plus the nonzero
/// counter increments in `delta` (one `name{labels} +n` clause per series,
/// in snapshot order). Gauges and histograms are left to the final
/// end-of-run snapshot; interval reporting is about rates.
pub fn fleet_progress_line(done: usize, total: usize, delta: &cgc_obs::Snapshot) -> String {
    let mut clauses: Vec<String> = Vec::new();
    for m in &delta.metrics {
        if let cgc_obs::MetricValue::Counter(v) = m.value {
            if v == 0 {
                continue;
            }
            let labels = if m.labels.is_empty() {
                String::new()
            } else {
                let inner: Vec<String> = m
                    .labels
                    .iter()
                    .map(|(k, val)| format!("{k}={val}"))
                    .collect();
                format!("{{{}}}", inner.join(","))
            };
            clauses.push(format!("{}{labels} +{v}", m.name));
        }
    }
    format!("[fleet {done}/{total}] {}", clauses.join(", "))
}

/// The reporter loop behind [`run_fleet`]'s `telemetry_every` heartbeat:
/// polls `done` until it reaches `total`, and each time `every` further
/// units complete, calls `emit` with the completion count and the
/// registry's counter *delta* since the previous report. Extracted (and
/// parameterized over `emit`) so the delta mechanics are testable without
/// racing a real fleet.
pub fn telemetry_reporter(
    registry: &cgc_obs::Registry,
    done: &std::sync::atomic::AtomicUsize,
    total: usize,
    every: usize,
    emit: &mut dyn FnMut(usize, cgc_obs::Snapshot),
) {
    telemetry_reporter_with_slo(registry, done, total, every, None, &mut |d, delta, _| {
        emit(d, delta)
    });
}

/// [`telemetry_reporter`] with an SLO verdict riding along: each report
/// boundary also feeds the full snapshot to `slo` (when given) and hands
/// the evaluated burn-rate report to `emit`, so the heartbeat log carries
/// ok/degraded/critical next to the counter deltas.
pub fn telemetry_reporter_with_slo(
    registry: &cgc_obs::Registry,
    done: &std::sync::atomic::AtomicUsize,
    total: usize,
    every: usize,
    slo: Option<&cgc_obs::SloHub>,
    emit: &mut dyn FnMut(usize, cgc_obs::Snapshot, Option<cgc_obs::SloReport>),
) {
    use std::sync::atomic::Ordering;
    if every == 0 {
        return;
    }
    let mut prev = registry.snapshot();
    let mut reported = 0usize;
    loop {
        // Acquire pairs with the workers' Release increment: a completion
        // count of d means those d sessions' counter updates are visible
        // in the snapshot taken below.
        let d = done.load(Ordering::Acquire);
        if d / every > reported {
            reported = d / every;
            // Drain any installed quality/drift globals first so the
            // snapshot below carries current accuracy and drift gauges
            // (the SLO bridge and the heartbeat line both read them).
            cgc_obs::quality::sync_global();
            cgc_obs::drift::sync_global();
            let cur = registry.snapshot();
            let report = slo.map(|hub| hub.observe_and_evaluate(&cur));
            emit(d, cur.delta(&prev), report);
            prev = cur;
        }
        if d >= total {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Runs the fleet in parallel, returning records ordered by session id.
///
/// With [`FleetConfig::telemetry_every`] set, a reporter thread rides along
/// and prints a [`fleet_progress_line`] delta of the global metrics
/// registry each time that many further sessions complete — the
/// deployment's heartbeat log.
///
/// With [`FleetConfig::cancel`] set, flipping the flag makes workers skip
/// the remaining sessions; the returned records then cover only the
/// sessions that completed (still in id order).
pub fn run_fleet(bundle: &ModelBundle, cfg: &FleetConfig) -> Vec<SessionRecord> {
    run_fleet_with_models(FleetModels::fixed(bundle), cfg)
}

/// [`run_fleet`] against an explicit model source: a hot-swappable
/// [`LiveModel`](cgc_lifecycle::LiveModel) slot keeps serving while a
/// publish lands mid-run (each session pins its version at start), and
/// an attached [`ShadowMirror`] A/B-scores a candidate on the same
/// traffic.
pub fn run_fleet_with_models(models: FleetModels<'_>, cfg: &FleetConfig) -> Vec<SessionRecord> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let workers = cfg.workers.max(1).min(cfg.n_sessions.max(1));
    let mut records: Vec<Option<SessionRecord>> = vec![None; cfg.n_sessions];
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots = parking_lot::Mutex::new(&mut records);
    let cancelled = || {
        cfg.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    };

    // Scoped workers: a panicking worker propagates when the scope joins.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut generator = SessionGenerator::new();
                loop {
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    if id >= cfg.n_sessions {
                        break;
                    }
                    if cancelled() {
                        // Keep claiming ids (so `done` still reaches the
                        // total and the telemetry reporter exits) but skip
                        // the work; the slot stays empty.
                        done.fetch_add(1, Ordering::Release);
                        continue;
                    }
                    let record = run_one(models, cfg, &mut generator, id as u64);
                    slots.lock()[id] = Some(record);
                    done.fetch_add(1, Ordering::Release);
                }
            });
        }
        if cfg.telemetry_every > 0 {
            // The reporter exits on its own once every session is done, so
            // the scope still joins promptly. Burn rates run on the wall
            // clock — the same axis the heartbeat intervals live on.
            scope.spawn(|| {
                let slo = cgc_obs::SloHub::real_time(cgc_obs::SloConfig::default());
                telemetry_reporter_with_slo(
                    cgc_obs::Registry::global(),
                    &done,
                    cfg.n_sessions,
                    cfg.telemetry_every,
                    Some(&slo),
                    &mut |d, delta, report| {
                        let line = fleet_progress_line(d, cfg.n_sessions, &delta);
                        match report {
                            Some(r) => eprintln!("{line} [slo {}]", r.health.name()),
                            None => eprintln!("{line}"),
                        }
                    },
                );
            });
        }
    });

    // Empty slots only exist after a cancellation; flatten keeps the
    // completed records in id order either way.
    records.into_iter().flatten().collect()
}

/// Tap-fleet configuration: many subscribers' sessions interleaved on one
/// simulated ISP link, demultiplexed by the sharded tap front end.
#[derive(Debug, Clone, Copy)]
pub struct TapFleetConfig {
    /// Number of concurrent subscriber sessions on the tap.
    pub n_sessions: usize,
    /// Master seed.
    pub seed: u64,
    /// Gameplay seconds per session.
    pub gameplay_secs: f64,
    /// Session starts are staggered by this many microseconds.
    pub stagger: u64,
    /// Worker shards of the front end.
    pub shards: usize,
}

impl Default for TapFleetConfig {
    fn default() -> Self {
        TapFleetConfig {
            n_sessions: 8,
            seed: 20241201,
            gameplay_secs: 30.0,
            stagger: 2_000_000,
            shards: 4,
        }
    }
}

/// Everything a tap-fleet run produced: session reports, the metrics
/// snapshot of the run's private registry, and the flight-recorder
/// decision timelines (one per flow, admission order).
#[derive(Debug)]
pub struct TapFleetRun {
    /// Per-session reports, sorted by flow start.
    pub sessions: Vec<cgc_core::MonitoredSession>,
    /// Final metrics snapshot of the run's private registry
    /// (`cgc_monitor_*`, `cgc_shard_*`, `cgc_pipeline_*`, `cgc_qoe_*`,
    /// `cgc_journal_*` series).
    pub snapshot: cgc_obs::Snapshot,
    /// Per-flow decision timelines from the run's journal.
    pub timelines: Vec<cgc_obs::FlowTimeline>,
}

impl TapFleetRun {
    /// The timeline recorded for `tuple`'s flow, if any.
    pub fn timeline_for(
        &self,
        tuple: &nettrace::packet::FiveTuple,
    ) -> Option<&cgc_obs::FlowTimeline> {
        let id = tuple.flow_id();
        self.timelines.iter().find(|t| t.flow == id)
    }
}

/// Builds the interleaved tap feed [`run_tap_fleet`] analyzes:
/// `n_sessions` popularity-sampled sessions staggered on one link, each
/// packet as a `(ts, wire_tuple, payload_len)` tap record, sorted by
/// timestamp. Deterministic in `cfg` — the replay and offline paths call
/// this with the same config to analyze the *same* traffic.
pub fn build_tap_feed(cfg: &TapFleetConfig) -> Vec<cgc_core::shard::TapRecord> {
    use nettrace::packet::Direction;

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7a9_0000);
    let mut generator = SessionGenerator::new();
    let mut feed: Vec<cgc_core::shard::TapRecord> = Vec::new();
    for i in 0..cfg.n_sessions as u64 {
        let fleet_cfg = FleetConfig::default();
        let kind = sample_kind(&mut rng, &fleet_cfg);
        let session = generator.generate(&SessionConfig {
            kind,
            settings: sample_lab_settings(&mut rng),
            gameplay_secs: cfg.gameplay_secs,
            fidelity: Fidelity::FullPackets,
            seed: cfg.seed.wrapping_add(i.wrapping_mul(0x51ed_270b)),
        });
        let offset = i * cfg.stagger;
        for p in &session.packets {
            let tuple = match p.dir {
                Direction::Downstream => session.tuple,
                Direction::Upstream => session.tuple.reversed(),
            };
            feed.push((p.ts + offset, tuple, p.payload_len));
        }
    }
    feed.sort_by_key(|(ts, _, _)| *ts);
    feed
}

/// Interleaves `n_sessions` popularity-sampled sessions on one tap and runs
/// the feed through a [`ShardedTapMonitor`], returning a [`TapFleetRun`]:
/// per-session reports (sorted by flow start), a metrics snapshot, and
/// per-flow decision timelines, all from a registry + journal private to
/// this run — the deployment analogue of [`run_fleet`], exercised through
/// the packet path instead of per-session analyzers.
///
/// [`ShardedTapMonitor`]: cgc_core::ShardedTapMonitor
pub fn run_tap_fleet(bundle: &std::sync::Arc<ModelBundle>, cfg: &TapFleetConfig) -> TapFleetRun {
    let feed = build_tap_feed(cfg);

    // A private registry + journal so concurrent runs (tests, notably)
    // can make exact assertions against their own counters and timelines.
    let registry = cgc_obs::Registry::new();
    let (sink, journal) = cgc_obs::Journal::new(cgc_obs::JournalConfig::default(), &registry);
    let mut monitor = cgc_core::ShardedTapMonitor::with_registry_and_journal(
        std::sync::Arc::clone(bundle),
        cgc_core::ShardedMonitorConfig::with_shards(cfg.shards),
        &registry,
        sink,
    );
    for (ts, tuple, len) in &feed {
        monitor.ingest(*ts, tuple, *len);
    }
    let (mut sessions, _stats) = monitor.finish_all();
    sessions.sort_by_key(|m| m.started_at);
    let timelines = journal.into_timelines();
    TapFleetRun {
        sessions,
        snapshot: registry.snapshot(),
        timelines,
    }
}

/// Knobs of a paced tap-fleet replay beyond the feed itself.
#[derive(Debug, Clone, Default)]
pub struct TapReplayOptions {
    /// Pacing of the recorded timeline (default: real time, `pace = 1.0`).
    pub replay: cgc_ingest::ReplayConfig,
    /// Queue sizing and backpressure policy (the engine clock field is
    /// overwritten with the replay clock).
    pub ingest: cgc_ingest::IngestConfig,
    /// K-way merge tolerance and lookahead when replaying several input
    /// feeds at once (ignored with a single source, where the merge is
    /// a pass-through).
    pub merge: cgc_ingest::MergeConfig,
    /// Expire idle flows every this many µs of replay-clock time; `None`
    /// (the default) finalizes everything at shutdown instead, keeping
    /// the run byte-identical to the offline batch path.
    pub idle_check: Option<u64>,
    /// Span tracing for the run: `Some(config)` installs a
    /// [`TraceCollector`](cgc_obs::TraceCollector) on the run's private
    /// registry and threads its sink through replay → merge → queues →
    /// router → shards → pipeline, so [`TapReplayRun::traces`] comes back
    /// with one causal timeline per sampled flow. `None` (the default)
    /// keeps every stage's hot path span-free.
    pub trace: Option<cgc_obs::TraceConfig>,
    /// Cooperative cancellation flag (a Ctrl-C handler sets it); the
    /// replay stops between records and the engine drains gracefully.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// A [`TapFleetRun`] produced through the live ingestion path, plus the
/// replay, merge and queue accounting of the run.
#[derive(Debug)]
pub struct TapReplayRun {
    /// The session reports, metrics snapshot and decision timelines —
    /// same shape as the offline [`run_tap_fleet`] output.
    pub fleet: TapFleetRun,
    /// What the pacing engine released (and whether it was cancelled).
    pub replay: cgc_ingest::ReplayStats,
    /// Per-source merge accounting: how many records each input feed
    /// contributed and how many arrived beyond the reordering tolerance
    /// (still delivered). A single-feed replay shows one source with
    /// zero late.
    pub merge: cgc_ingest::MergeStats,
    /// Records admitted into the ingest queues.
    pub enqueued: u64,
    /// Records handed from the queues to the monitor.
    pub handed_off: u64,
    /// Records lost to backpressure (zero under the `block` policy).
    pub dropped: u64,
    /// Per-flow span timelines, populated when
    /// [`TapReplayOptions::trace`] was set (empty otherwise): the full
    /// ingest → merge → queue → router → shard → slot → classifier →
    /// verdict causal chain of every sampled flow.
    pub traces: Vec<cgc_obs::TraceTimeline>,
}

impl TapReplayRun {
    /// The span timeline recorded for `tuple`'s flow, if any.
    pub fn trace_for(
        &self,
        tuple: &nettrace::packet::FiveTuple,
    ) -> Option<&cgc_obs::TraceTimeline> {
        let id = tuple.flow_id();
        self.traces.iter().find(|t| t.flow == id)
    }
}

/// Runs the same tap fleet as [`run_tap_fleet`], but through the live
/// ingestion path: the feed is replayed against `clock` at the recorded
/// timestamps (scaled by `opts.replay.pace`), flows through bounded
/// ingest queues with backpressure, and is drained by the engine's
/// router into the sharded monitor. Shutdown is graceful — producers
/// quiesce, queues drain dry, and every still-open flow gets its final
/// session verdict.
///
/// With a [`VirtualClock`](nettrace::VirtualClock) this completes
/// instantly and deterministically; with a real clock it takes
/// `capture_duration / pace` of wall time.
pub fn run_tap_fleet_replay(
    bundle: &std::sync::Arc<ModelBundle>,
    cfg: &TapFleetConfig,
    clock: nettrace::clock::SharedClock,
    opts: TapReplayOptions,
) -> TapReplayRun {
    let feed = build_tap_feed(cfg);
    run_tap_feed_replay(
        bundle,
        cfg.shards,
        vec![cgc_ingest::MergeSource::new("feed", feed)],
        clock,
        opts,
    )
}

/// Replays one or more independently captured tap feeds — each with its
/// own label and clock-skew offset — through the live ingestion path.
///
/// The sources are first fused by the k-way merge ([`cgc_ingest::merge`])
/// into one globally time-ordered stream on the shared clock axis, then
/// paced, queued and drained into the sharded monitor exactly like
/// [`run_tap_fleet_replay`]. Per-source contribution and lateness
/// counters (`cgc_ingest_merge_records_total{source=…}`,
/// `cgc_ingest_merge_late_total{source=…}`) register on the run's
/// private registry and surface in [`TapReplayRun::merge`].
pub fn run_tap_feed_replay(
    bundle: &std::sync::Arc<ModelBundle>,
    shards: usize,
    sources: Vec<cgc_ingest::MergeSource>,
    clock: nettrace::clock::SharedClock,
    opts: TapReplayOptions,
) -> TapReplayRun {
    use cgc_ingest::{IngestEngine, MonitorSink};
    use cgc_obs::TraceStage;

    let registry = cgc_obs::Registry::new();
    let (trace_sink, trace_collector) = match opts.trace {
        Some(config) => {
            let (sink, collector) = cgc_obs::TraceCollector::new(config, &registry);
            (sink, Some(collector))
        }
        None => (cgc_obs::TraceSink::disabled(), None),
    };
    let (feed, merge_stats) = cgc_ingest::merge_sources(sources, &opts.merge, Some(&registry));
    let (sink, journal) = cgc_obs::Journal::new(cgc_obs::JournalConfig::default(), &registry);
    let monitor = cgc_core::ShardedTapMonitor::with_observability(
        std::sync::Arc::clone(bundle),
        cgc_core::ShardedMonitorConfig::with_shards(shards),
        &registry,
        sink,
        trace_sink.clone(),
    );
    let monitor_sink = match opts.idle_check {
        Some(every) => MonitorSink::with_idle_checks(monitor, every),
        None => MonitorSink::new(monitor),
    };
    let mut ingest_cfg = opts.ingest;
    ingest_cfg.clock = Some(std::sync::Arc::clone(&clock));
    ingest_cfg.trace = trace_sink.clone();
    let engine = IngestEngine::start(monitor_sink, ingest_cfg, &registry);
    let producer = engine.producer();
    let metrics = engine.metrics().clone();
    let replay_stats = cgc_ingest::replay(
        &feed,
        &*clock,
        &opts.replay,
        Some(&metrics),
        opts.cancel.as_deref(),
        |record| {
            if trace_sink.is_enabled() {
                // The merge fused the stream eagerly up front, but its
                // spans are stamped here, per record at release time:
                // stamping the whole feed before replay would flood the
                // span ring ahead of the first drain and drop every
                // later stage's spans at pace 0.
                let flow = record.1.flow_id();
                trace_sink.record(flow, 0, TraceStage::Merge, record.0, 0);
                trace_sink.record(flow, 0, TraceStage::Ingest, record.0, 0);
            }
            producer.push_record(record);
        },
    );
    drop(producer);
    let run = engine.shutdown();
    let (mut sessions, _stats) = run.output;
    sessions.sort_by_key(|m| m.started_at);
    let timelines = journal.into_timelines();
    let traces = trace_collector
        .map(|mut collector| {
            collector.drain();
            collector.into_timelines()
        })
        .unwrap_or_default();
    TapReplayRun {
        fleet: TapFleetRun {
            sessions,
            snapshot: registry.snapshot(),
            timelines,
        },
        replay: replay_stats,
        merge: merge_stats,
        enqueued: run.enqueued,
        handed_off: run.handed_off,
        dropped: run.dropped,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_bundle, TrainConfig};

    fn quick_fleet(n: usize) -> (ModelBundle, Vec<SessionRecord>) {
        let bundle = train_bundle(&TrainConfig::quick());
        let cfg = FleetConfig {
            n_sessions: n,
            duration_scale: 0.06,
            workers: 4,
            ..Default::default()
        };
        let records = run_fleet(&bundle, &cfg);
        (bundle, records)
    }

    #[test]
    fn fleet_produces_ordered_complete_records() {
        let (_, records) = quick_fleet(24);
        assert_eq!(records.len(), 24);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(!r.report.stage_slots.is_empty());
            assert!(r.truth_mean_down_mbps > 0.0);
        }
    }

    #[test]
    fn fleet_is_deterministic_across_worker_counts() {
        let bundle = train_bundle(&TrainConfig::quick());
        let mk = |workers: usize| {
            run_fleet(
                &bundle,
                &FleetConfig {
                    n_sessions: 10,
                    duration_scale: 0.05,
                    workers,
                    ..Default::default()
                },
            )
        };
        let a = mk(1);
        let b = mk(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.truth_kind, y.truth_kind);
            assert_eq!(x.report.stage_slots, y.report.stage_slots);
            assert_eq!(x.report.title, y.report.title);
        }
    }

    #[test]
    fn titles_are_mostly_classified_correctly() {
        let (_, records) = quick_fleet(40);
        let known: Vec<&SessionRecord> = records
            .iter()
            .filter(|r| r.truth_kind.known().is_some() && !r.impaired)
            .collect();
        let correct = known.iter().filter(|r| r.title_correct()).count();
        let acc = correct as f64 / known.len().max(1) as f64;
        assert!(acc > 0.7, "fleet title accuracy {acc}");
    }

    #[test]
    fn clean_profile_fleet_is_indistinguishable_from_unimpaired() {
        let bundle = train_bundle(&TrainConfig::quick());
        let cfg = FleetConfig {
            n_sessions: 10,
            duration_scale: 0.05,
            workers: 4,
            impaired_fraction: 1.0,
            impair_profile: ImpairmentProfile::by_name("clean"),
            ..Default::default()
        };
        let records = run_fleet(&bundle, &cfg);
        let baseline = run_fleet(
            &bundle,
            &FleetConfig {
                impaired_fraction: 0.0,
                impair_profile: None,
                ..cfg
            },
        );
        for (r, b) in records.iter().zip(&baseline) {
            assert_eq!(r.impair_profile.as_deref(), Some("clean"));
            assert!(!r.impaired, "clean profile must not flag sessions");
            assert_eq!(r.degradation_onset_us, None);
            // Sessions are generated from an id-derived seed, and the clean
            // profile's QoS draws land in the same always-Good latency/loss
            // bands as the unimpaired path, so verdicts must agree exactly.
            assert_eq!(r.report.objective_qoe, b.report.objective_qoe);
            assert_eq!(r.report.title, b.report.title);
            assert_eq!(r.report.stage_slots, b.report.stage_slots);
        }
    }

    #[test]
    fn degrading_profile_fleet_records_onset_and_flips_qoe() {
        use cgc_domain::QoeLevel;
        let bundle = train_bundle(&TrainConfig::quick());
        let cfg = FleetConfig {
            n_sessions: 10,
            duration_scale: 0.05,
            workers: 4,
            impaired_fraction: 1.0,
            impair_profile: ImpairmentProfile::by_name("lte-handover"),
            ..Default::default()
        };
        let records = run_fleet(&bundle, &cfg);
        let mut pre = [0u64; 2]; // [not-good, total] before onset
        let mut post = [0u64; 2];
        for r in &records {
            assert!(r.impaired);
            assert_eq!(r.impair_profile.as_deref(), Some("lte-handover"));
            let onset = r.degradation_onset_us.expect("lte-handover has an onset");
            for (i, &(obj, _)) in r.report.qoe_slots.iter().enumerate() {
                let bucket = if (i as u64) * r.report.slot_width < onset {
                    &mut pre
                } else {
                    &mut post
                };
                bucket[0] += u64::from(obj != QoeLevel::Good);
                bucket[1] += 1;
            }
        }
        assert!(pre[1] > 0 && post[1] > 0, "slots on both sides of onset");
        let pre_bad = pre[0] as f64 / pre[1] as f64;
        let post_bad = post[0] as f64 / post[1] as f64;
        assert!(
            post_bad > pre_bad,
            "QoE must be worse after onset (pre {pre_bad:.2}, post {post_bad:.2})"
        );
    }

    #[test]
    fn fleet_truth_join_uses_injected_quality_sink() {
        use cgc_obs::quality::{QualityConfig, QualityHub};
        let bundle = train_bundle(&TrainConfig::quick());
        let registry = cgc_obs::Registry::new();
        let (sink, mut hub) = QualityHub::new(
            QualityConfig {
                profile: Some("lossy-wifi"),
                ..QualityConfig::default()
            },
            &registry,
        );
        let cfg = FleetConfig {
            n_sessions: 6,
            duration_scale: 0.05,
            workers: 2,
            impaired_fraction: 1.0,
            impair_profile: ImpairmentProfile::by_name("lossy-wifi"),
            quality: Some(sink),
            ..Default::default()
        };
        let records = run_fleet(&bundle, &cfg);
        assert_eq!(records.len(), 6);
        assert!(hub.drain_and_sync() > 0, "injected sink received samples");
        let snap = registry.snapshot();
        let labeled = snap.metrics.iter().any(|m| {
            m.name == "cgc_quality_accuracy_pct"
                && m.labels
                    .iter()
                    .any(|(k, v)| k == "profile" && v == "lossy-wifi")
        });
        assert!(labeled, "profile label present on quality series");
    }

    #[test]
    fn tap_fleet_demultiplexes_every_session() {
        let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
        let cfg = TapFleetConfig {
            n_sessions: 6,
            gameplay_secs: 15.0,
            shards: 3,
            ..Default::default()
        };
        let run = run_tap_fleet(&bundle, &cfg);
        let (sessions, snapshot) = (&run.sessions, &run.snapshot);
        assert_eq!(sessions.len(), 6);
        assert!(sessions.iter().all(|m| m.confirmed));
        assert_eq!(
            snapshot.counter("cgc_monitor_finalized_flows_total"),
            Some(6)
        );
        assert_eq!(
            snapshot.counter("cgc_monitor_ignored_packets_total"),
            Some(0)
        );
        let ingested = snapshot
            .counter("cgc_monitor_ingested_packets_total")
            .unwrap();
        assert!(ingested > 0);
        // One queue-depth gauge per worker shard.
        let depth_series = snapshot
            .metrics
            .iter()
            .filter(|m| m.name == "cgc_shard_queue_depth")
            .count();
        assert_eq!(depth_series, 3);
        // The packet path drove the full pipeline: inference counters and
        // latency histograms populated alongside the monitor's.
        assert!(snapshot.counter("cgc_pipeline_slots_total").unwrap() > 0);
        assert_eq!(
            snapshot.counter("cgc_pipeline_title_decisions_total"),
            Some(6)
        );
        assert!(snapshot.histogram("cgc_monitor_batch_ns").unwrap().count > 0);
        assert!(snapshot.counter("cgc_qoe_slots_total").unwrap() > 0);
        // The flight recorder rode along: one timeline per session, each
        // bracketed by admission and closure, nothing dropped.
        assert_eq!(run.timelines.len(), 6);
        for m in sessions {
            let tl = run.timeline_for(&m.tuple).expect("timeline per session");
            assert_eq!(tl.first_event(), "flow_admitted");
            assert_eq!(tl.last_event(), "flow_closed");
        }
        assert_eq!(
            snapshot.counter("cgc_journal_dropped_events_total"),
            Some(0)
        );
        let recorded = snapshot.counter("cgc_journal_events_total").unwrap();
        let in_timelines: u64 = run.timelines.iter().map(|t| t.events.len() as u64).sum();
        assert_eq!(recorded, in_timelines);
    }

    #[test]
    fn tap_fleet_replay_on_virtual_clock_matches_offline() {
        let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
        let cfg = TapFleetConfig {
            n_sessions: 4,
            gameplay_secs: 12.0,
            shards: 2,
            ..Default::default()
        };
        let offline = run_tap_fleet(&bundle, &cfg);
        let clock = nettrace::VirtualClock::new();
        let live = run_tap_fleet_replay(&bundle, &cfg, clock.shared(), TapReplayOptions::default());
        assert_eq!(live.dropped, 0, "block policy replay is lossless");
        assert!(!live.replay.cancelled);
        assert_eq!(live.enqueued, live.handed_off);
        assert_eq!(live.replay.released, live.enqueued);
        // Full byte-level journal equivalence lives in tests/e2e_ingest.rs;
        // here: same sessions, same reports, through the live path.
        assert_eq!(live.fleet.sessions.len(), offline.sessions.len());
        for (a, b) in offline.sessions.iter().zip(&live.fleet.sessions) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
    }

    #[test]
    fn replay_traces_reconstruct_full_causal_chains() {
        use cgc_obs::TraceStage;

        let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
        let cfg = TapFleetConfig {
            n_sessions: 3,
            gameplay_secs: 12.0,
            shards: 2,
            ..Default::default()
        };
        let opts = TapReplayOptions {
            trace: Some(cgc_obs::TraceConfig {
                // Per-record stages (ingest/merge/queue/router) hold spans
                // in the ring until the end-of-run drain; size for it.
                ring_capacity: 1 << 20,
                max_spans_per_flow: 1 << 17,
                ..Default::default()
            }),
            ..Default::default()
        };
        let run = run_tap_fleet_replay(&bundle, &cfg, nettrace::VirtualClock::new().shared(), opts);
        assert_eq!(run.fleet.sessions.len(), 3);
        assert_eq!(run.traces.len(), 3, "one timeline per sampled flow");
        assert_eq!(
            run.fleet.snapshot.counter("cgc_trace_dropped_spans_total"),
            Some(0)
        );
        for m in &run.fleet.sessions {
            let tl = run.trace_for(&m.tuple).expect("trace per session");
            assert!(!tl.truncated);
            assert_eq!(
                tl.stages(),
                vec![
                    TraceStage::Ingest,
                    TraceStage::Merge,
                    TraceStage::Queue,
                    TraceStage::Router,
                    TraceStage::Shard,
                    TraceStage::Slot,
                    TraceStage::Classifier,
                    TraceStage::Verdict,
                ],
                "every pipeline stage left a span"
            );
            let chain = tl.causal_chain();
            assert_eq!(chain.first().unwrap().stage, TraceStage::Ingest);
            assert_eq!(chain.last().unwrap().stage, TraceStage::Verdict);
            // Trace flow ids are journal flow ids: the decision timeline
            // and the span timeline key to the same normalized hash.
            assert!(run.fleet.timeline_for(&m.tuple).is_some());
        }
        // Without the option, the same run keeps every stage span-free.
        let quiet = run_tap_fleet_replay(
            &bundle,
            &cfg,
            nettrace::VirtualClock::new().shared(),
            TapReplayOptions::default(),
        );
        assert!(quiet.traces.is_empty());
        assert_eq!(quiet.fleet.snapshot.counter("cgc_trace_spans_total"), None);
    }

    #[test]
    fn telemetry_reporter_with_slo_reports_health_each_boundary() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let registry = cgc_obs::Registry::new();
        let done = AtomicUsize::new(0);
        // Virtual SLO clock stepped manually so burn windows are exact.
        let now = std::sync::Arc::new(AtomicUsize::new(1));
        let now_for_hub = std::sync::Arc::clone(&now);
        let hub = cgc_obs::SloHub::new(cgc_obs::SloConfig::default(), move || {
            now_for_hub.load(Ordering::Relaxed) as u64
        });
        let dropped = registry.counter("cgc_ingest_dropped_total", "");
        let accepted = registry.counter("cgc_ingest_enqueued_total", "");
        let reports: Mutex<Vec<(usize, Option<cgc_obs::SloReport>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            scope.spawn(|| {
                telemetry_reporter_with_slo(
                    &registry,
                    &done,
                    4,
                    2,
                    Some(&hub),
                    &mut |d, _delta, r| {
                        reports.lock().unwrap().push((d, r));
                    },
                );
            });
            accepted.add(1000);
            done.fetch_add(2, Ordering::Release);
            while reports.lock().unwrap().is_empty() {
                std::thread::yield_now();
            }
            // A drop burst between heartbeats: 20% of new records lost.
            now.store(60_000_000, Ordering::Relaxed);
            accepted.add(1000);
            dropped.add(250);
            done.fetch_add(2, Ordering::Release);
        });

        let reports = reports.into_inner().unwrap();
        assert_eq!(reports.len(), 2);
        let first = reports[0].1.as_ref().expect("slo report rides along");
        assert_eq!(first.health, cgc_obs::Health::Ok);
        let second = reports[1].1.as_ref().expect("slo report rides along");
        assert_ne!(
            second.health,
            cgc_obs::Health::Ok,
            "drop burst degrades the heartbeat verdict: {:?}",
            second
        );
        assert!(second
            .objectives
            .iter()
            .any(|o| o.kind == cgc_obs::ObjectiveKind::DropRatio && o.burn_fast >= 1.0));
    }

    #[test]
    fn split_feed_replay_matches_single_feed_replay() {
        let bundle = std::sync::Arc::new(train_bundle(&TrainConfig::quick()));
        let cfg = TapFleetConfig {
            n_sessions: 3,
            gameplay_secs: 10.0,
            shards: 2,
            ..Default::default()
        };
        let single = run_tap_fleet_replay(
            &bundle,
            &cfg,
            nettrace::VirtualClock::new().shared(),
            TapReplayOptions::default(),
        );
        assert_eq!(single.merge.labels, ["feed"]);
        assert_eq!(single.merge.late_total(), 0, "sorted feed is never late");

        let feed = build_tap_feed(&cfg);
        let sources: Vec<cgc_ingest::MergeSource> = cgc_ingest::split_round_robin(&feed, 3)
            .into_iter()
            .enumerate()
            .map(|(i, part)| cgc_ingest::MergeSource::new(format!("tap{i}"), part))
            .collect();
        let merged = run_tap_feed_replay(
            &bundle,
            cfg.shards,
            sources,
            nettrace::VirtualClock::new().shared(),
            TapReplayOptions::default(),
        );
        assert_eq!(merged.merge.labels, ["tap0", "tap1", "tap2"]);
        assert_eq!(merged.merge.merged_total(), feed.len() as u64);
        assert_eq!(merged.merge.late_total(), 0);
        assert_eq!(merged.dropped, 0);
        assert_eq!(merged.fleet.sessions.len(), single.fleet.sessions.len());
        for (a, b) in single.fleet.sessions.iter().zip(&merged.fleet.sessions) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap()
            );
        }
        // The per-source counters registered on the run's registry.
        assert_eq!(
            merged
                .fleet
                .snapshot
                .counter("cgc_ingest_merge_records_total"),
            Some(feed.len() as u64)
        );
        assert_eq!(
            merged.fleet.snapshot.counter("cgc_ingest_merge_late_total"),
            Some(0)
        );
    }

    #[test]
    fn cancelled_fleet_returns_partial_records_in_order() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let bundle = train_bundle(&TrainConfig::quick());
        let cancel = std::sync::Arc::new(AtomicBool::new(true)); // pre-cancelled
        let records = run_fleet(
            &bundle,
            &FleetConfig {
                n_sessions: 8,
                duration_scale: 0.05,
                workers: 2,
                cancel: Some(std::sync::Arc::clone(&cancel)),
                ..Default::default()
            },
        );
        assert!(records.is_empty(), "pre-cancelled run completes nothing");

        cancel.store(false, Ordering::Relaxed);
        let records = run_fleet(
            &bundle,
            &FleetConfig {
                n_sessions: 4,
                duration_scale: 0.05,
                workers: 2,
                cancel: Some(cancel),
                ..Default::default()
            },
        );
        assert_eq!(records.len(), 4, "uncancelled flag changes nothing");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn fleet_progress_line_reports_nonzero_counter_deltas() {
        let r = cgc_obs::Registry::new();
        let a = r.counter("a_total", "");
        let _quiet = r.counter("quiet_total", "");
        let labelled = r.counter_with("b_total", "", &[("title", "dota_2")]);
        let before = r.snapshot();
        a.add(5);
        labelled.add(2);
        let line = fleet_progress_line(3, 10, &r.snapshot().delta(&before));
        assert!(line.starts_with("[fleet 3/10]"));
        assert!(line.contains("a_total +5"));
        assert!(line.contains("b_total{title=dota_2} +2"));
        assert!(!line.contains("quiet_total"));
    }

    #[test]
    fn telemetry_reporter_emits_exact_deltas_that_sum_to_final() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        // Deterministic harness: the "worker" adds to a counter, bumps
        // `done` by `every`, then waits for the reporter to emit before
        // the next batch — so every report boundary is observed exactly.
        let registry = cgc_obs::Registry::new();
        let counter = registry.counter("work_total", "units of work");
        let done = AtomicUsize::new(0);
        let reports: Mutex<Vec<(usize, cgc_obs::Snapshot)>> = Mutex::new(Vec::new());
        const EVERY: usize = 2;
        const BATCHES: usize = 5;
        let before = registry.snapshot();

        std::thread::scope(|scope| {
            scope.spawn(|| {
                telemetry_reporter(&registry, &done, EVERY * BATCHES, EVERY, &mut |d, delta| {
                    reports.lock().unwrap().push((d, delta));
                });
            });
            for batch in 0..BATCHES {
                counter.add(10 + batch as u64);
                done.fetch_add(EVERY, Ordering::Release);
                while reports.lock().unwrap().len() <= batch {
                    std::thread::yield_now();
                }
            }
        });

        let reports = reports.into_inner().unwrap();
        assert_eq!(reports.len(), BATCHES, "one report per `every` boundary");
        for (batch, (d, delta)) in reports.iter().enumerate() {
            assert_eq!(*d, (batch + 1) * EVERY);
            assert_eq!(
                delta.counter("work_total"),
                Some(10 + batch as u64),
                "delta of report {batch} is exactly that batch's increment"
            );
        }
        // Deltas sum back to the final snapshot's total.
        let summed: u64 = reports
            .iter()
            .filter_map(|(_, delta)| delta.counter("work_total"))
            .sum();
        let final_delta = registry.snapshot().delta(&before);
        assert_eq!(Some(summed), final_delta.counter("work_total"));
        assert_eq!(summed, counter.get());
    }

    #[test]
    fn telemetry_reporter_zero_interval_is_inert() {
        let registry = cgc_obs::Registry::new();
        let done = std::sync::atomic::AtomicUsize::new(5);
        let mut calls = 0usize;
        telemetry_reporter(&registry, &done, 5, 0, &mut |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn fleet_telemetry_reporter_does_not_disturb_results() {
        let bundle = train_bundle(&TrainConfig::quick());
        let cfg = FleetConfig {
            n_sessions: 6,
            duration_scale: 0.05,
            workers: 2,
            telemetry_every: 2,
            ..Default::default()
        };
        let records = run_fleet(&bundle, &cfg);
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn impaired_sessions_exist_and_look_degraded() {
        let bundle = train_bundle(&TrainConfig::quick());
        let records = run_fleet(
            &bundle,
            &FleetConfig {
                n_sessions: 40,
                duration_scale: 0.05,
                impaired_fraction: 0.5,
                workers: 4,
                ..Default::default()
            },
        );
        let impaired: Vec<&SessionRecord> = records.iter().filter(|r| r.impaired).collect();
        assert!(impaired.len() > 5);
        // Impaired sessions should skew to worse effective QoE than clean.
        let bad_frac = |rs: &[&SessionRecord]| {
            rs.iter()
                .filter(|r| r.report.effective_qoe == cgc_domain::QoeLevel::Bad)
                .count() as f64
                / rs.len().max(1) as f64
        };
        let clean: Vec<&SessionRecord> = records.iter().filter(|r| !r.impaired).collect();
        assert!(
            bad_frac(&impaired) > bad_frac(&clean),
            "impaired {} vs clean {}",
            bad_frac(&impaired),
            bad_frac(&clean)
        );
    }
}
