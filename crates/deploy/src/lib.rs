//! # cgc-deploy — training and ISP-scale deployment simulation
//!
//! The operational half of the reproduction:
//!
//! * [`train`] — builds labeled datasets from the `gamesim` traffic
//!   generator (launch attributes per title, per-slot stage features,
//!   per-session transition features) and trains a complete
//!   [`cgc_core::ModelBundle`], including the variation-based augmentation
//!   of §4.4.
//! * [`fleet`] — drives hundreds to thousands of synthetic sessions
//!   (popularity-weighted titles, realistic durations, a long tail of
//!   unknown titles, a slice of network-impaired subscribers) through the
//!   real-time pipeline in parallel, producing per-session records that
//!   pair ground truth with classifier output — the analogue of the
//!   paper's three-month deployment joined against server logs.
//! * [`aggregate`] — the §5 analyses over those records: per-title player
//!   activity profiles (Fig. 11), bandwidth demand distributions
//!   (Fig. 12), objective vs effective QoE corrections (Fig. 13), field
//!   validation of title classification, and the measurement-driven
//!   calibration table.
//! * [`lifecycle`] — the model lifecycle loop: the drift alarm feeds a
//!   shadow retrain off journaled evidence, candidates ride A/B shadow
//!   on live traffic, and [`lifecycle::LifecyclePilot`] promotes (or
//!   rolls back) through a zero-stall hot-swap slot.
//! * [`report`] — text-table and JSON rendering shared by the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod aggregate;
pub mod fleet;
pub mod lifecycle;
pub mod report;
pub mod train;

pub use fleet::{
    build_tap_feed, run_fleet, run_fleet_with_models, run_tap_feed_replay, run_tap_fleet,
    run_tap_fleet_replay, telemetry_reporter, FleetConfig, FleetModels, SessionRecord,
    TapFleetConfig, TapFleetRun, TapReplayOptions, TapReplayRun,
};
pub use lifecycle::{LifecyclePilot, PromotePolicy, ShadowMirror};
pub use train::{train_bundle, TrainConfig};
