//! Text-table and JSON rendering shared by the experiment binaries.

use serde::Serialize;
use std::io;
use std::path::Path;

/// Renders rows as an aligned text table. `header` and every row must have
/// the same number of columns.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Writes a serializable result as pretty JSON under `results/<name>.json`
/// (creating the directory), returning the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The results directory: `$GAMESCOPE_RESULTS` or `results/` under the
/// current directory.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("GAMESCOPE_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Renders a sharded-monitor observability snapshot as an aligned table:
/// one row per worker shard plus a totals row — what an operator's
/// dashboard would show for the tap front end.
pub fn monitor_stats_table(stats: &cgc_core::MonitorStats) -> String {
    let row = |name: String, s: &cgc_core::ShardStats| -> Vec<String> {
        vec![
            name,
            s.ingested_packets.to_string(),
            s.ignored_packets.to_string(),
            s.batches.to_string(),
            s.active_flows.to_string(),
            s.finalized_flows.to_string(),
            s.evicted_flows.to_string(),
            s.expiry_entries_scanned.to_string(),
        ]
    };
    let mut rows: Vec<Vec<String>> = stats
        .per_shard
        .iter()
        .enumerate()
        .map(|(i, s)| row(format!("shard {i}"), s))
        .collect();
    rows.push(row("total".into(), &stats.total()));
    table(
        &[
            "shard", "ingested", "ignored", "batches", "active", "final", "evicted", "scanned",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Value column is aligned.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.953), "95.3%");
    }

    #[test]
    fn monitor_stats_table_has_shard_and_total_rows() {
        let mut stats = cgc_core::MonitorStats::default();
        for i in 0..2u64 {
            stats.per_shard.push(cgc_core::ShardStats {
                ingested_packets: 100 + i,
                ignored_packets: 5,
                active_flows: 3,
                finalized_flows: 7,
                evicted_flows: 1,
                expiry_entries_scanned: 12,
                batches: 4,
            });
        }
        let t = monitor_stats_table(&stats);
        let lines: Vec<&str> = t.lines().collect();
        // header + rule + 2 shard rows + total row
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with("shard 0"));
        assert!(lines[4].starts_with("total"));
        assert!(lines[4].contains("201")); // 100 + 101 ingested
        assert!(lines[4].contains("14")); // 7 + 7 finalized
    }

    #[test]
    fn write_json_creates_file() {
        std::env::set_var("GAMESCOPE_RESULTS", std::env::temp_dir().join("gs_results"));
        let path = write_json("unit_test_report", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains('1'));
        std::fs::remove_file(path).ok();
        std::env::remove_var("GAMESCOPE_RESULTS");
    }
}
