//! Text-table and JSON rendering shared by the experiment binaries.

use serde::Serialize;
use std::io;
use std::path::Path;

/// Renders rows as an aligned text table. `header` and every row must have
/// the same number of columns.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Writes a serializable result as pretty JSON under `results/<name>.json`
/// (creating the directory), returning the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The results directory: `$GAMESCOPE_RESULTS` or `results/` under the
/// current directory.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("GAMESCOPE_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

fn label_text(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        "-".into()
    } else {
        labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Renders a metrics [`Snapshot`](cgc_obs::Snapshot) as aligned text
/// tables — counters and gauges first, then histograms with count, mean
/// and tail quantiles. What an operator's dashboard would show for any
/// instrumented front end; zero-valued series are kept so a missing layer
/// is visible as a row of zeros rather than an absent row.
pub fn metrics_table(snapshot: &cgc_obs::Snapshot) -> String {
    use cgc_obs::MetricValue;

    let mut scalar_rows: Vec<Vec<String>> = Vec::new();
    let mut hist_rows: Vec<Vec<String>> = Vec::new();
    for m in &snapshot.metrics {
        match &m.value {
            MetricValue::Counter(v) => scalar_rows.push(vec![
                m.name.clone(),
                label_text(&m.labels),
                "counter".into(),
                v.to_string(),
            ]),
            MetricValue::Gauge(v) => scalar_rows.push(vec![
                m.name.clone(),
                label_text(&m.labels),
                "gauge".into(),
                v.to_string(),
            ]),
            MetricValue::Histogram(h) => {
                let q = |p: f64| h.quantile(p).map_or("-".into(), |v| f(v, 0));
                hist_rows.push(vec![
                    m.name.clone(),
                    label_text(&m.labels),
                    h.count.to_string(),
                    h.mean().map_or("-".into(), |v| f(v, 1)),
                    q(0.5),
                    q(0.95),
                    q(0.99),
                    h.max.to_string(),
                ]);
            }
        }
    }

    let mut out = String::new();
    if !scalar_rows.is_empty() {
        out.push_str(&table(&["metric", "labels", "type", "value"], &scalar_rows));
    }
    if !hist_rows.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&table(
            &[
                "histogram",
                "labels",
                "count",
                "mean",
                "p50",
                "p95",
                "p99",
                "max",
            ],
            &hist_rows,
        ));
    }
    out
}

/// Renders flight-recorder decision timelines as a human table: one row
/// per event, flows separated in admission order — the operator's answer
/// to "why did *this* flow get labeled the way it did". Alongside
/// [`metrics_table`], the second half of any instrumented run's text
/// report.
pub fn journal_table(timelines: &[cgc_obs::FlowTimeline]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for tl in timelines {
        let flow = cgc_obs::Event::flow_short(tl.flow);
        let endpoint = tl.addr.map_or("-".into(), |a| a.to_string());
        for e in &tl.events {
            rows.push(vec![
                flow.clone(),
                endpoint.clone(),
                f(e.ts as f64 / 1e6, 1),
                e.kind.name().into(),
                e.kind.to_string(),
            ]);
        }
        if tl.truncated {
            rows.push(vec![
                flow.clone(),
                endpoint.clone(),
                "-".into(),
                "(truncated)".into(),
                "events past the per-flow cap were dropped".into(),
            ]);
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    table(&["flow", "endpoints", "t(s)", "event", "detail"], &rows)
}

/// Renders span-trace timelines as a human table: one row per span in
/// causal order, flows separated in drain order — the operator's answer
/// to "where did *this* flow spend its pipeline time". The `--trace-table`
/// companion to [`journal_table`].
pub fn trace_table(traces: &[cgc_obs::TraceTimeline]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for tl in traces {
        let flow = cgc_obs::Event::flow_short(tl.flow);
        for s in tl.causal_chain() {
            rows.push(vec![
                flow.clone(),
                format!("{:016x}", s.trace()),
                s.slot.to_string(),
                f(s.ts as f64 / 1e6, 1),
                s.stage.name().into(),
                if s.dur_us == 0 {
                    "-".into()
                } else {
                    format!("{}us", s.dur_us)
                },
            ]);
        }
        if tl.truncated {
            rows.push(vec![
                flow.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "(truncated)".into(),
                "spans past the per-flow cap were dropped".into(),
            ]);
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    table(&["flow", "trace", "slot", "t(s)", "stage", "dur"], &rows)
}

/// Renders a streaming classification-quality report as an aligned text
/// table: per model a `(all)` summary row (window size, accuracy, macro
/// recall), then one row per class with support, precision and recall —
/// the `--quality` companion to [`metrics_table`], and the same numbers
/// `/quality` serves as JSON.
pub fn quality_table(report: &cgc_obs::QualityReport) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for m in &report.models {
        rows.push(vec![
            m.model.clone(),
            "(all)".into(),
            m.samples.to_string(),
            pct(m.accuracy),
            pct(m.macro_recall),
        ]);
        for c in m.classes.iter().filter(|c| c.support > 0) {
            rows.push(vec![
                m.model.clone(),
                c.class.clone(),
                c.support.to_string(),
                pct(c.precision),
                pct(c.recall),
            ]);
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    let mut out = table(
        &["model", "class", "samples", "precision/acc", "recall/macro"],
        &rows,
    );
    if report.shed > 0 {
        out.push_str(&format!(
            "({} labeled pairs shed at the ring; scores are sampled)\n",
            report.shed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Value column is aligned.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.953), "95.3%");
    }

    #[test]
    fn metrics_table_renders_scalars_and_histograms() {
        let r = cgc_obs::Registry::new();
        r.counter("cgc_monitor_ingested_packets_total", "packets")
            .add(201);
        r.gauge_with(
            "cgc_shard_queue_depth",
            "pending batches",
            &[("shard", "0")],
        )
        .set(3);
        let h = r.histogram("cgc_monitor_batch_ns", "batch latency");
        h.record(10);
        h.record(12);
        let t = metrics_table(&r.snapshot());
        assert!(t.contains("cgc_monitor_ingested_packets_total"));
        assert!(t.contains("201"));
        assert!(t.contains("shard=0"));
        assert!(t.contains("gauge"));
        // Histogram section: name, count and mean of {10, 12}.
        assert!(t.contains("cgc_monitor_batch_ns"));
        assert!(t.contains("11.0"));
        let scalar_header = t.lines().next().unwrap();
        assert!(scalar_header.starts_with("metric"));
        assert!(t.lines().any(|l| l.starts_with("histogram")));
    }

    #[test]
    fn metrics_table_of_empty_snapshot_is_empty() {
        assert_eq!(metrics_table(&cgc_obs::Snapshot::default()), "");
    }

    #[test]
    fn journal_table_renders_one_row_per_event() {
        use cgc_obs::event::{CloseCause, EventKind};
        let registry = cgc_obs::Registry::new();
        let (sink, mut journal) =
            cgc_obs::Journal::new(cgc_obs::JournalConfig::default(), &registry);
        let addr = cgc_obs::FlowAddr {
            server_ip: "10.0.0.1".parse().unwrap(),
            server_port: 49003,
            client_ip: "100.64.1.1".parse().unwrap(),
            client_port: 50000,
        };
        let flow = 0x1_feed_face;
        sink.emit(
            flow,
            0,
            EventKind::FlowAdmitted {
                addr,
                platform: cgc_domain::Platform::GeForceNow,
            },
        );
        sink.emit(
            flow,
            45_000_000,
            EventKind::FlowClosed {
                cause: CloseCause::Drained,
                confirmed: true,
            },
        );
        journal.drain();
        let t = journal_table(journal.timelines());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 events:\n{t}");
        assert!(lines[0].starts_with("flow"));
        assert!(t.contains("feedface"));
        assert!(t.contains("flow_admitted"));
        assert!(t.contains("45.0"));
        assert!(t.contains("closed (drained)"));
        assert!(t.contains("10.0.0.1:49003 -> 100.64.1.1:50000"));
        assert_eq!(journal_table(&[]), "");
    }

    #[test]
    fn trace_table_renders_spans_in_causal_order() {
        use cgc_obs::{TraceCollector, TraceConfig, TraceStage};
        let registry = cgc_obs::Registry::new();
        let (sink, mut collector) = TraceCollector::new(TraceConfig::default(), &registry);
        let flow = 0xabcd_1234u64;
        // Recorded out of causal order on purpose.
        sink.record(flow, 3, TraceStage::Slot, 3_000_000, 0);
        sink.record(flow, 0, TraceStage::Ingest, 100, 0);
        sink.record(flow, 3, TraceStage::Classifier, 3_500_000, 42);
        collector.drain();
        let t = trace_table(collector.timelines());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5, "header + rule + 3 spans:\n{t}");
        assert!(lines[0].starts_with("flow"));
        assert!(lines[2].contains("ingest"), "causal order restored:\n{t}");
        assert!(lines[3].contains("slot"));
        assert!(lines[4].contains("classifier"));
        assert!(t.contains("42us"));
        assert_eq!(trace_table(&[]), "");
    }

    #[test]
    fn quality_table_renders_summary_and_class_rows() {
        use cgc_obs::quality::{ModelKind, QualityConfig, QualityHub};
        let registry = cgc_obs::Registry::new();
        let (sink, mut hub) = QualityHub::new(QualityConfig::default(), &registry);
        for _ in 0..3 {
            sink.emit(ModelKind::Stage, 0, 0);
        }
        sink.emit(ModelKind::Stage, 1, 0);
        hub.drain_and_sync();
        let t = quality_table(&hub.report());
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("model"), "{t}");
        // Three (all) rows — one per model — plus the two stage classes
        // with support.
        assert_eq!(t.matches("(all)").count(), 3, "{t}");
        assert!(t.contains("75.0%"), "{t}");
        assert!(!t.contains("shed"), "{t}");
        let empty = cgc_obs::QualityReport {
            shed: 0,
            models: Vec::new(),
        };
        assert_eq!(quality_table(&empty), "");
    }

    #[test]
    fn write_json_creates_file() {
        std::env::set_var("GAMESCOPE_RESULTS", std::env::temp_dir().join("gs_results"));
        let path = write_json("unit_test_report", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains('1'));
        std::fs::remove_file(path).ok();
        std::env::remove_var("GAMESCOPE_RESULTS");
    }
}
