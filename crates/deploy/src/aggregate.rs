//! §5 aggregate analyses over fleet records.
//!
//! Everything here consumes [`SessionRecord`]s — the join of classifier
//! output with withheld ground truth — and produces the rows behind the
//! paper's deployment figures: player activity profiles per context
//! (Fig. 11), bandwidth demand distributions (Fig. 12), objective vs
//! effective QoE corrections (Fig. 13), the field validation of title
//! classification (§5 ¶2), and the measurement-driven calibration table
//! that the effective-QoE mapping uses.

use cgc_core::qoe::CalibrationTable;
use cgc_domain::{ActivityPattern, GameTitle, QoeLevel, Stage};
use nettrace::stats;
use serde::{Deserialize, Serialize};

use crate::fleet::SessionRecord;

/// Average minutes per stage per session for one context (Fig. 11 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageProfile {
    /// Context label (title name or pattern name).
    pub context: String,
    /// Sessions aggregated.
    pub sessions: usize,
    /// Mean active minutes per session.
    pub active_min: f64,
    /// Mean passive minutes per session.
    pub passive_min: f64,
    /// Mean idle minutes per session.
    pub idle_min: f64,
}

impl StageProfile {
    /// Mean total gameplay minutes per session.
    pub fn total_min(&self) -> f64 {
        self.active_min + self.passive_min + self.idle_min
    }
}

fn stage_minutes(r: &SessionRecord, stage: Stage) -> f64 {
    r.report.stage_seconds(stage) / 60.0
}

fn profile_of(context: String, rs: &[&SessionRecord]) -> StageProfile {
    let n = rs.len().max(1) as f64;
    StageProfile {
        context,
        sessions: rs.len(),
        active_min: rs
            .iter()
            .map(|r| stage_minutes(r, Stage::Active))
            .sum::<f64>()
            / n,
        passive_min: rs
            .iter()
            .map(|r| stage_minutes(r, Stage::Passive))
            .sum::<f64>()
            / n,
        idle_min: rs
            .iter()
            .map(|r| stage_minutes(r, Stage::Idle))
            .sum::<f64>()
            / n,
    }
}

/// Fig. 11(a): per classified catalog title, mean minutes per stage.
pub fn stage_profiles_by_title(records: &[SessionRecord]) -> Vec<StageProfile> {
    GameTitle::ALL
        .iter()
        .map(|t| {
            let rs: Vec<&SessionRecord> = records
                .iter()
                .filter(|r| r.report.title.title == Some(*t))
                .collect();
            profile_of(t.name().to_string(), &rs)
        })
        .collect()
}

/// Fig. 11(b): sessions whose title stayed unknown, grouped by the
/// *inferred* activity pattern.
pub fn stage_profiles_by_pattern(records: &[SessionRecord]) -> Vec<StageProfile> {
    ActivityPattern::ALL
        .iter()
        .map(|p| {
            let rs: Vec<&SessionRecord> = records
                .iter()
                .filter(|r| {
                    r.report.title.title.is_none()
                        && r.report.final_pattern.map(|(fp, _)| fp) == Some(*p)
                })
                .collect();
            profile_of(p.to_string(), &rs)
        })
        .collect()
}

/// Throughput distribution summary for one context (Fig. 12 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthProfile {
    /// Context label.
    pub context: String,
    /// Sessions aggregated (after the < 1 Mbps exclusion).
    pub sessions: usize,
    /// Minimum session-average throughput, Mbps.
    pub min_mbps: f64,
    /// 25th percentile.
    pub p25_mbps: f64,
    /// Median.
    pub median_mbps: f64,
    /// 75th percentile.
    pub p75_mbps: f64,
    /// Maximum.
    pub max_mbps: f64,
}

fn bandwidth_of(context: String, mut vals: Vec<f64>) -> BandwidthProfile {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    BandwidthProfile {
        context,
        sessions: vals.len(),
        min_mbps: vals.first().copied().unwrap_or(0.0),
        p25_mbps: stats::percentile_sorted(&vals, 0.25),
        median_mbps: stats::percentile_sorted(&vals, 0.5),
        p75_mbps: stats::percentile_sorted(&vals, 0.75),
        max_mbps: vals.last().copied().unwrap_or(0.0),
    }
}

/// Session-average throughputs per classified title, excluding sessions
/// under 1 Mbps (likely network-starved, as the paper excludes).
pub fn bandwidth_by_title(records: &[SessionRecord]) -> Vec<BandwidthProfile> {
    GameTitle::ALL
        .iter()
        .map(|t| {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| r.report.title.title == Some(*t) && r.report.mean_down_mbps >= 1.0)
                .map(|r| r.report.mean_down_mbps)
                .collect();
            bandwidth_of(t.name().to_string(), vals)
        })
        .collect()
}

/// Fig. 12(b): per inferred pattern for unknown-title sessions.
pub fn bandwidth_by_pattern(records: &[SessionRecord]) -> Vec<BandwidthProfile> {
    ActivityPattern::ALL
        .iter()
        .map(|p| {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| {
                    r.report.title.title.is_none()
                        && r.report.final_pattern.map(|(fp, _)| fp) == Some(*p)
                        && r.report.mean_down_mbps >= 1.0
                })
                .map(|r| r.report.mean_down_mbps)
                .collect();
            bandwidth_of(p.to_string(), vals)
        })
        .collect()
}

/// Objective vs effective QoE fractions for one context (Fig. 13 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QoeProfile {
    /// Context label.
    pub context: String,
    /// Sessions aggregated.
    pub sessions: usize,
    /// Fractions `[bad, medium, good]` under objective QoE.
    pub objective: [f64; 3],
    /// Fractions `[bad, medium, good]` under effective QoE.
    pub effective: [f64; 3],
}

impl QoeProfile {
    /// Fraction of sessions whose level improved after calibration.
    pub fn corrected_fraction(&self) -> f64 {
        (self.effective[2] - self.objective[2]).max(0.0)
    }
}

fn qoe_of(context: String, rs: &[&SessionRecord]) -> QoeProfile {
    let n = rs.len().max(1) as f64;
    let frac = |f: &dyn Fn(&SessionRecord) -> QoeLevel| -> [f64; 3] {
        let mut counts = [0.0; 3];
        for r in rs {
            counts[f(r) as usize] += 1.0;
        }
        counts.map(|c| c / n)
    };
    QoeProfile {
        context,
        sessions: rs.len(),
        objective: frac(&|r| r.report.objective_qoe),
        effective: frac(&|r| r.report.effective_qoe),
    }
}

/// Fig. 13(a): objective vs effective QoE per classified title.
pub fn qoe_by_title(records: &[SessionRecord]) -> Vec<QoeProfile> {
    GameTitle::ALL
        .iter()
        .map(|t| {
            let rs: Vec<&SessionRecord> = records
                .iter()
                .filter(|r| r.report.title.title == Some(*t))
                .collect();
            qoe_of(t.name().to_string(), &rs)
        })
        .collect()
}

/// Fig. 13(b): objective vs effective QoE per inferred pattern for
/// unknown-title sessions.
pub fn qoe_by_pattern(records: &[SessionRecord]) -> Vec<QoeProfile> {
    ActivityPattern::ALL
        .iter()
        .map(|p| {
            let rs: Vec<&SessionRecord> = records
                .iter()
                .filter(|r| {
                    r.report.title.title.is_none()
                        && r.report.final_pattern.map(|(fp, _)| fp) == Some(*p)
                })
                .collect();
            qoe_of(p.to_string(), &rs)
        })
        .collect()
}

/// Field validation (§5 ¶2): title classification accuracy against the
/// withheld "server log" truth, overall and per title, over catalog
/// sessions on healthy network paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldValidation {
    /// Overall accuracy across catalog sessions.
    pub overall_accuracy: f64,
    /// `(title, sessions, accuracy)` per catalog title.
    pub per_title: Vec<(String, usize, f64)>,
    /// Fraction of catalog sessions reported unknown.
    pub unknown_rate: f64,
}

/// Computes the field validation over clean catalog sessions.
pub fn field_validation(records: &[SessionRecord]) -> FieldValidation {
    let catalog: Vec<&SessionRecord> = records
        .iter()
        .filter(|r| r.truth_kind.known().is_some() && !r.impaired)
        .collect();
    let correct = catalog.iter().filter(|r| r.title_correct()).count();
    let unknown = catalog
        .iter()
        .filter(|r| r.report.title.title.is_none())
        .count();
    let per_title = GameTitle::ALL
        .iter()
        .map(|t| {
            let rs: Vec<&&SessionRecord> = catalog
                .iter()
                .filter(|r| r.truth_kind.known() == Some(*t))
                .collect();
            let ok = rs.iter().filter(|r| r.title_correct()).count();
            (
                t.name().to_string(),
                rs.len(),
                ok as f64 / rs.len().max(1) as f64,
            )
        })
        .collect();
    FieldValidation {
        overall_accuracy: correct as f64 / catalog.len().max(1) as f64,
        per_title,
        unknown_rate: unknown as f64 / catalog.len().max(1) as f64,
    }
}

/// Learns the context demand table from measurement: per classified title
/// (and per inferred pattern), the median 95th-percentile slot throughput
/// of clean sessions, normalized by each session's settings tier (the
/// Fig. 12-style per-settings clusters that power effective QoE).
pub fn calibrate(records: &[SessionRecord]) -> CalibrationTable {
    let mut table = CalibrationTable::default();
    let normalized = |r: &SessionRecord| r.peak_down_mbps / r.settings.bitrate_factor();
    // Only confidently classified sessions feed the per-title medians —
    // one misclassified high-demand session in a small bucket would skew a
    // rare title's expectation badly.
    let confident = |r: &&SessionRecord| r.report.title.confidence >= 0.7;
    for t in GameTitle::ALL {
        let vals: Vec<f64> = records
            .iter()
            .filter(confident)
            .filter(|r| !r.impaired && r.report.title.title == Some(t) && r.peak_down_mbps >= 1.0)
            .map(normalized)
            .collect();
        if !vals.is_empty() {
            table.set_title(t, stats::median(&vals));
        }
    }
    for p in ActivityPattern::ALL {
        let vals: Vec<f64> = records
            .iter()
            .filter(|r| {
                !r.impaired
                    && r.report.title.title.is_none()
                    && r.report.final_pattern.map(|(fp, _)| fp) == Some(p)
                    && r.peak_down_mbps >= 1.0
            })
            .map(normalized)
            .collect();
        if !vals.is_empty() {
            table.pattern_mbps[p.index()] = stats::median(&vals);
        }
    }
    let all: Vec<f64> = records
        .iter()
        .filter(|r| !r.impaired && r.peak_down_mbps >= 1.0)
        .map(normalized)
        .collect();
    if !all.is_empty() {
        table.default_mbps = stats::median(&all);
    }
    table
}

/// Per-slot stage classification accuracy against the ground-truth
/// timeline, scored over gameplay slots only (Table 4 uses lab sessions;
/// this is its fleet analogue, available here because the generator's
/// truth plays the role of the lab labels).
pub fn stage_accuracy(records: &[SessionRecord], timelines: &[gamesim::StageTimeline]) -> f64 {
    assert_eq!(records.len(), timelines.len());
    let mut correct = 0usize;
    let mut total = 0usize;
    for (r, tl) in records.iter().zip(timelines) {
        let width = r.report.slot_width;
        for (i, &pred) in r.report.stage_slots.iter().enumerate() {
            let midpoint = i as u64 * width + width / 2;
            let Some(truth) = tl.stage_at(midpoint) else {
                continue;
            };
            if truth == Stage::Launch {
                continue;
            }
            total += 1;
            if pred == truth {
                correct += 1;
            }
        }
    }
    correct as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet, FleetConfig};
    use crate::train::{train_bundle, TrainConfig};

    fn records() -> Vec<SessionRecord> {
        let bundle = train_bundle(&TrainConfig::quick());
        run_fleet(
            &bundle,
            &FleetConfig {
                n_sessions: 60,
                duration_scale: 0.06,
                workers: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn aggregations_cover_contexts() {
        let rs = records();
        let by_title = stage_profiles_by_title(&rs);
        assert_eq!(by_title.len(), 13);
        // Popular titles appear.
        assert!(by_title.iter().any(|p| p.sessions > 0));

        let by_pattern = stage_profiles_by_pattern(&rs);
        assert_eq!(by_pattern.len(), 2);

        let bw = bandwidth_by_title(&rs);
        assert!(bw
            .iter()
            .filter(|b| b.sessions > 0)
            .all(|b| b.min_mbps >= 1.0 && b.max_mbps >= b.median_mbps));

        let qoe = qoe_by_title(&rs);
        for q in qoe.iter().filter(|q| q.sessions > 0) {
            let so: f64 = q.objective.iter().sum();
            let se: f64 = q.effective.iter().sum();
            assert!((so - 1.0).abs() < 1e-9 && (se - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn field_validation_is_high_on_clean_catalog_sessions() {
        let rs = records();
        let fv = field_validation(&rs);
        assert!(
            fv.overall_accuracy > 0.75,
            "accuracy {}",
            fv.overall_accuracy
        );
        assert_eq!(fv.per_title.len(), 13);
    }

    #[test]
    fn calibration_learns_demand_ordering() {
        let rs = records();
        let table = calibrate(&rs);
        // Hearthstone demand must come out below Fortnite's when both were
        // observed.
        let get = |t: GameTitle| {
            table
                .title_mbps
                .iter()
                .find(|(x, _)| *x == t)
                .map(|(_, v)| *v)
        };
        if let (Some(h), Some(f)) = (get(GameTitle::Hearthstone), get(GameTitle::Fortnite)) {
            assert!(h < f, "Hearthstone {h} vs Fortnite {f}");
        }
        assert!(table.default_mbps > 1.0);
    }

    #[test]
    fn effective_qoe_never_lowers_good_fraction() {
        let rs = records();
        for q in qoe_by_title(&rs).iter().filter(|q| q.sessions >= 3) {
            assert!(
                q.effective[2] + 1e-9 >= q.objective[2],
                "{}: eff {:?} < obj {:?}",
                q.context,
                q.effective,
                q.objective
            );
        }
    }
}

/// Hour-of-day load profile across the deployment window (the "peak hours"
/// §5.2 provisions for).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Hour of day, 0–23.
    pub hour: usize,
    /// Sessions that *started* in this hour across the window.
    pub sessions_started: usize,
    /// Mean concurrent sessions during this hour (session-seconds /
    /// wall-seconds, averaged over the deployment days).
    pub mean_concurrent: f64,
    /// Mean aggregate downstream load during this hour, Mbps (sum of the
    /// active sessions' average throughputs).
    pub aggregate_mbps: f64,
}

/// Computes the 24-hour load profile from fleet records (arrivals carry
/// the diurnal model; durations come from the reports). `days` must match
/// the fleet's `deployment_days`.
pub fn diurnal_profile(records: &[SessionRecord], days: u32) -> Vec<DiurnalProfile> {
    const HOUR_US: u64 = 3_600_000_000;
    let mut started = [0usize; 24];
    let mut busy_secs = [0f64; 24];
    let mut load_mbps_secs = [0f64; 24];
    for r in records {
        let start = r.arrival;
        let duration = r.report.stage_slots.len() as u64 * r.report.slot_width;
        started[((start / HOUR_US) % 24) as usize] += 1;
        // Attribute the session's lifetime to the hours it overlaps.
        let mut t = start;
        let end = start + duration;
        while t < end {
            let hour_end = (t / HOUR_US + 1) * HOUR_US;
            let overlap = hour_end.min(end) - t;
            let h = ((t / HOUR_US) % 24) as usize;
            let secs = overlap as f64 / 1e6;
            busy_secs[h] += secs;
            load_mbps_secs[h] += secs * r.report.mean_down_mbps;
            t = hour_end;
        }
    }
    let wall = days.max(1) as f64 * 3600.0;
    (0..24)
        .map(|hour| DiurnalProfile {
            hour,
            sessions_started: started[hour],
            mean_concurrent: busy_secs[hour] / wall,
            aggregate_mbps: load_mbps_secs[hour] / wall,
        })
        .collect()
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;
    use crate::fleet::{run_fleet, FleetConfig};
    use crate::train::{train_bundle, TrainConfig};

    #[test]
    fn diurnal_profile_is_evening_peaked_and_conserves_time() {
        let bundle = train_bundle(&TrainConfig::quick());
        let records = run_fleet(
            &bundle,
            &FleetConfig {
                n_sessions: 300,
                duration_scale: 0.05,
                workers: 4,
                ..Default::default()
            },
        );
        let profile = diurnal_profile(&records, 90);
        assert_eq!(profile.len(), 24);
        // Starts are conserved.
        let total: usize = profile.iter().map(|p| p.sessions_started).sum();
        assert_eq!(total, records.len());
        // Evening (18-20h) clearly busier than pre-dawn (02-04h).
        let evening: f64 = profile[18..21].iter().map(|p| p.mean_concurrent).sum();
        let night: f64 = profile[2..5].iter().map(|p| p.mean_concurrent).sum();
        assert!(evening > 3.0 * night, "evening {evening} vs night {night}");
        // Aggregate load is consistent with concurrency x typical bitrate.
        for p in &profile {
            if p.mean_concurrent > 0.01 {
                let per_session = p.aggregate_mbps / p.mean_concurrent;
                assert!(
                    (1.0..60.0).contains(&per_session),
                    "hour {}: {per_session} Mbps/session",
                    p.hour
                );
            }
        }
    }
}
