//! On-disk artifact-format contract for the model registry: forest
//! serialization must round-trip bit-identically, and any damaged
//! artifact — truncated, field-stripped, or value-tampered — must fail
//! loudly at load or be caught by the flat-forest checksum, never load
//! quietly into a mis-classifying model.

use mlcore::data::Dataset;
use mlcore::flat::FlatForest;
use mlcore::forest::{RandomForest, RandomForestConfig};
use mlcore::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let c = rng.gen_range(0..3);
        let (cx, cy) = centers[c];
        x.push(vec![
            cx + rng.gen_range(-1.0f64..1.0),
            cy + rng.gen_range(-1.0f64..1.0),
        ]);
        y.push(c);
    }
    Dataset::new(x, y)
}

fn fitted(seed: u64) -> (FlatForest, Dataset) {
    let d = blobs(seed, 160);
    let f = RandomForest::fit(
        &d,
        &RandomForestConfig {
            n_trees: 10,
            seed,
            ..Default::default()
        },
    );
    (f.into_flat(), d)
}

#[test]
fn pointer_forest_roundtrips_bit_identically() {
    let d = blobs(11, 160);
    let f = RandomForest::fit(
        &d,
        &RandomForestConfig {
            n_trees: 8,
            seed: 11,
            ..Default::default()
        },
    );
    let json = serde_json::to_string(&f).unwrap();
    let back: RandomForest = serde_json::from_str(&json).unwrap();
    for x in &d.x {
        assert_eq!(f.predict_proba(x), back.predict_proba(x));
    }
    assert_eq!(f.to_flat().checksum(), back.to_flat().checksum());
}

#[test]
fn flat_forest_roundtrip_preserves_checksum_and_predictions() {
    let (flat, d) = fitted(12);
    let json = serde_json::to_string(&flat).unwrap();
    let back: FlatForest = serde_json::from_str(&json).unwrap();
    assert_eq!(flat.checksum(), back.checksum());
    for x in &d.x {
        assert_eq!(flat.predict_proba(x), back.predict_proba(x));
    }
}

#[test]
fn checksum_is_content_sensitive() {
    let (a, _) = fitted(13);
    let (b, _) = fitted(14);
    assert_ne!(a.checksum(), b.checksum(), "distinct forests must differ");
    // Stability: the digest is a pure function of the payload.
    let json = serde_json::to_string(&a).unwrap();
    let back: FlatForest = serde_json::from_str(&json).unwrap();
    assert_eq!(a.checksum(), back.checksum());
}

#[test]
fn truncated_artifact_is_rejected() {
    let (flat, _) = fitted(15);
    let json = serde_json::to_string(&flat).unwrap();
    for keep in [0, 1, json.len() / 4, json.len() / 2, json.len() - 1] {
        let cut = &json[..keep];
        assert!(
            serde_json::from_str::<FlatForest>(cut).is_err(),
            "truncation at {keep}/{} must not parse",
            json.len()
        );
    }
}

#[test]
fn field_stripped_artifact_is_rejected() {
    let (flat, _) = fitted(16);
    let json = serde_json::to_string(&flat).unwrap();
    for field in ["feature", "threshold", "child", "roots", "proba"] {
        // Rename the field so the payload stays valid JSON but the
        // struct decoder cannot find it.
        let broken = json.replacen(&format!("\"{field}\""), "\"_damaged\"", 1);
        assert!(
            serde_json::from_str::<FlatForest>(&broken).is_err(),
            "missing `{field}` must not parse"
        );
    }
}

#[test]
fn value_tampering_changes_the_checksum() {
    let (flat, _) = fitted(17);
    let original = flat.checksum();
    let json = serde_json::to_string(&flat).unwrap();
    // Flip one stored threshold digit — the kind of silent corruption a
    // byte-level checksum on the file can miss if applied after the
    // damage. Parsing may still succeed; the flat checksum must differ.
    let anchor = "\"threshold\":[";
    let at = json.find(anchor).unwrap() + anchor.len();
    let mut bytes = json.into_bytes();
    let digit = bytes[at..]
        .iter()
        .position(|b| b.is_ascii_digit())
        .map(|o| at + o)
        .unwrap();
    bytes[digit] = if bytes[digit] == b'9' { b'8' } else { b'9' };
    let tampered = String::from_utf8(bytes).unwrap();
    match serde_json::from_str::<FlatForest>(&tampered) {
        Err(_) => {} // rejected outright: also fine
        Ok(back) => assert_ne!(
            back.checksum(),
            original,
            "tampered payload must not verify"
        ),
    }
}
