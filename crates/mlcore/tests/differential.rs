//! Differential equivalence suite: flat vs pointer forest inference.
//!
//! The flat SoA layout (`mlcore::flat`) rewrites the inference kernel, so
//! its correctness is proven differentially — for random forests × random
//! inputs, [`FlatForest`] must produce **bit-identical** results to the
//! pointer [`RandomForest`] on `predict`, `predict_proba`, and
//! `predict_batch`, including NaN / out-of-range features and single-node
//! stumps. Any traversal or accumulation-order divergence fails here.

use mlcore::{Classifier, Dataset, FlatForest, RandomForest, RandomForestConfig};
use proptest::prelude::*;

/// Random labeled rows: (features, label) with 1–4 features and ≤ 4
/// classes. Feature values span a wide range so split thresholds land in
/// varied places.
fn rows_strategy(n_features: usize) -> impl Strategy<Value = Vec<(Vec<f64>, usize)>> {
    prop::collection::vec(
        (prop::collection::vec(-1e6f64..1e6, n_features), 0usize..4),
        4..40,
    )
}

fn fit(rows: &[(Vec<f64>, usize)], cfg: &RandomForestConfig) -> (RandomForest, FlatForest) {
    let x: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
    let y: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
    let data = Dataset::new(x, y);
    let forest = RandomForest::fit(&data, cfg);
    let flat = forest.to_flat();
    (forest, flat)
}

/// Exact equality on all three prediction surfaces for a set of probes.
fn assert_equivalent(forest: &RandomForest, flat: &FlatForest, probes: &[Vec<f64>]) {
    for x in probes {
        assert_eq!(
            forest.predict_proba(x),
            flat.predict_proba(x),
            "predict_proba diverged on {x:?}"
        );
        assert_eq!(
            forest.predict(x),
            flat.predict(x),
            "predict diverged on {x:?}"
        );
    }
    assert_eq!(
        forest.predict_batch(probes),
        flat.predict_batch(probes),
        "predict_batch diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random data × random forest hyperparameters: flat inference is
    /// bit-identical on the training rows themselves.
    #[test]
    fn flat_equals_pointer_on_training_rows(
        rows in rows_strategy(3),
        n_trees in 1usize..12,
        max_depth in 1usize..8,
        min_samples_split in 2usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = RandomForestConfig {
            n_trees,
            max_depth,
            min_samples_split,
            features_per_split: None,
            seed,
        };
        let (forest, flat) = fit(&rows, &cfg);
        let probes: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
        assert_equivalent(&forest, &flat, &probes);
    }

    /// Probes drawn independently of the training rows — including values
    /// far outside the training range — agree exactly too.
    #[test]
    fn flat_equals_pointer_on_unseen_probes(
        rows in rows_strategy(2),
        probes in prop::collection::vec(
            prop::collection::vec(-1e12f64..1e12, 2),
            1..20
        ),
        seed in any::<u64>(),
    ) {
        let cfg = RandomForestConfig { n_trees: 7, seed, ..Default::default() };
        let (forest, flat) = fit(&rows, &cfg);
        assert_equivalent(&forest, &flat, &probes);
    }

    /// NaN and infinite features take the same path in both layouts: the
    /// pointer tree's `x <= t` is false for NaN (go right), and the flat
    /// traversal preserves exactly that comparison.
    #[test]
    fn nan_and_infinity_probes_agree(
        rows in rows_strategy(2),
        pattern in prop::collection::vec(0u8..4, 2),
        seed in any::<u64>(),
    ) {
        let cfg = RandomForestConfig { n_trees: 5, seed, ..Default::default() };
        let (forest, flat) = fit(&rows, &cfg);
        let probe: Vec<f64> = pattern
            .iter()
            .map(|p| match p {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => 0.0,
            })
            .collect();
        assert_equivalent(&forest, &flat, &[probe]);
    }

    /// Single-class data grows stump forests (every tree one leaf); the
    /// flat layout handles root-is-leaf and still matches exactly.
    #[test]
    fn stump_forests_agree(
        values in prop::collection::vec(-100.0f64..100.0, 2..20),
        n_trees in 1usize..6,
        seed in any::<u64>(),
    ) {
        let rows: Vec<(Vec<f64>, usize)> =
            values.iter().map(|&v| (vec![v], 0usize)).collect();
        let cfg = RandomForestConfig { n_trees, seed, ..Default::default() };
        let (forest, flat) = fit(&rows, &cfg);
        prop_assert_eq!(flat.n_nodes(), flat.n_trees(), "stumps are single leaves");
        let probes: Vec<Vec<f64>> = vec![vec![-1e9], vec![0.0], vec![1e9], vec![f64::NAN]];
        assert_equivalent(&forest, &flat, &probes);
    }

    /// depth-limited forests on feature-subsampled splits still agree.
    #[test]
    fn feature_subsampled_forests_agree(
        rows in rows_strategy(4),
        mtry in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = RandomForestConfig {
            n_trees: 6,
            max_depth: 4,
            features_per_split: Some(mtry),
            seed,
            ..Default::default()
        };
        let (forest, flat) = fit(&rows, &cfg);
        let probes: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
        assert_equivalent(&forest, &flat, &probes);
    }
}

/// Deterministic spot check: the flat conversion preserves tree count and
/// class width, and a serde round-trip of the flat form is still
/// bit-identical to the pointer forest.
#[test]
fn flat_roundtrip_stays_equivalent_to_pointer() {
    let rows: Vec<(Vec<f64>, usize)> = (0..60)
        .map(|i| {
            let v = i as f64;
            (
                vec![v.sin() * 50.0, v.cos() * 50.0, v % 7.0],
                (i % 3) as usize,
            )
        })
        .collect();
    let cfg = RandomForestConfig {
        n_trees: 9,
        seed: 42,
        ..Default::default()
    };
    let (forest, flat) = fit(&rows, &cfg);
    assert_eq!(flat.n_trees(), forest.n_trees());
    assert_eq!(flat.n_classes(), forest.n_classes());
    let back: FlatForest = serde_json::from_str(&serde_json::to_string(&flat).unwrap()).unwrap();
    for (x, _) in &rows {
        assert_eq!(forest.predict_proba(x), back.predict_proba(x));
    }
}
