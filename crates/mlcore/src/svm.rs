//! Support Vector Machines trained with simplified SMO.
//!
//! Binary soft-margin SVMs (hinge loss, box constraint `C`) optimized with
//! the simplified Sequential Minimal Optimization procedure, with linear
//! and RBF kernels; multiclass via one-vs-rest. Probabilities are a softmax
//! over the per-class decision values — enough for argmax prediction and a
//! usable confidence signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::Classifier;

/// SVM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dot-product kernel.
    Linear,
    /// Gaussian radial basis function `exp(-gamma * ||a-b||²)`.
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// SVM hyperparameters (the Fig. 14 sweep axes: `C` and kernel type).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Box constraint (regularization); larger = harder margin.
    pub c: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// SMO terminates after this many passes without updates.
    pub max_passes: usize,
    /// Hard cap on total SMO sweeps (guards pathological data).
    pub max_sweeps: usize,
    /// RNG seed for the partner-choice heuristic.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.5 },
            tol: 1e-3,
            max_passes: 3,
            max_sweeps: 60,
            seed: 0,
        }
    }
}

/// One binary machine: support vectors with coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinarySvm {
    support_x: Vec<Vec<f64>>,
    /// `alpha_i * y_i` per support vector.
    coef: Vec<f64>,
    b: f64,
    kernel: Kernel,
}

impl BinarySvm {
    fn decision(&self, x: &[f64]) -> f64 {
        self.support_x
            .iter()
            .zip(&self.coef)
            .map(|(sv, c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.b
    }
}

/// Trains one binary SVM with simplified SMO on `(x, y∈{-1,+1})`.
fn train_binary(x: &[Vec<f64>], y: &[f64], cfg: &SvmConfig, rng: &mut StdRng) -> BinarySvm {
    let n = x.len();
    let mut alphas = vec![0.0f64; n];
    let mut b = 0.0f64;

    // Precompute the kernel matrix for modest n (quadratic memory).
    let precompute = n <= 2500;
    let kmat: Vec<Vec<f64>> = if precompute {
        (0..n)
            .map(|i| (0..n).map(|j| cfg.kernel.eval(&x[i], &x[j])).collect())
            .collect()
    } else {
        Vec::new()
    };
    let k = |i: usize, j: usize| -> f64 {
        if precompute {
            kmat[i][j]
        } else {
            cfg.kernel.eval(&x[i], &x[j])
        }
    };
    let f_of = |alphas: &[f64], b: f64, i: usize| -> f64 {
        let mut s = b;
        for j in 0..n {
            if alphas[j] != 0.0 {
                s += alphas[j] * y[j] * k(j, i);
            }
        }
        s
    };

    let mut passes = 0usize;
    let mut sweeps = 0usize;
    while passes < cfg.max_passes && sweeps < cfg.max_sweeps {
        sweeps += 1;
        let mut changed = 0usize;
        for i in 0..n {
            let e_i = f_of(&alphas, b, i) - y[i];
            let r = y[i] * e_i;
            if (r < -cfg.tol && alphas[i] < cfg.c) || (r > cfg.tol && alphas[i] > 0.0) {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f_of(&alphas, b, j) - y[j];
                let (a_i_old, a_j_old) = (alphas[i], alphas[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > 1e-12 {
                    (
                        (a_j_old - a_i_old).max(0.0),
                        (cfg.c + a_j_old - a_i_old).min(cfg.c),
                    )
                } else {
                    (
                        (a_i_old + a_j_old - cfg.c).max(0.0),
                        (a_i_old + a_j_old).min(cfg.c),
                    )
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-5 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                alphas[i] = a_i;
                alphas[j] = a_j;

                let b1 =
                    b - e_i - y[i] * (a_i - a_i_old) * k(i, i) - y[j] * (a_j - a_j_old) * k(i, j);
                let b2 =
                    b - e_j - y[i] * (a_i - a_i_old) * k(i, j) - y[j] * (a_j - a_j_old) * k(j, j);
                b = if 0.0 < a_i && a_i < cfg.c {
                    b1
                } else if 0.0 < a_j && a_j < cfg.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    // Keep only support vectors.
    let mut support_x = Vec::new();
    let mut coef = Vec::new();
    for i in 0..n {
        if alphas[i] > 1e-8 {
            support_x.push(x[i].clone());
            coef.push(alphas[i] * y[i]);
        }
    }
    BinarySvm {
        support_x,
        coef,
        b,
        kernel: cfg.kernel,
    }
}

/// One-vs-rest multiclass SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmOvr {
    machines: Vec<BinarySvm>,
    n_classes: usize,
}

impl SvmOvr {
    /// Fits one binary machine per class (class vs rest).
    ///
    /// Features should be standardized first (see
    /// [`crate::scale::StandardScaler`]); RBF widths assume unit-variance
    /// inputs.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, cfg: &SvmConfig) -> SvmOvr {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let machines = (0..data.n_classes)
            .map(|class| {
                let y: Vec<f64> = data
                    .y
                    .iter()
                    .map(|&yi| if yi == class { 1.0 } else { -1.0 })
                    .collect();
                train_binary(&data.x, &y, cfg, &mut rng)
            })
            .collect();
        SvmOvr {
            machines,
            n_classes: data.n_classes,
        }
    }

    /// Raw per-class decision values.
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        self.machines.iter().map(|m| m.decision(x)).collect()
    }

    /// Total number of support vectors across machines.
    pub fn n_support(&self) -> usize {
        self.machines.iter().map(|m| m.support_x.len()).sum()
    }
}

impl Classifier for SvmOvr {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        // Softmax over decision values.
        let d = self.decision_values(x);
        let m = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = d.iter().map(|v| (v - m).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.iter().map(|e| e / sum.max(1e-300)).collect()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs(seed: u64, n: usize, centers: &[(f64, f64)]) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..centers.len());
            let (cx, cy) = centers[c];
            x.push(vec![
                cx + rng.gen_range(-0.8..0.8),
                cy + rng.gen_range(-0.8..0.8),
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn linear_kernel_separates_blobs() {
        let train = blobs(1, 200, &[(0.0, 0.0), (4.0, 4.0)]);
        let test = blobs(2, 80, &[(0.0, 0.0), (4.0, 4.0)]);
        let svm = SvmOvr::fit(
            &train,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..Default::default()
            },
        );
        let acc = accuracy(&test.y, &svm.predict_batch(&test.x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn rbf_kernel_separates_ring() {
        // Class 0: inner disc; class 1: ring — not linearly separable.
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..300 {
            let r: f64 = if rng.gen_bool(0.5) {
                rng.gen_range(0.0..1.0)
            } else {
                rng.gen_range(2.0..3.0)
            };
            let th: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            x.push(vec![r * th.cos(), r * th.sin()]);
            y.push(usize::from(r > 1.5));
        }
        let d = Dataset::new(x, y);
        let (train, test) = d.stratified_split(0.3, 1);

        let rbf = SvmOvr::fit(
            &train,
            &SvmConfig {
                kernel: Kernel::Rbf { gamma: 1.0 },
                c: 5.0,
                ..Default::default()
            },
        );
        let acc_rbf = accuracy(&test.y, &rbf.predict_batch(&test.x));
        assert!(acc_rbf > 0.9, "rbf accuracy {acc_rbf}");

        let lin = SvmOvr::fit(
            &train,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..Default::default()
            },
        );
        let acc_lin = accuracy(&test.y, &lin.predict_batch(&test.x));
        assert!(
            acc_rbf > acc_lin + 0.15,
            "rbf {acc_rbf} vs linear {acc_lin}"
        );
    }

    #[test]
    fn multiclass_three_blobs() {
        let centers = [(0.0, 0.0), (5.0, 0.0), (2.5, 4.0)];
        let train = blobs(4, 240, &centers);
        let test = blobs(5, 90, &centers);
        let svm = SvmOvr::fit(&train, &SvmConfig::default());
        let acc = accuracy(&test.y, &svm.predict_batch(&test.x));
        assert!(acc > 0.92, "accuracy {acc}");
    }

    #[test]
    fn proba_is_a_distribution() {
        let d = blobs(6, 100, &[(0.0, 0.0), (4.0, 4.0)]);
        let svm = SvmOvr::fit(&d, &SvmConfig::default());
        let p = svm.predict_proba(&d.x[0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = blobs(7, 120, &[(0.0, 0.0), (4.0, 4.0)]);
        let a = SvmOvr::fit(&d, &SvmConfig::default());
        let b = SvmOvr::fit(&d, &SvmConfig::default());
        for x in d.x.iter().take(10) {
            assert_eq!(a.decision_values(x), b.decision_values(x));
        }
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let d = blobs(8, 150, &[(0.0, 0.0), (6.0, 6.0)]);
        let svm = SvmOvr::fit(
            &d,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..Default::default()
            },
        );
        // Well-separated blobs need few support vectors.
        assert!(svm.n_support() < d.len(), "{} SVs", svm.n_support());
        assert!(svm.n_support() > 0);
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let r = Kernel::Rbf { gamma: 0.5 }.eval(&[0.0], &[2.0]);
        assert!((r - (-2.0f64).exp()).abs() < 1e-12);
        assert_eq!(Kernel::Rbf { gamma: 1.0 }.eval(&[1.0], &[1.0]), 1.0);
    }
}
