//! Standard (z-score) feature scaling.
//!
//! SVM (especially RBF) and KNN are distance-based and need standardized
//! inputs; Random Forests are scale-invariant and skip this.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;

/// Per-feature mean/std scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-feature means and standard deviations. Constant features
    /// get `std = 1` so they map to zero instead of dividing by zero.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> StandardScaler {
        assert!(!data.is_empty(), "cannot fit scaler on empty dataset");
        let d = data.n_features();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in &data.x {
            for ((v, x), m) in var.iter_mut().zip(row).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Transforms one sample in place.
    pub fn transform_inplace(&self, x: &mut [f64]) {
        for ((v, m), s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Transforms a sample, returning a new vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        self.transform_inplace(&mut out);
        out
    }

    /// Returns a transformed copy of a dataset.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = data.clone();
        for row in &mut out.x {
            self.transform_inplace(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let d = Dataset::new(
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0, 0, 0],
        );
        let sc = StandardScaler::fit(&d);
        let t = sc.transform_dataset(&d);
        for f in 0..2 {
            let mean: f64 = t.x.iter().map(|r| r[f]).sum::<f64>() / 3.0;
            let var: f64 = t.x.iter().map(|r| r[f] * r[f]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1]);
        let sc = StandardScaler::fit(&d);
        assert_eq!(sc.transform(&[5.0]), vec![0.0]);
        assert_eq!(sc.transform(&[6.0]), vec![1.0]);
    }

    #[test]
    fn transform_matches_inplace() {
        let d = Dataset::new(vec![vec![1.0], vec![3.0]], vec![0, 1]);
        let sc = StandardScaler::fit(&d);
        let a = sc.transform(&[2.0]);
        let mut b = [2.0];
        sc.transform_inplace(&mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_on_empty_dataset_panics() {
        let _ = StandardScaler::fit(&Dataset::new(vec![], vec![]));
    }

    #[test]
    fn refit_on_standardized_data_is_identity() {
        // Round trip: once standardized, a second fitted scaler has
        // mean ≈ 0 / std ≈ 1 and transforms (numerically) to itself.
        let d = Dataset::new(
            vec![
                vec![1.0, -3.0],
                vec![4.0, 0.5],
                vec![9.0, 2.0],
                vec![2.5, 7.0],
            ],
            vec![0, 1, 0, 1],
        );
        let first = StandardScaler::fit(&d).transform_dataset(&d);
        let second = StandardScaler::fit(&first).transform_dataset(&first);
        for (a, b) in first.x.iter().flatten().zip(second.x.iter().flatten()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_dataset_preserves_labels_and_shape() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![7, 9]);
        let t = StandardScaler::fit(&d).transform_dataset(&d);
        assert_eq!(t.y, d.y);
        assert_eq!(t.len(), d.len());
        assert_eq!(t.n_features(), d.n_features());
    }

    #[test]
    fn serde_roundtrip_transforms_identically() {
        let d = Dataset::new(
            vec![
                vec![0.25, -8.0, 3.0],
                vec![1.5, 2.0, -0.5],
                vec![4.0, 0.0, 9.0],
            ],
            vec![0, 1, 2],
        );
        let sc = StandardScaler::fit(&d);
        let back: StandardScaler =
            serde_json::from_str(&serde_json::to_string(&sc).unwrap()).unwrap();
        assert_eq!(back, sc);
        let probe = [1.0, -1.0, 2.5];
        assert_eq!(sc.transform(&probe), back.transform(&probe));
    }
}
