//! # mlcore — from-scratch statistical machine learning
//!
//! The paper's classifiers are classical models — Random Forest, SVM and
//! KNN — evaluated with accuracy/confusion metrics, permutation importance
//! and variation-based data augmentation (§4.4, Appendix C). The Rust ML
//! ecosystem being thin, this crate implements all of it directly:
//!
//! * [`tree`] — CART decision trees (Gini impurity, depth/min-split limits,
//!   per-split random feature subsampling).
//! * [`forest`] — Random Forests: bootstrap bagging over CART trees,
//!   majority vote and vote-fraction probabilities.
//! * [`svm`] — kernel SVMs trained with (simplified) SMO, linear and RBF
//!   kernels, one-vs-rest multiclass.
//! * [`knn`] — brute-force k-nearest-neighbours with Euclidean or
//!   Manhattan distances.
//! * [`data`] — datasets, stratified train/test splits, k-fold CV.
//! * [`metrics`] — accuracy, confusion matrices, per-class precision /
//!   recall / F1.
//! * [`importance`] — permutation importance (Breiman 2001), the metric
//!   behind the paper's Fig. 9 and Table 5.
//! * [`augment`] — variation-based augmentation for under-represented
//!   classes.
//! * [`scale`] — standard (z-score) feature scaling for SVM/KNN.
//!
//! Models implement the common [`Classifier`] trait so the evaluation
//! harness can sweep them interchangeably. Everything is deterministic
//! under a caller-provided seed.
//!
//! ```
//! use mlcore::{Classifier, Dataset, RandomForest, RandomForestConfig};
//!
//! // Two separable classes in one dimension.
//! let data = Dataset::new(
//!     vec![vec![0.1], vec![0.2], vec![0.9], vec![1.0]],
//!     vec![0, 0, 1, 1],
//! );
//! let forest = RandomForest::fit(&data, &RandomForestConfig {
//!     n_trees: 10,
//!     ..Default::default()
//! });
//! assert_eq!(forest.predict(&[0.15]), 0);
//! assert_eq!(forest.predict(&[0.95]), 1);
//! let proba = forest.predict_proba(&[0.95]);
//! assert!(proba[1] > 0.8);
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod data;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod scale;
pub mod svm;
pub mod tree;

pub use data::{cross_validate, Dataset};
pub use flat::FlatForest;
pub use forest::{RandomForest, RandomForestConfig};
pub use importance::permutation_importance;
pub use knn::{DistanceMetric, Knn};
pub use metrics::{accuracy, ConfusionMatrix};
pub use scale::StandardScaler;
pub use svm::{Kernel, SvmConfig, SvmOvr};
pub use tree::DecisionTree;

/// Index of the maximum score, breaking ties toward the **last** maximal
/// entry — the same tie-break `Iterator::max_by` applies, so argmax over a
/// probability vector always matches [`Classifier::predict`].
///
/// Returns 0 for an empty slice.
///
/// # Panics
/// Panics on NaN scores (probabilities are expected to be finite).
pub fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// A trained multi-class classifier over dense `f64` feature vectors.
pub trait Classifier {
    /// Predicted class id for one sample.
    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    /// Class-probability (or normalized score) vector for one sample; the
    /// maximum entry is the model's confidence, which the pipeline
    /// thresholds to emit "unknown".
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Fills `out` with the class-probability vector for one sample
    /// without allocating. `out.len()` must equal [`Classifier::n_classes`];
    /// models with an allocation-free path override this.
    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.predict_proba(x));
    }

    /// Number of classes.
    fn n_classes(&self) -> usize;

    /// Batch prediction. The default reuses one score buffer across rows
    /// instead of allocating a probability `Vec` per sample.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let mut scores = vec![0.0f64; self.n_classes()];
        xs.iter()
            .map(|x| {
                self.predict_proba_into(x, &mut scores);
                argmax(&scores)
            })
            .collect()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// A fixed-response classifier for exercising the trait defaults.
    struct Fixed;

    impl Classifier for Fixed {
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            // Class 1 wins iff the first feature is positive.
            if x[0] > 0.0 {
                vec![0.2, 0.8]
            } else {
                vec![0.8, 0.2]
            }
        }

        fn n_classes(&self) -> usize {
            2
        }
    }

    #[test]
    fn predict_batch_empty_batch() {
        assert_eq!(Fixed.predict_batch(&[]), Vec::<usize>::new());
    }

    #[test]
    fn predict_batch_single_row() {
        assert_eq!(Fixed.predict_batch(&[vec![1.0]]), vec![1]);
        assert_eq!(Fixed.predict_batch(&[vec![-1.0]]), vec![0]);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let xs = vec![vec![1.0], vec![-2.0], vec![3.0], vec![0.0]];
        let one_by_one: Vec<usize> = xs.iter().map(|x| Fixed.predict(x)).collect();
        assert_eq!(Fixed.predict_batch(&xs), one_by_one);
    }

    #[test]
    fn argmax_breaks_ties_toward_last() {
        // Matches Iterator::max_by: later equal entries win.
        assert_eq!(argmax(&[0.5, 0.5]), 1);
        assert_eq!(argmax(&[0.3, 0.4, 0.4, 0.2]), 2);
        assert_eq!(argmax(&[1.0]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn predict_proba_into_default_copies() {
        let mut out = [0.0f64; 2];
        Fixed.predict_proba_into(&[1.0], &mut out);
        assert_eq!(out, [0.2, 0.8]);
    }
}
