//! # mlcore — from-scratch statistical machine learning
//!
//! The paper's classifiers are classical models — Random Forest, SVM and
//! KNN — evaluated with accuracy/confusion metrics, permutation importance
//! and variation-based data augmentation (§4.4, Appendix C). The Rust ML
//! ecosystem being thin, this crate implements all of it directly:
//!
//! * [`tree`] — CART decision trees (Gini impurity, depth/min-split limits,
//!   per-split random feature subsampling).
//! * [`forest`] — Random Forests: bootstrap bagging over CART trees,
//!   majority vote and vote-fraction probabilities.
//! * [`svm`] — kernel SVMs trained with (simplified) SMO, linear and RBF
//!   kernels, one-vs-rest multiclass.
//! * [`knn`] — brute-force k-nearest-neighbours with Euclidean or
//!   Manhattan distances.
//! * [`data`] — datasets, stratified train/test splits, k-fold CV.
//! * [`metrics`] — accuracy, confusion matrices, per-class precision /
//!   recall / F1.
//! * [`importance`] — permutation importance (Breiman 2001), the metric
//!   behind the paper's Fig. 9 and Table 5.
//! * [`augment`] — variation-based augmentation for under-represented
//!   classes.
//! * [`scale`] — standard (z-score) feature scaling for SVM/KNN.
//!
//! Models implement the common [`Classifier`] trait so the evaluation
//! harness can sweep them interchangeably. Everything is deterministic
//! under a caller-provided seed.
//!
//! ```
//! use mlcore::{Classifier, Dataset, RandomForest, RandomForestConfig};
//!
//! // Two separable classes in one dimension.
//! let data = Dataset::new(
//!     vec![vec![0.1], vec![0.2], vec![0.9], vec![1.0]],
//!     vec![0, 0, 1, 1],
//! );
//! let forest = RandomForest::fit(&data, &RandomForestConfig {
//!     n_trees: 10,
//!     ..Default::default()
//! });
//! assert_eq!(forest.predict(&[0.15]), 0);
//! assert_eq!(forest.predict(&[0.95]), 1);
//! let proba = forest.predict_proba(&[0.95]);
//! assert!(proba[1] > 0.8);
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod data;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod scale;
pub mod svm;
pub mod tree;

pub use data::{cross_validate, Dataset};
pub use forest::{RandomForest, RandomForestConfig};
pub use importance::permutation_importance;
pub use knn::{DistanceMetric, Knn};
pub use metrics::{accuracy, ConfusionMatrix};
pub use scale::StandardScaler;
pub use svm::{Kernel, SvmConfig, SvmOvr};
pub use tree::DecisionTree;

/// A trained multi-class classifier over dense `f64` feature vectors.
pub trait Classifier {
    /// Predicted class id for one sample.
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Class-probability (or normalized score) vector for one sample; the
    /// maximum entry is the model's confidence, which the pipeline
    /// thresholds to emit "unknown".
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Number of classes.
    fn n_classes(&self) -> usize;

    /// Batch prediction.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}
