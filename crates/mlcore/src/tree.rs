//! CART decision trees with Gini impurity.
//!
//! Binary trees grown greedily: at each node the best `(feature, threshold)`
//! split is searched over a (possibly random, for forests) subset of
//! features and up to [`MAX_THRESHOLDS`] quantile thresholds per feature.
//! Leaves store class-count distributions so probability prediction is
//! available.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::Classifier;

/// Maximum candidate thresholds examined per feature per node (quantile
/// midpoints); bounds training cost on large nodes.
pub const MAX_THRESHOLDS: usize = 24;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
    /// Features examined per split: `None` = all, `Some(m)` = a random
    /// subset of `m` (Random-Forest style).
    pub features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 2,
            features_per_split: None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        /// Normalized class distribution at the leaf.
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    n_features: usize,
    /// Per-feature total Gini decrease accumulated while growing, weighted
    /// by node sample counts (the raw form of MDI importance).
    importances: Vec<f64>,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn class_counts(data: &Dataset, idx: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.n_classes];
    for &i in idx {
        counts[data.y[i]] += 1;
    }
    counts
}

impl DecisionTree {
    /// Fits a tree on the subset `idx` of `data`. `rng` drives the
    /// per-split feature subsampling (unused when
    /// [`TreeConfig::features_per_split`] is `None`).
    pub fn fit_subset(
        data: &Dataset,
        idx: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        let mut importances = vec![0.0; data.n_features()];
        DecisionTree {
            root: grow(data, idx.to_vec(), config, rng, 0, &mut importances),
            n_classes: data.n_classes,
            n_features: data.n_features(),
            importances,
        }
    }

    /// Fits a tree on the full dataset.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut StdRng) -> DecisionTree {
        let idx: Vec<usize> = (0..data.len()).collect();
        Self::fit_subset(data, &idx, config, rng)
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Mean-decrease-in-impurity importance per feature, normalized to sum
    /// to 1 (all zeros for a stump).
    pub fn mdi_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.importances.len()];
        }
        self.importances.iter().map(|v| v / total).collect()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Root node, for flattening ([`crate::flat`]).
    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Walks the tree for `x` and returns the leaf's stored class
    /// distribution without cloning it — the allocation-free core of
    /// [`Classifier::predict_proba`].
    pub fn leaf_proba(&self, x: &[f64]) -> &[f64] {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn grow(
    data: &Dataset,
    idx: Vec<usize>,
    config: &TreeConfig,
    rng: &mut StdRng,
    depth: usize,
    importances: &mut [f64],
) -> Node {
    let counts = class_counts(data, &idx);
    let total = idx.len();
    let node_gini = gini(&counts, total);

    let make_leaf = |counts: &[usize]| Node::Leaf {
        proba: counts.iter().map(|&c| c as f64 / total as f64).collect(),
    };

    if depth >= config.max_depth || total < config.min_samples_split || node_gini == 0.0 {
        return make_leaf(&counts);
    }

    // Candidate features.
    let n_features = data.n_features();
    let features: Vec<usize> = match config.features_per_split {
        None => (0..n_features).collect(),
        Some(m) => {
            let mut all: Vec<usize> = (0..n_features).collect();
            all.shuffle(rng);
            all.truncate(m.max(1).min(n_features));
            all
        }
    };

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    for &f in &features {
        // Quantile thresholds over this node's values.
        let mut vals: Vec<f64> = idx.iter().map(|&i| data.x[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let step = (vals.len() - 1).div_ceil(MAX_THRESHOLDS).max(1);
        for w in vals.windows(2).step_by(step) {
            let thr = (w[0] + w[1]) / 2.0;
            // Evaluate split.
            let mut lc = vec![0usize; data.n_classes];
            let mut rc = vec![0usize; data.n_classes];
            let mut ln = 0usize;
            for &i in &idx {
                if data.x[i][f] <= thr {
                    lc[data.y[i]] += 1;
                    ln += 1;
                } else {
                    rc[data.y[i]] += 1;
                }
            }
            let rn = total - ln;
            if ln == 0 || rn == 0 {
                continue;
            }
            let weighted = (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn)) / total as f64;
            if best.is_none_or(|(_, _, g)| weighted < g) {
                best = Some((f, thr, weighted));
            }
        }
    }

    // Accept any non-worsening split: zero-gain splits (e.g. the root of
    // XOR-shaped data) often enable gains deeper down, and recursion stays
    // bounded by depth and the non-empty-children requirement.
    match best {
        Some((feature, threshold, g)) if g <= node_gini + 1e-12 => {
            // MDI: impurity decrease weighted by the node's sample share.
            importances[feature] += (node_gini - g) * total as f64;
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(data, left_idx, config, rng, depth + 1, importances)),
                right: Box::new(grow(data, right_idx, config, rng, depth + 1, importances)),
            }
        }
        _ => make_leaf(&counts),
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.leaf_proba(x).to_vec()
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(self.leaf_proba(x));
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Two well-separated 2-D blobs.
    fn blobs() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            x.push(vec![t, t * 0.5]);
            y.push(0);
            x.push(vec![t + 5.0, t * 0.5 + 5.0]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn separable_data_is_fit_perfectly() {
        let d = blobs();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        for i in 0..d.len() {
            assert_eq!(t.predict(&d.x[i]), d.y[i]);
        }
        assert!(t.depth() >= 1);
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1]);
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict(&[9.0]), 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        // XOR-ish data needs depth 2; cap at 1.
        let d = Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0, 1, 1, 0],
        );
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        assert!(t.depth() <= 1);
        let deep = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert!(deep.depth() >= 2);
        for i in 0..4 {
            assert_eq!(deep.predict(&d.x[i]), d.y[i], "xor sample {i}");
        }
    }

    #[test]
    fn proba_reflects_leaf_mixture() {
        // One feature, inseparable mixture at x=0: 3 of class 0, 1 of class 1.
        let d = Dataset::new(
            vec![vec![0.0], vec![0.0], vec![0.0], vec![0.0]],
            vec![0, 0, 0, 1],
        );
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        let p = t.predict_proba(&[0.0]);
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_samples_split_stops_growth() {
        let d = blobs();
        let cfg = TreeConfig {
            min_samples_split: 1000,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let d = blobs();
        let cfg = TreeConfig {
            features_per_split: Some(1),
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &cfg, &mut rng());
        let acc =
            d.x.iter()
                .zip(&d.y)
                .filter(|(x, y)| t.predict(x) == **y)
                .count() as f64
                / d.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let d = blobs();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        let _ = t.predict(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let d = blobs();
        let t = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng());
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for i in 0..d.len() {
            assert_eq!(t.predict(&d.x[i]), back.predict(&d.x[i]));
        }
    }
}
