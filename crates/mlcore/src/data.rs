//! Datasets, splits and cross-validation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labeled dataset of dense feature vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, row per sample.
    pub x: Vec<Vec<f64>>,
    /// Class ids, one per sample, in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of classes (may exceed `max(y)+1` if some classes have no
    /// samples in this split).
    pub n_classes: usize,
    /// Feature names; empty means unnamed.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset, inferring `n_classes` as `max(y)+1`.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ or rows have inconsistent
    /// widths.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(w) = x.first().map(Vec::len) {
            assert!(x.iter().all(|r| r.len() == w), "ragged feature matrix");
        }
        let n_classes = y.iter().max().map_or(0, |m| m + 1);
        Dataset {
            x,
            y,
            n_classes,
            feature_names: Vec::new(),
        }
    }

    /// Attaches feature names (builder style).
    ///
    /// # Panics
    /// Panics if the name count does not match the feature count.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Dataset {
        assert_eq!(names.len(), self.n_features(), "name/feature mismatch");
        self.feature_names = names;
        self
    }

    /// Overrides the class count (when labels beyond the observed maximum
    /// exist).
    pub fn with_n_classes(mut self, n: usize) -> Dataset {
        assert!(n > self.y.iter().max().map_or(0, |m| *m));
        self.n_classes = n;
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per sample (0 when empty).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// FNV-1a digest over every sample (features via IEEE bit patterns)
    /// plus labels and the class count. Two training sets fingerprint
    /// equal iff they hold the same rows in the same order — the model
    /// registry stamps this into each artifact's manifest so an operator
    /// can tell retrained-on-new-data from re-serialized-same-data.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut h, self.x.len() as u64);
        for (row, &label) in self.x.iter().zip(&self.y) {
            mix(&mut h, row.len() as u64);
            for &f in row {
                mix(&mut h, f.to_bits());
            }
            mix(&mut h, label as u64);
        }
        mix(&mut h, self.n_classes as u64);
        h
    }

    /// Appends another dataset with the same schema.
    ///
    /// # Panics
    /// Panics on schema mismatch.
    pub fn extend(&mut self, other: Dataset) {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.n_features(), other.n_features(), "schema mismatch");
        }
        self.x.extend(other.x);
        self.y.extend(other.y);
        self.n_classes = self.n_classes.max(other.n_classes);
    }

    /// Samples of one class.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.y[i] == class).collect()
    }

    /// Subset by sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Stratified train/test split: each class contributes `test_frac` of
    /// its samples (rounded down, at least one when it has ≥ 2 samples) to
    /// the test set.
    pub fn stratified_split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac), "test_frac in [0,1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in 0..self.n_classes {
            let mut idx = self.class_indices(class);
            idx.shuffle(&mut rng);
            let mut n_test = (idx.len() as f64 * test_frac) as usize;
            if n_test == 0 && idx.len() >= 2 && test_frac > 0.0 {
                n_test = 1;
            }
            test_idx.extend_from_slice(&idx[..n_test]);
            train_idx.extend_from_slice(&idx[n_test..]);
        }
        train_idx.shuffle(&mut rng);
        test_idx.shuffle(&mut rng);
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Stratified k-fold indices: returns `k` (train, test) index pairs.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least 2 folds");
        let mut rng = StdRng::seed_from_u64(seed);
        // Assign each sample a fold, stratified per class.
        let mut fold_of = vec![0usize; self.len()];
        for class in 0..self.n_classes {
            let mut idx = self.class_indices(class);
            idx.shuffle(&mut rng);
            for (j, &i) in idx.iter().enumerate() {
                fold_of[i] = j % k;
            }
        }
        (0..k)
            .map(|f| {
                let test: Vec<usize> = (0..self.len()).filter(|&i| fold_of[i] == f).collect();
                let train: Vec<usize> = (0..self.len()).filter(|&i| fold_of[i] != f).collect();
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize, n_classes: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..n_classes {
            for i in 0..n_per_class {
                x.push(vec![c as f64, i as f64]);
                y.push(c);
            }
        }
        Dataset::new(x, y)
    }

    #[test]
    fn new_infers_classes() {
        let d = toy(5, 3);
        assert_eq!(d.n_classes, 3);
        assert_eq!(d.len(), 15);
        assert_eq!(d.n_features(), 2);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = toy(10, 4);
        let (train, test) = d.stratified_split(0.3, 7);
        assert_eq!(train.len() + test.len(), d.len());
        for c in 0..4 {
            assert_eq!(test.class_indices(c).len(), 3);
            assert_eq!(train.class_indices(c).len(), 7);
        }
    }

    #[test]
    fn split_gives_every_class_a_test_sample() {
        let d = toy(3, 5);
        let (_, test) = d.stratified_split(0.1, 1);
        for c in 0..5 {
            assert!(!test.class_indices(c).is_empty());
        }
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(8, 2);
        let (a, _) = d.stratified_split(0.25, 9);
        let (b, _) = d.stratified_split(0.25, 9);
        assert_eq!(a.y, b.y);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn k_folds_partition_all_samples() {
        let d = toy(9, 3);
        let folds = d.k_folds(3, 2);
        assert_eq!(folds.len(), 3);
        let mut seen = vec![0; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
        }
        // Each sample appears in exactly one test fold.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn extend_merges() {
        let mut a = toy(2, 2);
        let b = toy(3, 3);
        a.extend(b);
        assert_eq!(a.len(), 13);
        assert_eq!(a.n_classes, 3);
    }

    #[test]
    #[should_panic(expected = "x/y length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "ragged feature matrix")]
    fn ragged_rows_panic() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn feature_names_roundtrip() {
        let d = toy(2, 2).with_feature_names(vec!["a".into(), "b".into()]);
        assert_eq!(d.feature_names, vec!["a", "b"]);
    }
}

/// Mean k-fold cross-validated accuracy of a model family: `fit` builds a
/// model from each fold's training subset, which is then scored on the
/// held-out fold — the model-selection procedure behind the paper's
/// hyperparameter sweeps (Appendix C).
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, mut fit: F) -> f64
where
    C: crate::Classifier,
    F: FnMut(&Dataset) -> C,
{
    let folds = data.k_folds(k, seed);
    let mut acc_sum = 0.0;
    for (train_idx, test_idx) in &folds {
        let train = data.subset(train_idx);
        let test = data.subset(test_idx);
        let model = fit(&train);
        let preds = model.predict_batch(&test.x);
        acc_sum += crate::metrics::accuracy(&test.y, &preds);
    }
    acc_sum / folds.len() as f64
}

#[cfg(test)]
mod cv_tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cross_validation_scores_separable_data_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..120 {
            let c = rng.gen_range(0..2usize);
            x.push(vec![c as f64 * 3.0 + rng.gen_range(-1.0..1.0)]);
            y.push(c);
        }
        let data = Dataset::new(x, y);
        let acc = cross_validate(&data, 5, 3, |train| {
            RandomForest::fit(
                train,
                &RandomForestConfig {
                    n_trees: 10,
                    ..Default::default()
                },
            )
        });
        assert!(acc > 0.9, "cv accuracy {acc}");
    }

    #[test]
    fn cross_validation_scores_random_labels_low() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Dataset::new(
            (0..100).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect(),
            (0..100).map(|_| rng.gen_range(0..2)).collect(),
        );
        let acc = cross_validate(&data, 4, 5, |train| {
            RandomForest::fit(
                train,
                &RandomForestConfig {
                    n_trees: 10,
                    ..Default::default()
                },
            )
        });
        assert!((0.25..0.75).contains(&acc), "cv accuracy {acc}");
    }
}
