//! k-nearest-neighbours classification.
//!
//! Brute-force search over the stored training set with Euclidean or
//! Manhattan distance (the two Fig. 14 sweep options). Probabilities are
//! neighbour vote fractions.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::Classifier;

/// Distance metric between feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// L2 distance.
    Euclidean,
    /// L1 distance.
    Manhattan,
}

impl DistanceMetric {
    /// Distance between two equal-length vectors.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            DistanceMetric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
        }
    }
}

/// A fitted (memorized) KNN classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Knn {
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
    /// Neighbour count.
    pub k: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
}

impl Knn {
    /// Memorizes the training set.
    ///
    /// # Panics
    /// Panics if `k == 0` or the dataset is empty.
    pub fn fit(data: &Dataset, k: usize, metric: DistanceMetric) -> Knn {
        assert!(k > 0, "k must be positive");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        Knn {
            x: data.x.clone(),
            y: data.y.clone(),
            n_classes: data.n_classes,
            k,
            metric,
        }
    }

    /// The indices of the `k` nearest training samples.
    fn neighbours(&self, x: &[f64]) -> Vec<usize> {
        let mut dist: Vec<(f64, usize)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, xi)| (self.metric.eval(xi, x), i))
            .collect();
        let k = self.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        dist.truncate(k);
        dist.into_iter().map(|(_, i)| i).collect()
    }
}

impl Classifier for Knn {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let nb = self.neighbours(x);
        let mut votes = vec![0.0f64; self.n_classes];
        for i in &nb {
            votes[self.y[*i]] += 1.0;
        }
        let total = nb.len() as f64;
        for v in &mut votes {
            *v /= total;
        }
        votes
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (5.0, 5.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..2usize);
            x.push(vec![
                centers[c].0 + rng.gen_range(-1.0f64..1.0),
                centers[c].1 + rng.gen_range(-1.0f64..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn one_nn_memorizes_training_points() {
        let d = blobs(1, 50);
        let knn = Knn::fit(&d, 1, DistanceMetric::Euclidean);
        for i in 0..d.len() {
            assert_eq!(knn.predict(&d.x[i]), d.y[i]);
        }
    }

    #[test]
    fn k_majority_vote() {
        // Three points of class 0 near origin, one of class 1.
        let d = Dataset::new(
            vec![vec![0.0], vec![0.1], vec![0.2], vec![0.15]],
            vec![0, 0, 0, 1],
        );
        let knn = Knn::fit(&d, 3, DistanceMetric::Euclidean);
        assert_eq!(knn.predict(&[0.12]), 0);
        let p = knn.predict_proba(&[0.12]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_differ() {
        // Point at (3,4): Euclidean 5 from origin, Manhattan 7.
        assert_eq!(
            DistanceMetric::Euclidean.eval(&[0.0, 0.0], &[3.0, 4.0]),
            5.0
        );
        assert_eq!(
            DistanceMetric::Manhattan.eval(&[0.0, 0.0], &[3.0, 4.0]),
            7.0
        );
    }

    #[test]
    fn generalizes_on_blobs() {
        let train = blobs(2, 200);
        let test = blobs(3, 80);
        let knn = Knn::fit(&train, 5, DistanceMetric::Euclidean);
        let acc = crate::metrics::accuracy(&test.y, &knn.predict_batch(&test.x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        let knn = Knn::fit(&d, 100, DistanceMetric::Manhattan);
        let p = knn.predict_proba(&[0.4]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::fit(&blobs(4, 10), 0, DistanceMetric::Euclidean);
    }
}
