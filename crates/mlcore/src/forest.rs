//! Random Forests (Breiman 2001).
//!
//! Bootstrap-bagged CART trees with per-split random feature subsampling.
//! Probabilities are the average of the trees' leaf distributions, so the
//! maximum entry works as the paper's "label confidence" that gates the
//! "unknown" verdict (§4.4.1) and the pattern-inference output (§4.3.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// Random Forest hyperparameters (the Fig. 14/15 sweep axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Features per split: `None` = √d (the usual default).
    pub features_per_split: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            // The paper's deployed title model: 500 trees, depth 10. The
            // default here is lighter; experiments set what they sweep.
            n_trees: 100,
            max_depth: 10,
            min_samples_split: 2,
            features_per_split: None,
            seed: 0,
        }
    }
}

/// A trained Random Forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits a forest: each tree sees a bootstrap resample (with
    /// replacement, same size as the input) and uses per-split feature
    /// subsampling of √d unless configured otherwise.
    ///
    /// # Panics
    /// Panics on an empty dataset or `n_trees == 0`.
    pub fn fit(data: &Dataset, config: &RandomForestConfig) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let mtry = config
            .features_per_split
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().round().max(1.0) as usize);
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            features_per_split: Some(mtry),
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        let trees = (0..config.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                DecisionTree::fit_subset(data, &idx, &tree_config, &mut rng)
            })
            .collect();
        RandomForest {
            trees,
            n_classes: data.n_classes,
        }
    }

    /// Fits a forest and estimates the out-of-bag error: each sample is
    /// scored only by trees whose bootstrap resample missed it (≈36.8 % of
    /// trees), giving an unbiased generalization estimate without a
    /// held-out split. Returns `(forest, oob_error)`; samples that every
    /// tree saw (possible with very few trees) are skipped.
    pub fn fit_oob(data: &Dataset, config: &RandomForestConfig) -> (RandomForest, f64) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let mtry = config
            .features_per_split
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().round().max(1.0) as usize);
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            features_per_split: Some(mtry),
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut in_bag: Vec<Vec<bool>> = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut mask = vec![false; n];
            for &i in &idx {
                mask[i] = true;
            }
            trees.push(DecisionTree::fit_subset(data, &idx, &tree_config, &mut rng));
            in_bag.push(mask);
        }
        // OOB vote per sample.
        let mut errors = 0usize;
        let mut scored = 0usize;
        for i in 0..n {
            let mut acc = vec![0.0f64; data.n_classes];
            let mut voters = 0usize;
            for (t, mask) in trees.iter().zip(&in_bag) {
                if !mask[i] {
                    for (a, v) in acc.iter_mut().zip(t.predict_proba(&data.x[i])) {
                        *a += v;
                    }
                    voters += 1;
                }
            }
            if voters == 0 {
                continue;
            }
            scored += 1;
            let pred = acc
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(k, _)| k)
                .unwrap_or(0);
            if pred != data.y[i] {
                errors += 1;
            }
        }
        let oob = errors as f64 / scored.max(1) as f64;
        (
            RandomForest {
                trees,
                n_classes: data.n_classes,
            },
            oob,
        )
    }

    /// Mean-decrease-in-impurity importance per feature, averaged over the
    /// trees and normalized to sum to 1 — the fast, training-time
    /// alternative to permutation importance.
    pub fn mdi_importances(&self) -> Vec<f64> {
        let Some(first) = self.trees.first() else {
            return Vec::new();
        };
        let d = first.mdi_importances().len();
        let mut acc = vec![0.0f64; d];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.mdi_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Expected feature-vector width (0 for an untrained/empty forest).
    pub fn n_features(&self) -> usize {
        self.trees.first().map_or(0, DecisionTree::n_features)
    }

    /// The trained trees, for flattening ([`crate::flat`]).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Compiles this forest into the flat SoA inference layout.
    pub fn to_flat(&self) -> crate::flat::FlatForest {
        crate::flat::FlatForest::from_forest(self)
    }

    /// Consumes the forest, returning the flat inference form. Identical
    /// to [`RandomForest::to_flat`]; use whichever fits ownership.
    pub fn into_flat(self) -> crate::flat::FlatForest {
        self.to_flat()
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            let p = t.predict_proba(x);
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for t in &self.trees {
            for (a, v) in out.iter_mut().zip(t.leaf_proba(x)) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Three noisy 2-D blobs.
    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..3);
            let (cx, cy) = centers[c];
            x.push(vec![
                cx + rng.gen_range(-1.0f64..1.0),
                cy + rng.gen_range(-1.0f64..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn learns_blobs_well() {
        let train = blobs(1, 300);
        let test = blobs(2, 100);
        let f = RandomForest::fit(
            &train,
            &RandomForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let preds = f.predict_batch(&test.x);
        let acc = accuracy(&test.y, &preds);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one() {
        let d = blobs(3, 100);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 10,
                ..Default::default()
            },
        );
        for x in d.x.iter().take(10) {
            let p = f.predict_proba(x);
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = blobs(4, 150);
        let cfg = RandomForestConfig {
            n_trees: 12,
            seed: 77,
            ..Default::default()
        };
        let a = RandomForest::fit(&d, &cfg);
        let b = RandomForest::fit(&d, &cfg);
        for x in d.x.iter().take(20) {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn confidence_is_low_in_overlap() {
        // Two heavily overlapping blobs: confidence near the midpoint
        // should be far from 1.
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let c = rng.gen_range(0..2usize);
            let base = c as f64 * 0.5;
            x.push(vec![base + rng.gen_range(-1.0f64..1.0)]);
            y.push(c);
        }
        let d = Dataset::new(x, y);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 40,
                ..Default::default()
            },
        );
        let p = f.predict_proba(&[0.25]);
        let conf = p.iter().cloned().fold(0.0, f64::max);
        assert!(conf < 0.9, "confidence {conf}");
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let train = blobs(6, 200);
        let test = blobs(7, 100);
        let small = RandomForest::fit(
            &train,
            &RandomForestConfig {
                n_trees: 2,
                seed: 1,
                ..Default::default()
            },
        );
        let large = RandomForest::fit(
            &train,
            &RandomForestConfig {
                n_trees: 50,
                seed: 1,
                ..Default::default()
            },
        );
        let acc_small = accuracy(&test.y, &small.predict_batch(&test.x));
        let acc_large = accuracy(&test.y, &large.predict_batch(&test.x));
        assert!(acc_large + 0.02 >= acc_small, "{acc_small} vs {acc_large}");
    }

    #[test]
    fn serde_roundtrip() {
        let d = blobs(8, 80);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 5,
                ..Default::default()
            },
        );
        let json = serde_json::to_string(&f).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_trees(), 5);
        for x in d.x.iter().take(10) {
            assert_eq!(f.predict(x), back.predict(x));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = RandomForest::fit(&Dataset::default(), &RandomForestConfig::default());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::Classifier;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For any dataset, forest probabilities are a distribution and the
        /// argmax equals `predict`.
        #[test]
        fn proba_is_distribution_and_consistent(
            rows in prop::collection::vec(
                (prop::collection::vec(-100.0f64..100.0, 3), 0usize..4),
                8..60
            ),
            seed in any::<u64>(),
        ) {
            let x: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
            let y: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
            let data = Dataset::new(x.clone(), y);
            let forest = RandomForest::fit(
                &data,
                &RandomForestConfig { n_trees: 7, seed, ..Default::default() },
            );
            for xi in x.iter().take(10) {
                let p = forest.predict_proba(xi);
                prop_assert_eq!(p.len(), data.n_classes);
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                let argmax = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                // predict breaks ties identically (first maximum).
                prop_assert_eq!(forest.predict(xi), argmax);
            }
        }
    }
}

#[cfg(test)]
mod oob_mdi_tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::Classifier;

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (4.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..2usize);
            x.push(vec![
                centers[c].0 + rng.gen_range(-1.0f64..1.0),
                centers[c].1 + rng.gen_range(-1.0f64..1.0),
                rng.gen_range(-1.0f64..1.0), // pure noise feature
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn oob_error_tracks_test_error() {
        let train = blobs(1, 400);
        let test = blobs(2, 200);
        let (forest, oob) = RandomForest::fit_oob(
            &train,
            &RandomForestConfig {
                n_trees: 40,
                ..Default::default()
            },
        );
        let test_err = 1.0 - accuracy(&test.y, &forest.predict_batch(&test.x));
        assert!(
            (oob - test_err).abs() < 0.06,
            "oob {oob} vs test {test_err}"
        );
        assert!(oob < 0.1, "oob {oob}");
    }

    #[test]
    fn oob_forest_predicts_like_fit_forest() {
        let d = blobs(3, 150);
        let cfg = RandomForestConfig {
            n_trees: 12,
            seed: 9,
            ..Default::default()
        };
        let plain = RandomForest::fit(&d, &cfg);
        let (oob_forest, _) = RandomForest::fit_oob(&d, &cfg);
        for x in d.x.iter().take(20) {
            assert_eq!(plain.predict(x), oob_forest.predict(x));
        }
    }

    #[test]
    fn mdi_importances_find_informative_features() {
        let d = blobs(4, 300);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 25,
                ..Default::default()
            },
        );
        let imp = f.mdi_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The noise feature carries almost nothing.
        assert!(imp[2] < 0.1, "noise importance {}", imp[2]);
        assert!(imp[0] + imp[1] > 0.9);
    }

    #[test]
    fn stump_has_zero_importance() {
        // Pure data: the tree never splits.
        let d = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0, 0]);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 3,
                ..Default::default()
            },
        );
        assert_eq!(f.mdi_importances(), vec![0.0]);
    }
}
