//! Flattened forest inference: SoA node arrays, branchless traversal.
//!
//! The pointer forest ([`RandomForest`]) walks `Box`ed tree-node enums —
//! one cache miss per level per tree, plus a `Vec` clone per tree for the
//! leaf distribution. That is fine for training-time evaluation but too
//! slow for the tap hot path, where every flow classifies every slot.
//!
//! [`FlatForest`] compiles a trained forest into one contiguous
//! structure-of-arrays node table shared by all trees:
//!
//! * `feature[i]` — split feature of node `i`, or [`LEAF`] for a leaf;
//! * `threshold[i]` — split threshold;
//! * `child[i]` — for a split, the index of the *left* child (the right
//!   child is always `child[i] + 1`: sibling pairs are allocated
//!   adjacently); for a leaf, the offset of its class distribution in the
//!   shared `proba` table.
//!
//! Traversal is branchless: `next = child + (x[f] > t)`, computed as an
//! arithmetic select with the exact `x <= t` comparison the pointer tree
//! uses (so NaN features fall right in both implementations), and the
//! kernel descends several trees in lockstep for a fixed step count so
//! the walk neither stalls on one load chain nor mispredicts at leaf
//! exits (see `descend_n`). Probability accumulation follows tree order
//! with the same `f64` operations as the pointer forest, making
//! `predict` / `predict_proba` **bit-identical** — proven by the
//! differential proptests and the committed golden fixtures under
//! `tests/fixtures/`.
//!
//! Training code is untouched: fit a [`RandomForest`], then call
//! [`RandomForest::into_flat`] (or [`FlatForest::from_forest`]) once and
//! serve inference from the flat form.

// The descent kernels deliberately use `!(x <= t)` rather than
// `partial_cmp`: it is the exact predicate the pointer tree's if/else
// compiles to, which is what makes NaN routing — and therefore the
// bit-identity guarantee — line up between the two layouts.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use serde::{Deserialize, Serialize};

use crate::forest::RandomForest;
use crate::tree::Node;
use crate::{argmax, Classifier};

/// Sentinel marking a leaf in [`FlatForest`]'s `feature` array.
pub const LEAF: u32 = u32::MAX;

/// A forest compiled to a flat SoA node-array layout for fast inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatForest {
    /// Split feature per node; [`LEAF`] for leaves.
    feature: Vec<u32>,
    /// Split threshold per node (0 for leaves).
    threshold: Vec<f64>,
    /// Left-child index per split node (right child is `+ 1`); for leaves,
    /// the element offset of the leaf's distribution in `proba`.
    child: Vec<u32>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Max leaf depth of each tree (root-is-leaf = 0): the descent step
    /// count, so the interleaved kernel can run a fixed, branch-predictable
    /// number of iterations per tree group.
    depths: Vec<u32>,
    /// Concatenated leaf class distributions, `n_classes` each.
    proba: Vec<f64>,
    /// Number of classes.
    n_classes: usize,
    /// Expected feature-vector width.
    n_features: usize,
}

impl FlatForest {
    /// Compiles a trained pointer forest into the flat layout. Sibling
    /// node pairs are allocated adjacently so traversal needs a single
    /// child index per split.
    ///
    /// # Panics
    /// Panics if the forest exceeds `u32::MAX` nodes or leaf-probability
    /// entries (far beyond any realistic model).
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        let mut flat = FlatForest {
            feature: Vec::new(),
            threshold: Vec::new(),
            child: Vec::new(),
            roots: Vec::with_capacity(forest.n_trees()),
            depths: Vec::with_capacity(forest.n_trees()),
            proba: Vec::new(),
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        };
        for tree in forest.trees() {
            let root = flat.alloc(1);
            flat.roots.push(root);
            let mut max_depth = 0u32;
            // Explicit worklist: recursion depth is bounded by config, but
            // the two-phase slot-then-fill scheme needs it anyway to keep
            // sibling pairs adjacent.
            let mut work: Vec<(&Node, u32, u32)> = vec![(tree.root(), root, 0)];
            while let Some((node, slot, depth)) = work.pop() {
                let slot = slot as usize;
                match node {
                    Node::Leaf { proba } => {
                        let off = flat.proba.len();
                        assert!(off < LEAF as usize, "proba table exceeds u32 range");
                        flat.feature[slot] = LEAF;
                        flat.child[slot] = off as u32;
                        flat.proba.extend_from_slice(proba);
                        max_depth = max_depth.max(depth);
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        let pair = flat.alloc(2);
                        flat.feature[slot] = *feature as u32;
                        flat.threshold[slot] = *threshold;
                        flat.child[slot] = pair;
                        work.push((right, pair + 1, depth + 1));
                        work.push((left, pair, depth + 1));
                    }
                }
            }
            flat.depths.push(max_depth);
        }
        flat
    }

    /// Appends `n` blank node slots, returning the index of the first.
    fn alloc(&mut self, n: usize) -> u32 {
        let start = self.feature.len();
        assert!(start + n < LEAF as usize, "node table exceeds u32 range");
        self.feature.resize(start + n, LEAF);
        self.threshold.resize(start + n, 0.0);
        self.child.resize(start + n, 0);
        start as u32
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// FNV-1a digest over the complete node table in a fixed field order,
    /// with each array length mixed in before its elements. Floats hash
    /// via their IEEE bit patterns, so any payload mutation — a flipped
    /// bit, a re-quantized threshold, a truncated proba table — changes
    /// the digest. The model registry stores this per-forest and verifies
    /// it after every disk round-trip; see `serde_artifacts` tests.
    pub fn checksum(&self) -> u64 {
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (len, words) in [
            (self.feature.len(), &self.feature),
            (self.child.len(), &self.child),
            (self.roots.len(), &self.roots),
            (self.depths.len(), &self.depths),
        ] {
            mix(&mut h, len as u64);
            for &w in words {
                mix(&mut h, u64::from(w));
            }
        }
        for (len, floats) in [
            (self.threshold.len(), &self.threshold),
            (self.proba.len(), &self.proba),
        ] {
            mix(&mut h, len as u64);
            for &f in floats {
                mix(&mut h, f.to_bits());
            }
        }
        mix(&mut h, self.n_classes as u64);
        mix(&mut h, self.n_features as u64);
        h
    }

    /// Walks one tree to its leaf for `x`, returning the leaf node index.
    #[inline]
    fn descend(&self, root: u32, x: &[f64]) -> usize {
        let mut i = root as usize;
        let mut f = self.feature[i];
        while f != LEAF {
            // `!(x <= t)` (not `x > t`) so NaN features go right, exactly
            // like the pointer tree's if/else.
            let go_right = !(x[f as usize] <= self.threshold[i]) as u32;
            i = (self.child[i] + go_right) as usize;
            f = self.feature[i];
        }
        i
    }

    /// Walks `N` trees in lockstep, returning their leaf node indices.
    ///
    /// Two tricks keep this off the two stalls a naive walk hits:
    ///
    /// * a single descent is latency-bound — each step's node load depends
    ///   on the previous step's child index — so `N` independent trees
    ///   step together, giving the out-of-order core `N` chains to
    ///   overlap;
    /// * per-tree `while not leaf` exits mispredict at every leaf, so the
    ///   loop instead runs a *fixed* step count — `steps`, which must be
    ///   `>=` every grouped tree's depth — with leaves holding position
    ///   via conditional moves.
    #[inline]
    fn descend_n<const N: usize>(&self, roots: [u32; N], steps: u32, x: &[f64]) -> [usize; N] {
        let mut idx = [0usize; N];
        for (slot, root) in idx.iter_mut().zip(roots) {
            *slot = root as usize;
        }
        for _ in 0..steps {
            for i in idx.iter_mut() {
                let f = self.feature[*i];
                let at_leaf = f == LEAF;
                // Lanes already at a leaf stay put; `fi = 0` keeps the
                // (discarded) feature load in bounds — any split anywhere
                // implies `n_features >= 1`, and with zero splits
                // `steps == 0` skips the loop entirely.
                let fi = if at_leaf { 0 } else { f as usize };
                let go_right = !(x[fi] <= self.threshold[*i]) as u32;
                // For a leaf lane `child` is a proba offset and the +1 may
                // wrap at the u32 edge; the result is discarded, so wrap
                // instead of overflowing.
                let next = self.child[*i].wrapping_add(go_right) as usize;
                *i = if at_leaf { *i } else { next };
            }
        }
        idx
    }

    /// Leaf class distribution one tree assigns to `x`.
    #[inline]
    fn leaf(&self, root: u32, x: &[f64]) -> &[f64] {
        let leaf = self.descend(root, x);
        let off = self.child[leaf] as usize;
        &self.proba[off..off + self.n_classes]
    }

    /// Sums every tree's leaf distribution for `x` into `out` and divides
    /// by the tree count — in tree order, with the same `f64` operation
    /// sequence as the pointer forest, so results stay bit-identical.
    /// Trees descend [`LANES`](Self::accumulate_row) at a time (see
    /// [`Self::descend_n`]).
    fn accumulate_row(&self, x: &[f64], out: &mut [f64]) {
        /// Interleaved descents per step: enough independent chains to
        /// hide node-load latency without spilling the index state.
        const LANES: usize = 4;
        out.fill(0.0);
        let full = self.roots.len() / LANES * LANES;
        for g in (0..full).step_by(LANES) {
            let mut roots = [0u32; LANES];
            let mut steps = 0u32;
            for (l, slot) in roots.iter_mut().enumerate() {
                *slot = self.roots[g + l];
                steps = steps.max(self.depths[g + l]);
            }
            let leaves: [usize; LANES] = self.descend_n(roots, steps, x);
            for leaf in leaves {
                let off = self.child[leaf] as usize;
                let dist = &self.proba[off..off + self.n_classes];
                for (a, v) in out.iter_mut().zip(dist) {
                    *a += v;
                }
            }
        }
        for &root in &self.roots[full..] {
            for (a, v) in out.iter_mut().zip(self.leaf(root, x)) {
                *a += v;
            }
        }
        let n = self.roots.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    /// Walks `N` *rows* down the same tree in lockstep. The batch dual of
    /// [`Self::descend_n`]: all lanes share the tree, so the fixed step
    /// count is the tree's exact depth — no lane runs a wasted iteration —
    /// and the loop trip count stays identical across the whole sweep,
    /// which branch prediction loves.
    #[inline]
    fn descend_rows<const N: usize>(&self, root: u32, steps: u32, xs: [&[f64]; N]) -> [usize; N] {
        let mut idx = [root as usize; N];
        for _ in 0..steps {
            for (i, x) in idx.iter_mut().zip(xs) {
                let f = self.feature[*i];
                let at_leaf = f == LEAF;
                let fi = if at_leaf { 0 } else { f as usize };
                let go_right = !(x[fi] <= self.threshold[*i]) as u32;
                let next = self.child[*i].wrapping_add(go_right) as usize;
                *i = if at_leaf { *i } else { next };
            }
        }
        idx
    }

    /// Batch probability inference over a whole slot's worth of rows:
    /// fills `out` (length `rows × n_classes`, row-major) without
    /// allocating. Trees run in the outer loop with row groups descending
    /// in lockstep (`descend_rows`); every row still accumulates
    /// its trees in tree order, keeping results bit-identical to the
    /// single-row path.
    ///
    /// # Panics
    /// Panics if `out.len() != xs.len() * n_classes` or any row has the
    /// wrong feature width.
    pub fn predict_proba_batch_into<R: AsRef<[f64]>>(&self, xs: &[R], out: &mut [f64]) {
        /// Rows descending one tree together.
        const ROWS: usize = 8;
        /// Rows per cache block: the block's accumulators and feature rows
        /// stay L1-resident across the whole tree sweep.
        const CHUNK: usize = 64;
        let nc = self.n_classes;
        assert_eq!(out.len(), xs.len() * nc, "output buffer size mismatch");
        for x in xs {
            assert_eq!(x.as_ref().len(), self.n_features, "feature width mismatch");
        }
        out.fill(0.0);
        for (cx, cout) in xs.chunks(CHUNK).zip(out.chunks_mut(CHUNK * nc)) {
            let full = cx.len() / ROWS * ROWS;
            for (t, &root) in self.roots.iter().enumerate() {
                let steps = self.depths[t];
                for row in (0..full).step_by(ROWS) {
                    let group: [&[f64]; ROWS] = std::array::from_fn(|l| cx[row + l].as_ref());
                    let leaves: [usize; ROWS] = self.descend_rows(root, steps, group);
                    for (l, leaf) in leaves.into_iter().enumerate() {
                        let off = self.child[leaf] as usize;
                        let dist = &self.proba[off..off + nc];
                        let acc = &mut cout[(row + l) * nc..(row + l + 1) * nc];
                        for (a, v) in acc.iter_mut().zip(dist) {
                            *a += v;
                        }
                    }
                }
                for (row, x) in cx.iter().enumerate().skip(full) {
                    let acc = &mut cout[row * nc..(row + 1) * nc];
                    for (a, v) in acc.iter_mut().zip(self.leaf(root, x.as_ref())) {
                        *a += v;
                    }
                }
            }
        }
        let n = self.roots.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    /// Batch probability inference, allocating one row per input.
    pub fn predict_proba_batch<R: AsRef<[f64]>>(&self, xs: &[R]) -> Vec<Vec<f64>> {
        let nc = self.n_classes;
        let mut flat = vec![0.0; xs.len() * nc];
        self.predict_proba_batch_into(xs, &mut flat);
        flat.chunks(nc.max(1)).map(<[f64]>::to_vec).collect()
    }

    /// Batch class prediction over rows of any slice-like feature type
    /// (the trait's `predict_batch` is fixed to `&[Vec<f64>]`).
    pub fn predict_rows<R: AsRef<[f64]>>(&self, xs: &[R]) -> Vec<usize> {
        let nc = self.n_classes.max(1);
        let mut scores = vec![0.0; xs.len() * nc];
        self.predict_proba_batch_into(xs, &mut scores);
        scores.chunks(nc).map(argmax).collect()
    }
}

impl Classifier for FlatForest {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_proba_into(x, &mut out);
        out
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        self.accumulate_row(x, out);
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_rows(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::forest::RandomForestConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..3);
            let (cx, cy) = centers[c];
            x.push(vec![
                cx + rng.gen_range(-1.0f64..1.0),
                cy + rng.gen_range(-1.0f64..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y)
    }

    fn fitted(seed: u64) -> (RandomForest, FlatForest, Dataset) {
        let d = blobs(seed, 150);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 12,
                seed,
                ..Default::default()
            },
        );
        let flat = f.to_flat();
        (f, flat, d)
    }

    #[test]
    fn flat_matches_pointer_bit_for_bit() {
        let (f, flat, d) = fitted(1);
        for x in &d.x {
            assert_eq!(f.predict_proba(x), flat.predict_proba(x));
            assert_eq!(f.predict(x), flat.predict(x));
        }
    }

    #[test]
    fn batch_matches_single_row() {
        let (_, flat, d) = fitted(2);
        let batch = flat.predict_proba_batch(&d.x);
        for (x, row) in d.x.iter().zip(&batch) {
            assert_eq!(&flat.predict_proba(x), row);
        }
        assert_eq!(
            flat.predict_batch(&d.x),
            d.x.iter().map(|x| flat.predict(x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nan_features_fall_right_like_pointer_trees() {
        let (f, flat, _) = fitted(3);
        for x in [
            vec![f64::NAN, 0.0],
            vec![0.0, f64::NAN],
            vec![f64::NAN, f64::NAN],
            vec![f64::INFINITY, f64::NEG_INFINITY],
        ] {
            assert_eq!(f.predict_proba(&x), flat.predict_proba(&x), "x = {x:?}");
        }
    }

    #[test]
    fn stump_forest_flattens_to_single_leaves() {
        // Pure data: every tree is a single leaf.
        let d = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0, 0]);
        let f = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 3,
                ..Default::default()
            },
        );
        let flat = f.to_flat();
        assert_eq!(flat.n_trees(), 3);
        assert_eq!(flat.n_nodes(), 3); // one leaf per tree
        assert_eq!(flat.predict(&[9.0]), 0);
        assert_eq!(f.predict_proba(&[9.0]), flat.predict_proba(&[9.0]));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (_, flat, d) = fitted(4);
        let json = serde_json::to_string(&flat).unwrap();
        let back: FlatForest = serde_json::from_str(&json).unwrap();
        for x in d.x.iter().take(20) {
            assert_eq!(flat.predict_proba(x), back.predict_proba(x));
        }
        assert_eq!(flat.n_nodes(), back.n_nodes());
    }

    #[test]
    fn into_flat_consumes_and_matches() {
        let (f, flat, d) = fitted(5);
        let owned = f.into_flat();
        for x in d.x.iter().take(20) {
            assert_eq!(owned.predict_proba(x), flat.predict_proba(x));
        }
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (_, flat, _) = fitted(6);
        let _ = flat.predict(&[1.0, 2.0, 3.0]);
    }
}
