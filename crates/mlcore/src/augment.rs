//! Variation-based data augmentation (§4.4).
//!
//! The paper augments its dataset "by synthesizing packet data with
//! randomly varied sizes and arrival times based on the original
//! ground-truth data, especially for classes with fewer samples". In
//! feature space that corresponds to multiplicative jitter on the derived
//! attributes; [`augment_to_balance`] additionally oversamples minority
//! classes to a common per-class count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;

/// Appends `factor − 1` jittered variants of every sample (so the output is
/// `factor ×` the input size). Each feature is scaled by an independent
/// `1 ± rel_noise` factor.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn augment_multiply(data: &Dataset, factor: usize, rel_noise: f64, seed: u64) -> Dataset {
    assert!(factor > 0, "factor must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();
    for _ in 1..factor {
        for (row, &label) in data.x.iter().zip(&data.y) {
            out.x.push(jitter(row, rel_noise, &mut rng));
            out.y.push(label);
        }
    }
    out
}

/// Oversamples every class to `per_class` samples by adding jittered
/// variants of randomly chosen existing samples of that class. Classes that
/// already have `per_class` or more samples are left untouched.
pub fn augment_to_balance(data: &Dataset, per_class: usize, rel_noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();
    for class in 0..data.n_classes {
        let idx = data.class_indices(class);
        if idx.is_empty() {
            continue;
        }
        let mut have = idx.len();
        while have < per_class {
            let &src = &idx[rng.gen_range(0..idx.len())];
            out.x.push(jitter(&data.x[src], rel_noise, &mut rng));
            out.y.push(class);
            have += 1;
        }
    }
    out
}

fn jitter(row: &[f64], rel_noise: f64, rng: &mut StdRng) -> Vec<f64> {
    row.iter()
        .map(|v| v * (1.0 + rng.gen_range(-rel_noise..=rel_noise)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![10.0, 20.0], vec![30.0, 40.0], vec![50.0, 60.0]],
            vec![0, 0, 1],
        )
    }

    #[test]
    fn multiply_scales_size_and_keeps_labels() {
        let d = toy();
        let a = augment_multiply(&d, 3, 0.1, 1);
        assert_eq!(a.len(), 9);
        assert_eq!(a.y.iter().filter(|&&y| y == 0).count(), 6);
        // Originals preserved verbatim at the front.
        assert_eq!(a.x[..3], d.x[..]);
        // Variants stay within the noise band.
        for (row, orig) in a.x[3..].iter().zip(d.x.iter().cycle()) {
            for (v, o) in row.iter().zip(orig) {
                assert!((v - o).abs() <= o * 0.1 + 1e-9);
            }
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let d = toy();
        let a = augment_multiply(&d, 1, 0.2, 5);
        assert_eq!(a.x, d.x);
        assert_eq!(a.y, d.y);
    }

    #[test]
    fn balance_fills_minority_class() {
        let d = toy(); // class 0: 2 samples, class 1: 1 sample
        let a = augment_to_balance(&d, 5, 0.05, 2);
        assert_eq!(a.class_indices(0).len(), 5);
        assert_eq!(a.class_indices(1).len(), 5);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn balance_leaves_majority_untouched() {
        let d = toy();
        let a = augment_to_balance(&d, 2, 0.05, 3);
        assert_eq!(a.class_indices(0).len(), 2);
        assert_eq!(a.class_indices(1).len(), 2);
    }

    #[test]
    fn augmentation_is_deterministic() {
        let d = toy();
        assert_eq!(
            augment_multiply(&d, 4, 0.1, 7).x,
            augment_multiply(&d, 4, 0.1, 7).x
        );
    }
}
